"""Tracing, metrics, and profiling a federated run end to end.

Runs the same asynchronous FedADMM simulation twice — client work on the
in-process serial executor, then on a process pool — with the full
observability stack attached (tracer + metrics registry + profiler), and
shows that the recorded span tree is identical in shape either way:
worker processes return picklable span records that the pipeline adopts
back under the correct ``round`` span, so the trace reconciles with the
training history no matter where the work physically ran.

Writes ``traces/async-serial.trace.json`` and
``traces/async-process.trace.json`` (Chrome ``trace_event`` JSON — open
them in chrome://tracing or https://ui.perfetto.dev), prints each run's
span-tree summary, the metrics snapshot, and the profiler's hot-spot
table.

This is the library-level face of the CLI's ``--trace`` / ``--metrics``
flags and of ``repro profile <study>``.

Run with:  python examples/tracing_and_profiling.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    ShardPartitioner,
    UniformFractionSampler,
    build_algorithm,
    build_clients,
    build_network,
    make_blobs,
)
from repro.federated import AsyncPlan, FederatedSimulation
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP
from repro.obs import MetricsRegistry, Profiler, Tracer, observe
from repro.obs.trace import span_tree
from repro.systems.executor import build_executor

ROUNDS = 10
NUM_CLIENTS = 20
OUT_DIR = Path("traces")


def build(executor_name: str) -> FederatedSimulation:
    split = make_blobs(n_train=1200, n_test=400, rng=0)
    partition = ShardPartitioner(shards_per_client=2).partition(
        split.train, num_clients=NUM_CLIENTS, rng=0
    )
    clients = build_clients(split.train, partition)
    model = MLP(input_dim=split.train.feature_dim, hidden_dims=(32,), rng=0)
    return FederatedSimulation(
        algorithm=build_algorithm("fedadmm", rho=0.5),
        model=model,
        clients=clients,
        test_dataset=split.test,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(0.2),
        batch_size=32,
        learning_rate=0.1,
        seed=0,
        network=build_network("lognormal"),
        executor=build_executor(executor_name, max_workers=2),
        plan=AsyncPlan(buffer_size=4, max_concurrency=8),
    )


def traced_run(executor_name: str):
    """One fully instrumented run; returns (result, tracer, metrics, profiler)."""
    tracer, metrics, profiler = Tracer(), MetricsRegistry(), Profiler()
    with observe(tracer=tracer, metrics=metrics, profiler=profiler):
        simulation = build(executor_name)
        result = simulation.run(ROUNDS)
    return result, tracer, metrics, profiler


def describe(label: str, result, tracer: Tracer) -> dict[str, int]:
    """Print one run's span-tree summary and return its name → count map."""
    records = tracer.sorted_records()
    counts: dict[str, int] = {}
    for record in records:
        counts[record.name] = counts.get(record.name, 0) + 1
    spans = {record.span_id: record for record in records}
    depth_of = {}

    def depth(record) -> int:
        if record.span_id not in depth_of:
            parent = spans.get(record.parent_id)
            depth_of[record.span_id] = 0 if parent is None else 1 + depth(parent)
        return depth_of[record.span_id]

    tree = span_tree(records)
    print(f"\n=== {label}: {len(records)} spans, {result.rounds_run} rounds ===")
    for name in ("run", "round", "client_task", "local_sgd", "aggregate"):
        print(f"  {name:12s} x{counts.get(name, 0)}")
    # Render the first round's subtree as an indented outline.
    first_round = next(r for r in records if r.name == "round")
    stack = [first_round]
    while stack:
        record = stack.pop()
        indent = "  " * (1 + depth(record))
        virtual = (
            "" if record.virtual_end_s is None
            else f"  [virtual {record.virtual_start_s:.2f}s → "
                 f"{record.virtual_end_s:.2f}s]"
        )
        print(f"{indent}{record.name}{virtual}")
        stack.extend(reversed(tree.get(record.span_id, [])))
    return counts


def main() -> None:
    serial_result, serial_tracer, _, _ = traced_run("serial")
    process_result, process_tracer, metrics, profiler = traced_run("process")

    serial_counts = describe("serial executor", serial_result, serial_tracer)
    process_counts = describe("process executor", process_result, process_tracer)

    assert serial_counts == process_counts, (
        "the span tree must not depend on where the client work ran"
    )
    print(
        "\nSpan trees are identical across executors: worker processes "
        "return picklable\nspan records that Tracer.adopt re-parents "
        "under the round that dispatched them."
    )

    OUT_DIR.mkdir(exist_ok=True)
    for name, tracer in (
        ("async-serial", serial_tracer), ("async-process", process_tracer)
    ):
        path = tracer.write_chrome_trace(OUT_DIR / f"{name}.trace.json")
        print(f"wrote {path} ({len(tracer.records)} spans)")

    print("\n=== metrics (process-executor run) ===")
    print(metrics.render_text())
    print("\n=== hot spots (process-executor run) ===")
    print(profiler.hotspot_table(top=8))


if __name__ == "__main__":
    main()
