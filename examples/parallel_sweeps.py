"""Parallel, resumable sweeps through the orchestrator and run store.

Builds a four-point FedADMM rho sweep as independent
:class:`~repro.experiments.orchestrator.RunSpec` s, executes it across a
process pool backed by a persistent
:class:`~repro.experiments.store.ExperimentStore`, then "interrupts" and
resumes it to show that cached points are served from the store while the
stitched-together histories stay bit-identical to a serial run.

This is the library-level face of the CLI's ``--jobs`` / ``--resume`` /
``--store-dir`` flags (and of ``repro runs list``).

Run with:  python examples/parallel_sweeps.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.experiments import (
    AlgorithmSpec,
    ExperimentStore,
    SweepOrchestrator,
    comparison_specs,
)
from repro.experiments.configs import ExperimentConfig

CONFIG = ExperimentConfig(
    name="example-rho-sweep",
    dataset="blobs",
    n_train=2000,
    n_test=400,
    model="mlp",
    model_kwargs={"input_dim": 32, "hidden_dims": (32,)},
    num_clients=20,
    client_fraction=0.5,
    local_epochs=3,
    batch_size=20,
    num_rounds=10,
    target_accuracy=0.95,
)

SPECS = comparison_specs(
    "example-rho-sweep",
    CONFIG,
    [AlgorithmSpec("fedadmm", {"rho": rho}) for rho in (0.01, 0.1, 0.3, 1.0)],
    stop_at_target=False,
)


def progress(event) -> None:
    print(f"  [{event.index + 1}/{event.total}] {event.event:7s} {event.spec.label()}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store = ExperimentStore(Path(tmp) / "runs")

        print("parallel sweep (jobs=4) against a fresh store:")
        started = time.perf_counter()
        parallel = SweepOrchestrator(jobs=4, store=store, progress=progress).execute(
            SPECS
        )
        print(f"  ...done in {time.perf_counter() - started:.1f}s wall-clock")

        print("\nresumed sweep: every point is served from the store:")
        resumed = SweepOrchestrator(store=store, resume=True, progress=progress).execute(
            SPECS
        )

        print("\nserial re-run (no store) for the bit-identity check:")
        serial = SweepOrchestrator(progress=progress).execute(SPECS)

        print("\nrho     rounds-to-target  final-accuracy  identical(serial/parallel/resumed)")
        for spec in SPECS:
            key = spec.key
            identical = (
                serial[key].history.records == parallel[key].history.records
                == resumed[key].history.records
            )
            result = serial[key]
            print(
                f"{spec.algorithm.kwargs['rho']:<7} "
                f"{str(result.rounds_to_target):<17} "
                f"{result.history.final_accuracy():<15.4f} "
                f"{identical}"
            )


if __name__ == "__main__":
    main()
