"""Extending the framework: plug a custom federated algorithm into the runtime.

Implements "FedAvgM" (FedAvg with server momentum) as a third-party algorithm
by subclassing :class:`repro.algorithms.base.FederatedAlgorithm`, then runs it
head-to-head against FedADMM and FedAvg on the same partitioned data.  The
point of the example is the integration surface: a new algorithm only has to
define its local update, its aggregation rule, and (optionally) persistent
state — the simulation engine, samplers, heterogeneity policies, metrics, and
communication accounting all come for free.

Run with:  python examples/custom_algorithm.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import FedADMM, FedAvg
from repro.algorithms.base import (
    FederatedAlgorithm,
    LocalTrainingConfig,
    run_local_sgd,
)
from repro.datasets.registry import load_dataset
from repro.federated import (
    FederatedSimulation,
    UniformFractionSampler,
    build_clients,
)
from repro.federated.client import ClientState
from repro.federated.heterogeneity import FixedEpochs
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP
from repro.partition import ShardPartitioner
from repro.utils.rng import SeedLike

SEED = 0
NUM_ROUNDS = 15


class FedAvgM(FederatedAlgorithm):
    """FedAvg with heavy-ball momentum applied to the server update."""

    name = "fedavgm"

    def __init__(self, momentum: float = 0.9):
        self.momentum = momentum

    def init_server_state(self, initial_params, num_clients):
        return {"velocity": np.zeros_like(initial_params)}

    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict,
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        params, train_loss = run_local_sgd(problem, global_params, config, rng=rng)
        client.record_participation(config.epochs)
        return ClientMessage(
            client_id=client.client_id,
            payload={"delta": params - global_params},
            num_samples=problem.num_samples,
            local_epochs=config.epochs,
            train_loss=train_loss,
        )

    def aggregate(self, global_params, server_state, messages, num_clients, round_index):
        mean_delta = np.mean([msg.payload["delta"] for msg in messages], axis=0)
        server_state["velocity"] = (
            self.momentum * server_state["velocity"] + mean_delta
        )
        return global_params + server_state["velocity"]


def run(algorithm, clients, split) -> float:
    model = MLP(input_dim=split.train.feature_dim, hidden_dims=(32,), rng=SEED)
    simulation = FederatedSimulation(
        algorithm=algorithm,
        model=model,
        clients=clients,
        test_dataset=split.test,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(0.2),
        local_work=FixedEpochs(3),
        batch_size=32,
        learning_rate=0.1,
        seed=SEED,
    )
    result = simulation.run(NUM_ROUNDS)
    return result.final_evaluation.accuracy


def main() -> None:
    split = load_dataset("mnist", n_train=1500, n_test=500, rng=SEED)
    partition = ShardPartitioner(2).partition(split.train, num_clients=30, rng=SEED)

    print(f"Non-IID synthetic MNIST, 30 clients, {NUM_ROUNDS} rounds\n")
    for algorithm in (FedADMM(rho=0.3), FedAvg(), FedAvgM(momentum=0.9)):
        clients = build_clients(split.train, partition)
        accuracy = run(algorithm, clients, split)
        print(f"{algorithm.name:10s} final test accuracy: {accuracy:.3f}")


if __name__ == "__main__":
    main()
