"""Convergence theory in practice: Theorem 1's constants, rho rule, and V_t.

This example connects the paper's analysis (Section IV) to runnable code:

1. computes the minimum admissible rho = (1 + sqrt(5)) L and the constants
   c1, c2, c3 of eq. (8) for a toy Lipschitz constant,
2. evaluates the Table I round-complexity predictors across system sizes,
3. runs a short FedADMM training with the analysed step size eta = |S_t|/m
   and reports the optimality gap V_t (eq. 7) and the KKT residuals of the
   consensus problem, which shrink as training progresses.

Run with:  python examples/convergence_theory.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import FedADMM
from repro.core.convergence import (
    expected_rounds_bound,
    minimum_rho,
    optimality_gap,
    round_complexity,
    theorem1_constants,
)
from repro.core.dual import kkt_residuals
from repro.datasets.synthetic import make_blobs
from repro.federated import (
    FederatedSimulation,
    UniformFractionSampler,
    build_clients,
)
from repro.federated.heterogeneity import FixedEpochs
from repro.federated.local_problem import LocalProblem
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP
from repro.partition import IidPartitioner

SEED = 0


def theory_section() -> None:
    lipschitz = 1.0
    rho = 1.05 * minimum_rho(lipschitz)
    constants = theorem1_constants(rho=rho, lipschitz=lipschitz, p_min=0.1)
    print("--- Theorem 1 constants ---")
    print(f"minimum rho            : {minimum_rho(lipschitz):.4f}  (rho used: {rho:.4f})")
    print(f"c1, c2, c3             : {constants.c1:.4f}, {constants.c2:.4f}, {constants.c3:.4f}")
    bound = expected_rounds_bound(
        target_gap=0.05, initial_lagrangian=25.0, f_star=0.0,
        num_clients=100, constants=constants,
    )
    print(f"rounds bound (gap 0.05): {bound:.1f}")

    print("\n--- Table I complexity predictors (eps = 1e-3) ---")
    for method in ("fedavg", "fedprox", "scaffold", "fedpd", "fedadmm"):
        value = round_complexity(method, 1e-3, num_clients=1000, num_selected=100)
        print(f"{method:9s}: {value:,.0f}")


def empirical_section() -> None:
    rho = 0.5
    split = make_blobs(n_train=800, n_test=300, rng=SEED)
    partition = IidPartitioner().partition(split.train, num_clients=16, rng=SEED)
    clients = build_clients(split.train, partition)
    model = MLP(input_dim=split.train.feature_dim, hidden_dims=(16,), rng=SEED)
    loss = CrossEntropyLoss()
    simulation = FederatedSimulation(
        algorithm=FedADMM(rho=rho, server_step_size="participation"),
        model=model,
        clients=clients,
        test_dataset=split.test,
        loss=loss,
        sampler=UniformFractionSampler(0.25),
        local_work=FixedEpochs(2),
        batch_size=32,
        learning_rate=0.2,
        seed=SEED,
    )

    print("\n--- Empirical optimality gap V_t and KKT residuals ---")
    for checkpoint in range(4):
        for _ in range(5):
            simulation.run_round()
        theta = simulation.global_params
        params = [client.get("w") for client in clients]
        duals = [client.get("y") for client in clients]
        gradients = []
        dual_grads = []
        for client, w, y in zip(clients, params, duals):
            problem = LocalProblem(model=model, loss=loss, dataset=client.dataset)
            _, grad_f = problem.full_loss_and_grad(w)
            gradients.append(grad_f)
            dual_grads.append(grad_f + y + rho * (w - theta))
        gap = optimality_gap(params, dual_grads, theta)
        residuals = kkt_residuals(params, duals, theta, gradients)
        accuracy = simulation.history.final_accuracy()
        print(
            f"round {simulation.history.records[-1].round_index:3d}: "
            f"V_t = {gap:10.4f}   primal residual = {residuals.primal:.4f}   "
            f"dual balance = {residuals.dual_balance:.4f}   accuracy = {accuracy:.3f}"
        )


def main() -> None:
    theory_section()
    empirical_section()


if __name__ == "__main__":
    main()
