"""Quickstart: train a federated model with FedADMM in ~30 lines.

Builds a small synthetic classification task, partitions it across 30
clients in the paper's non-IID (two-shards-per-client) fashion, and runs
FedADMM against FedAvg for a handful of communication rounds, printing the
rounds-to-target metric and the communication cost.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FederatedSimulation,
    ShardPartitioner,
    UniformFractionSampler,
    build_algorithm,
    build_clients,
    make_blobs,
)
from repro.federated.heterogeneity import UniformRandomEpochs
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP

TARGET_ACCURACY = 0.80
NUM_ROUNDS = 20
SEED = 0


def run_algorithm(name: str, **kwargs):
    """Run one algorithm on a shared non-IID setup and return its result."""
    split = make_blobs(n_train=1500, n_test=500, rng=SEED)
    partition = ShardPartitioner(shards_per_client=2).partition(
        split.train, num_clients=30, rng=SEED
    )
    clients = build_clients(split.train, partition)
    model = MLP(input_dim=split.train.feature_dim, hidden_dims=(32,), rng=SEED)

    simulation = FederatedSimulation(
        algorithm=build_algorithm(name, **kwargs),
        model=model,
        clients=clients,
        test_dataset=split.test,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(0.2),          # 20% of clients per round
        local_work=UniformRandomEpochs(max_epochs=5),  # system heterogeneity
        batch_size=32,
        learning_rate=0.1,
        seed=SEED,
    )
    return simulation.run(NUM_ROUNDS, target_accuracy=TARGET_ACCURACY)


def main() -> None:
    print(f"Target accuracy: {TARGET_ACCURACY:.0%} on a non-IID 10-class task\n")
    for name, kwargs in [("fedadmm", {"rho": 0.3}), ("fedavg", {})]:
        result = run_algorithm(name, **kwargs)
        rounds = result.rounds_to_target
        print(f"{name:8s}  final accuracy: {result.final_evaluation.accuracy:.3f}")
        print(f"          rounds to {TARGET_ACCURACY:.0%}: "
              f"{rounds if rounds is not None else f'{NUM_ROUNDS}+'}")
        print(f"          uploaded: {result.ledger.upload_bytes / 1e6:.2f} MB "
              f"over {result.rounds_run} rounds\n")


if __name__ == "__main__":
    main()
