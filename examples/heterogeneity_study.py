"""Statistical- and system-heterogeneity study on the synthetic MNIST stand-in.

Reproduces, at example scale, the protocol behind the paper's Fig. 5 and the
system-heterogeneity handling of Table III:

* statistical heterogeneity — the same comparison under IID and non-IID
  (two-shards-per-client) partitions;
* system heterogeneity — FedADMM and FedProx let every selected client draw
  its local epoch count uniformly from {1, ..., E}, while FedAvg and SCAFFOLD
  always run the full E epochs (so FedADMM also does ~50% less local work).

Run with:  python examples/heterogeneity_study.py
"""

from __future__ import annotations

from repro.experiments.configs import AlgorithmSpec, fig5_config
from repro.experiments.figures import accuracy_series, series_to_text
from repro.experiments.runner import rounds_summary
from repro.experiments.studies import run_heterogeneity_comparison
from repro.experiments.tables import format_table

NUM_ROUNDS = 20

ALGORITHMS = [
    AlgorithmSpec("fedadmm", {"rho": 0.3}),
    AlgorithmSpec("fedavg", {}),
    AlgorithmSpec("fedprox", {"rho": 0.1}),
    AlgorithmSpec("scaffold", {}),
]


def main() -> None:
    config_iid = fig5_config(dataset="mnist", non_iid=False).with_overrides(
        num_rounds=NUM_ROUNDS
    )
    config_non_iid = fig5_config(dataset="mnist", non_iid=True).with_overrides(
        num_rounds=NUM_ROUNDS
    )
    outcome = run_heterogeneity_comparison(config_iid, config_non_iid, ALGORITHMS)

    rows = []
    for setting, comparison in outcome.items():
        print(f"\n=== {setting.upper()} — accuracy vs round ===")
        print(
            series_to_text(
                {
                    label: accuracy_series(result)
                    for label, result in comparison.results.items()
                },
                max_points=10,
            )
        )
        for label, info in rounds_summary(comparison).items():
            rows.append(
                {
                    "setting": setting,
                    "method": label,
                    "rounds_to_target": info["formatted"],
                    "final_accuracy": info["final_accuracy"],
                }
            )

    print("\n=== Summary (target accuracy "
          f"{config_iid.target_accuracy:.0%}) ===")
    print(format_table(rows))
    print(
        "\nNote: FedADMM and FedProx run with randomly reduced local epochs "
        "(system heterogeneity), i.e. roughly half the local computation of "
        "FedAvg/SCAFFOLD in this comparison."
    )


if __name__ == "__main__":
    main()
