"""Client-systems simulation: compression, faults, stragglers, and a clock.

Runs FedADMM and FedAvg through the systems layer of :mod:`repro.systems`:
top-k-compressed uploads, 20% mid-round client dropout, a heavy-tailed
(log-normal) network model, and a process-pool executor for the local
updates.  Prints, per algorithm, the final accuracy, raw vs on-the-wire
upload volume, simulated wall-clock time, and how many client participations
were lost to faults.

Run with:  python examples/systems_simulation.py
"""

from __future__ import annotations

from repro import (
    FaultInjector,
    FederatedSimulation,
    ShardPartitioner,
    Transport,
    UniformFractionSampler,
    build_algorithm,
    build_clients,
    build_codec,
    build_executor,
    build_network,
    make_blobs,
)
from repro.federated.heterogeneity import UniformRandomEpochs
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP

NUM_ROUNDS = 15
SEED = 0


def run_algorithm(name: str, **kwargs):
    """Run one algorithm through the full client-systems stack."""
    split = make_blobs(n_train=1500, n_test=500, rng=SEED)
    partition = ShardPartitioner(shards_per_client=2).partition(
        split.train, num_clients=30, rng=SEED
    )
    clients = build_clients(split.train, partition)
    model = MLP(input_dim=split.train.feature_dim, hidden_dims=(32,), rng=SEED)

    simulation = FederatedSimulation(
        algorithm=build_algorithm(name, **kwargs),
        model=model,
        clients=clients,
        test_dataset=split.test,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(0.2),
        local_work=UniformRandomEpochs(max_epochs=5),
        batch_size=32,
        learning_rate=0.1,
        seed=SEED,
        transport=Transport(build_codec("topk", fraction=0.25)),
        network=build_network("lognormal"),
        faults=FaultInjector(dropout_rate=0.2),
        executor=build_executor("process", max_workers=4),
    )
    return simulation.run(NUM_ROUNDS)


def main() -> None:
    print("FedADMM vs FedAvg under compression + dropout + stragglers\n")
    for name, kwargs in [("fedadmm", {"rho": 0.3}), ("fedavg", {})]:
        result = run_algorithm(name, **kwargs)
        ledger = result.ledger
        print(f"{name:8s}  final accuracy: {result.final_evaluation.accuracy:.3f}")
        print(f"          uploads: {ledger.upload_bytes / 1e6:.2f} MB raw -> "
              f"{ledger.upload_wire_bytes / 1e6:.2f} MB on the wire "
              f"({ledger.upload_compression_ratio:.1f}x compression)")
        print(f"          simulated time: {result.simulated_seconds / 60:.1f} min "
              f"over {result.rounds_run} rounds; "
              f"{result.history.total_dropped()} client drops\n")


if __name__ == "__main__":
    main()
