"""Event-driven asynchronous federation: sync vs async under stragglers.

Runs FedADMM on the same non-IID task twice — once with the lock-step
synchronous engine and once with the event-driven asynchronous engine
(buffered, staleness-weighted aggregation on a virtual clock) — under an
identical heavy-tailed log-normal network model, and prints the simulated
wall-clock each needed to reach the target accuracy.

Run with:  python examples/async_federation.py
"""

from __future__ import annotations

from repro import (
    AsyncFederatedSimulation,
    FederatedSimulation,
    ShardPartitioner,
    UniformFractionSampler,
    build_algorithm,
    build_clients,
    build_network,
    make_blobs,
)
from repro.federated.heterogeneity import UniformRandomEpochs
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP

TARGET = 0.80
ROUNDS = 25
NUM_CLIENTS = 30


def build(engine_cls, **extra):
    split = make_blobs(n_train=1500, n_test=500, rng=0)
    partition = ShardPartitioner(shards_per_client=2).partition(
        split.train, num_clients=NUM_CLIENTS, rng=0
    )
    clients = build_clients(split.train, partition)
    model = MLP(input_dim=split.train.feature_dim, hidden_dims=(32,), rng=0)
    return engine_cls(
        algorithm=build_algorithm("fedadmm", rho=0.5),
        model=model,
        clients=clients,
        test_dataset=split.test,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(0.2),
        local_work=UniformRandomEpochs(max_epochs=5),
        batch_size=32,
        learning_rate=0.1,
        seed=0,
        network=build_network("lognormal"),
        **extra,
    )


def main() -> None:
    sync_sim = build(FederatedSimulation)
    sync = sync_sim.run(ROUNDS, target_accuracy=TARGET, stop_at_target=True)

    async_sim = build(
        AsyncFederatedSimulation,
        buffer_size=6,           # == the sync cohort: 20% of 30 clients
        max_concurrency=12,      # clients training at any simulated instant
        staleness="polynomial",  # weight = (1 + staleness)^-0.5
    )
    asynchronous = async_sim.run(ROUNDS, target_accuracy=TARGET, stop_at_target=True)

    print(f"target accuracy: {TARGET:.0%}\n")
    for label, result in (("sync", sync), ("async", asynchronous)):
        seconds = result.history.seconds_to_accuracy(TARGET)
        print(
            f"{label:5s}  rounds-to-target: {result.rounds_to_target}  "
            f"simulated-seconds-to-target: "
            f"{'not reached' if seconds is None else f'{seconds:.2f}'}  "
            f"max staleness: {result.history.max_staleness()}"
        )
    print(
        "\nThe async engine aggregates its buffer as soon as the fastest "
        "clients fill it,\nso it stops paying for the slowest client of "
        "every synchronous round."
    )


if __name__ == "__main__":
    main()
