"""Adversary subsystem: behaviours, selection, defenses, and determinism.

The contracts under test:

* behaviours corrupt *copies* (honest inputs are never mutated) and every
  corruption draws from its own ``(client, round)`` RNG stream, so a
  corrupted run is bit-identical across isolated executors (thread vs
  process, any ``max_workers``) and close to serial under vectorization,
* defenses are pure cohort transforms with known closed forms,
* a defended flat ``SyncPlan`` round equals a defended 1-shard
  ``HierarchicalPlan`` round bit for bit (the accumulator buffers and
  finalises through the same ``DefendedAlgorithm.aggregate``),
* configs fail fast on unknown/invalid adversary and defense settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import ALGORITHM_REGISTRY, build_algorithm
from repro.algorithms.feddropoutavg import FedDropoutAvg, MaskedAverageAccumulator
from repro.datasets.base import Dataset
from repro.exceptions import ConfigurationError
from repro.experiments.configs import AlgorithmSpec, async_config, robustness_config
from repro.experiments.registry import ALL_ADVERSARIES
from repro.experiments.runner import run_single
from repro.federated.messages import ClientMessage
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import observe
from repro.obs.trace import Tracer
from repro.systems.adversaries import (
    ADVERSARY_REGISTRY,
    DEFENSE_REGISTRY,
    AdversaryModel,
    CoordinateMedianDefense,
    DefendedAlgorithm,
    GaussianNoiseAdversary,
    LabelFlipAdversary,
    NormClipDefense,
    ScaleAdversary,
    SignFlipAdversary,
    TrimmedMeanDefense,
    build_adversary,
    build_defense,
)


def rng(seed=0):
    return np.random.default_rng(seed)


# --------------------------------------------------------------------------- #
# Behaviours
# --------------------------------------------------------------------------- #
class TestBehaviours:
    def test_registry_matches_the_pinned_tuple(self):
        # The study layer advertises ALL_ADVERSARIES without importing this
        # module; the two must never drift apart.
        assert tuple(ADVERSARY_REGISTRY) == ALL_ADVERSARIES

    def test_sign_flip_negates_and_scales(self):
        direction = np.array([1.0, -2.0, 0.5])
        out = SignFlipAdversary(scale=3.0).corrupt_direction(direction, rng())
        np.testing.assert_array_equal(out, np.array([-3.0, 6.0, -1.5]))
        np.testing.assert_array_equal(direction, [1.0, -2.0, 0.5])

    def test_gaussian_noise_is_seeded_and_nonzero(self):
        direction = np.zeros(16)
        a = GaussianNoiseAdversary(sigma=2.0).corrupt_direction(direction, rng(7))
        b = GaussianNoiseAdversary(sigma=2.0).corrupt_direction(direction, rng(7))
        np.testing.assert_array_equal(a, b)
        assert np.linalg.norm(a) > 0

    def test_scale_supports_model_replacement_and_ipm(self):
        direction = np.array([1.0, -1.0])
        boosted = ScaleAdversary(factor=10.0).corrupt_direction(direction, rng())
        flipped = ScaleAdversary(factor=-0.5).corrupt_direction(direction, rng())
        np.testing.assert_array_equal(boosted, [10.0, -10.0])
        np.testing.assert_array_equal(flipped, [-0.5, 0.5])
        with pytest.raises(ConfigurationError):
            ScaleAdversary(factor=0.0)

    def test_label_flip_poisons_a_copy(self):
        dataset = Dataset(
            features=np.zeros((4, 2)),
            labels=np.array([0, 1, 2, 3]),
            name="toy",
        )
        poisoned = LabelFlipAdversary().poison_dataset(dataset)
        np.testing.assert_array_equal(poisoned.labels, [3, 2, 1, 0])
        np.testing.assert_array_equal(dataset.labels, [0, 1, 2, 3])
        assert poisoned.name == "toy-labelflip"
        assert poisoned.features is dataset.features  # no feature copy needed

    def test_label_flip_with_pinned_num_classes(self):
        dataset = Dataset(
            features=np.zeros((2, 2)), labels=np.array([0, 1]), name="toy"
        )
        poisoned = LabelFlipAdversary(num_classes=10).poison_dataset(dataset)
        np.testing.assert_array_equal(poisoned.labels, [9, 8])


# --------------------------------------------------------------------------- #
# The adversary model
# --------------------------------------------------------------------------- #
class TestAdversaryModel:
    def test_fraction_bounds(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                AdversaryModel(SignFlipAdversary(), bad)

    def test_selection_is_seed_deterministic_and_clamped(self):
        model = AdversaryModel(SignFlipAdversary(), 0.25)
        assert model.select(8, rng(3)) == model.select(8, rng(3))
        assert len(model.select(8, rng(3))) == 2
        # Tiny fractions still produce at least one adversary; fraction 1
        # corrupts everyone.
        assert len(AdversaryModel(SignFlipAdversary(), 0.01).select(8, rng(0))) == 1
        assert AdversaryModel(SignFlipAdversary(), 1.0).select(4, rng(0)) == {
            0, 1, 2, 3,
        }

    def _message(self, payload):
        return ClientMessage(
            client_id=0, payload=payload, num_samples=10, local_epochs=1,
            train_loss=0.5,
        )

    def test_direction_payloads_are_corrupted_in_place(self):
        model = AdversaryModel(SignFlipAdversary(scale=1.0), 0.5)
        theta = np.array([1.0, 1.0])
        message = self._message({"delta": np.array([0.5, -0.5])})
        out = model.corrupt_message(message, theta, rng())
        np.testing.assert_array_equal(out.payload["delta"], [-0.5, 0.5])
        np.testing.assert_array_equal(message.payload["delta"], [0.5, -0.5])
        assert out.num_samples == 10

    def test_model_payloads_are_corrupted_in_direction_space(self):
        # params = theta + d; sign flip must return theta - d, not -params.
        model = AdversaryModel(SignFlipAdversary(scale=1.0), 0.5)
        theta = np.array([10.0, 10.0])
        message = self._message({"params": np.array([11.0, 9.0])})
        out = model.corrupt_message(message, theta, rng())
        np.testing.assert_array_equal(out.payload["params"], [9.0, 11.0])

    def test_mask_is_protected_and_params_remasked(self):
        model = AdversaryModel(ScaleAdversary(factor=2.0), 0.5)
        theta = np.zeros(3)
        mask = np.array([1.0, 0.0, 1.0])
        message = self._message(
            {"params": np.array([1.0, 0.0, 2.0]), "mask": mask}
        )
        out = model.corrupt_message(message, theta, rng())
        np.testing.assert_array_equal(out.payload["mask"], mask)
        # doubled, then re-masked so masked coordinates stay zero
        np.testing.assert_array_equal(out.payload["params"], [2.0, 0.0, 4.0])

    def test_unknown_payload_keys_fail_loudly(self):
        model = AdversaryModel(SignFlipAdversary(), 0.5)
        with pytest.raises(ConfigurationError, match="mystery"):
            model.corrupt_message(
                self._message({"mystery": np.zeros(2)}), np.zeros(2), rng()
            )

    def test_build_adversary_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            build_adversary("nope", fraction=0.2)


# --------------------------------------------------------------------------- #
# Defenses
# --------------------------------------------------------------------------- #
class TestDefenses:
    def test_registry_contents(self):
        assert sorted(DEFENSE_REGISTRY) == ["median", "norm_clip", "trimmed_mean"]
        with pytest.raises(ConfigurationError, match="unknown defense"):
            build_defense("nope")

    def test_median_broadcasts_the_coordinate_median(self):
        vectors = np.array([[1.0, 10.0], [2.0, 20.0], [100.0, -5.0]])
        defended, rejected = CoordinateMedianDefense().apply(vectors)
        np.testing.assert_array_equal(defended, np.tile([2.0, 10.0], (3, 1)))
        assert rejected == 2

    def test_trimmed_mean_cuts_each_tail(self):
        vectors = np.array([[0.0], [1.0], [2.0], [100.0]])
        defended, rejected = TrimmedMeanDefense(trim=0.25).apply(vectors)
        np.testing.assert_array_equal(defended, np.full((4, 1), 1.5))
        assert rejected == 2

    def test_trimmed_mean_never_trims_everything(self):
        # With two rows a 0.4 trim would cut 0 from each end (floor), and
        # even aggressive trims must leave at least one row.
        vectors = np.array([[0.0], [10.0]])
        defended, rejected = TrimmedMeanDefense(trim=0.4).apply(vectors)
        np.testing.assert_array_equal(defended, np.full((2, 1), 5.0))
        assert rejected == 0
        with pytest.raises(ConfigurationError):
            TrimmedMeanDefense(trim=0.5)

    def test_norm_clip_caps_at_the_median_norm(self):
        vectors = np.array([[3.0, 4.0], [0.6, 0.8], [30.0, 40.0]])
        defended, rejected = NormClipDefense().apply(vectors)
        norms = np.linalg.norm(defended, axis=1)
        np.testing.assert_allclose(norms, [5.0, 1.0, 5.0])
        # directions preserved
        np.testing.assert_allclose(defended[2] / norms[2], vectors[2] / 50.0)
        assert rejected == 1


# --------------------------------------------------------------------------- #
# Defended aggregation
# --------------------------------------------------------------------------- #
def tiny_robustness_cfg(**overrides):
    base = robustness_config("blobs", non_iid=True, seed=4)
    return base.with_overrides(
        num_clients=8,
        n_train=320,
        n_test=120,
        num_rounds=3,
        client_fraction=0.5,
        **overrides,
    )


class TestDefendedAlgorithm:
    def test_wrapper_surfaces(self):
        defended = DefendedAlgorithm(
            build_algorithm("fedadmm", rho=0.3), build_defense("median")
        )
        assert defended.name == "fedadmm"
        assert defended.supports_async is False
        assert defended.supports_plan("sync")
        assert defended.supports_plan("hierarchical")
        assert not defended.supports_plan("async")
        assert not defended.supports_plan("semisync")

    @pytest.mark.parametrize(
        ("algorithm", "defense"),
        [("fedadmm", "median"), ("fedavg", "trimmed_mean")],
    )
    def test_flat_equals_one_shard_hierarchy(self, algorithm, defense):
        spec = AlgorithmSpec(
            algorithm, {"rho": 0.3} if algorithm == "fedadmm" else {}
        )
        flat = run_single(
            tiny_robustness_cfg(defense=defense), spec, stop_at_target=False
        )
        sharded = run_single(
            tiny_robustness_cfg(defense=defense, plan="hierarchical", num_shards=1),
            spec,
            stop_at_target=False,
        )
        assert (flat.final_params == sharded.final_params).all()
        assert [r.test_accuracy for r in flat.history.records] == [
            r.test_accuracy for r in sharded.history.records
        ]

    def test_median_neutralises_a_huge_outlier(self):
        # One boosted update must not move the defended aggregate: the
        # coordinate median of {d, d, 1000d} is d for every coordinate.
        defended = DefendedAlgorithm(_StubAlgorithm(), build_defense("median"))
        theta = np.zeros(2)
        honest = np.array([1.0, -1.0])
        messages = [
            ClientMessage(client_id=i, payload={"delta": honest.copy()},
                          num_samples=5, local_epochs=1, train_loss=0.1)
            for i in range(2)
        ]
        messages.append(
            ClientMessage(client_id=2, payload={"delta": honest * 1000.0},
                          num_samples=5, local_epochs=1, train_loss=0.1)
        )
        out, rejected = defended._defend(theta, messages)
        for message in out:
            np.testing.assert_array_equal(message.payload["delta"], honest)
        assert rejected == 2

    def test_obs_counters_and_span(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        cfg = tiny_robustness_cfg(defense="median")
        with observe(tracer=tracer, metrics=metrics):
            run_single(
                cfg, AlgorithmSpec("fedavg", {}), stop_at_target=False
            )
        counters = metrics.snapshot()["counters"]
        assert counters["adversary.corrupted_updates"] > 0
        assert counters["defense.rejected_updates"] > 0
        assert any(r.name == "defense" for r in tracer.sorted_records())


class _StubAlgorithm:
    """Minimal algorithm stand-in for unit-level _defend tests."""

    name = "stub"
    supports_batched = False
    shuffles_minibatches = False

    def supports_plan(self, plan_name):  # pragma: no cover - not exercised
        return plan_name == "sync"


# --------------------------------------------------------------------------- #
# Determinism of corrupted runs
# --------------------------------------------------------------------------- #
def fingerprint(result):
    return {
        "accuracies": [r.test_accuracy for r in result.history.records],
        "train_losses": [r.train_loss for r in result.history.records],
        "params": result.final_params.tobytes(),
    }


class TestCorruptedRunDeterminism:
    SPEC = AlgorithmSpec("fedadmm", {"rho": 0.3})

    def sync_cfg(self, **overrides):
        return tiny_robustness_cfg(adversary="sign_flip", **overrides)

    @pytest.mark.slow
    def test_sync_thread_equals_process_bitwise(self):
        thread = run_single(
            self.sync_cfg(executor="thread", max_workers=2),
            self.SPEC, stop_at_target=False,
        )
        process = run_single(
            self.sync_cfg(executor="process", max_workers=2),
            self.SPEC, stop_at_target=False,
        )
        assert fingerprint(thread) == fingerprint(process)

    def test_sync_thread_is_max_workers_invariant(self):
        one = run_single(
            self.sync_cfg(executor="thread", max_workers=1),
            self.SPEC, stop_at_target=False,
        )
        four = run_single(
            self.sync_cfg(executor="thread", max_workers=4),
            self.SPEC, stop_at_target=False,
        )
        assert fingerprint(one) == fingerprint(four)

    def test_sync_serial_close_to_vectorized(self):
        serial = run_single(self.sync_cfg(), self.SPEC, stop_at_target=False)
        vectorized = run_single(
            self.sync_cfg(executor="vectorized"), self.SPEC, stop_at_target=False
        )
        np.testing.assert_allclose(
            vectorized.final_params, serial.final_params, atol=1e-8, rtol=0
        )

    def test_poisoned_runs_are_serial_thread_identical(self):
        # label_flip corrupts data, not uploads: determinism must hold for
        # the poisoning path too (thread/process share per-task seeding;
        # compare thread across worker counts).
        cfg = tiny_robustness_cfg(adversary="label_flip")
        one = run_single(
            cfg.with_overrides(executor="thread", max_workers=1),
            self.SPEC, stop_at_target=False,
        )
        four = run_single(
            cfg.with_overrides(executor="thread", max_workers=4),
            self.SPEC, stop_at_target=False,
        )
        assert fingerprint(one) == fingerprint(four)

    @pytest.mark.slow
    def test_async_corrupted_identical_across_executors(self):
        def run(executor):
            cfg = async_config("blobs", non_iid=True, seed=4).with_overrides(
                num_clients=8,
                n_train=320,
                n_test=120,
                num_rounds=4,
                buffer_size=2,
                max_concurrency=4,
                executor=executor,
                max_workers=2,
                adversary="sign_flip",
                adversary_fraction=0.25,
            )
            return run_single(cfg, self.SPEC, stop_at_target=False)

        serial, thread, process = run("serial"), run("thread"), run("process")
        assert fingerprint(serial) == fingerprint(thread)
        assert fingerprint(serial) == fingerprint(process)

    def test_adversarial_subset_is_a_seed_property(self):
        # Same seed, different executors: the chosen adversaries agree.
        from repro.experiments.runner import build_simulation

        cfg = self.sync_cfg()
        serial = build_simulation(cfg, self.SPEC)
        thread = build_simulation(cfg.with_overrides(executor="thread"), self.SPEC)
        assert serial.pipeline.adversarial == thread.pipeline.adversarial
        assert len(serial.pipeline.adversarial) == 2  # 25% of 8


# --------------------------------------------------------------------------- #
# Config validation
# --------------------------------------------------------------------------- #
class TestConfigValidation:
    def test_unknown_adversary_and_defense(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            tiny_robustness_cfg(adversary="nope")
        with pytest.raises(ConfigurationError, match="unknown defense"):
            tiny_robustness_cfg(defense="nope")

    def test_adversary_needs_a_positive_fraction(self):
        with pytest.raises(ConfigurationError, match="adversary_fraction"):
            tiny_robustness_cfg(adversary_fraction=0.0)
        with pytest.raises(ConfigurationError, match="adversary_fraction"):
            tiny_robustness_cfg(adversary_fraction=1.5)

    def test_defense_is_sync_only(self):
        with pytest.raises(ConfigurationError, match="sync"):
            async_config("blobs").with_overrides(defense="median")


# --------------------------------------------------------------------------- #
# FedDropoutAvg
# --------------------------------------------------------------------------- #
class TestFedDropoutAvg:
    def test_registered(self):
        assert "feddropoutavg" in ALGORITHM_REGISTRY
        algorithm = build_algorithm("feddropoutavg", dropout_rate=0.5)
        assert isinstance(algorithm, FedDropoutAvg)
        assert not algorithm.supports_async
        assert not algorithm.supports_batched
        with pytest.raises(ConfigurationError):
            build_algorithm("feddropoutavg", dropout_rate=1.0)

    def _message(self, client_id, params, mask):
        return ClientMessage(
            client_id=client_id,
            payload={
                "params": np.asarray(params, dtype=np.float64),
                "mask": np.asarray(mask, dtype=np.float64),
            },
            num_samples=10,
            local_epochs=1,
            train_loss=0.5,
        )

    def test_mask_aware_average_with_fallback(self):
        algorithm = FedDropoutAvg()
        theta = np.array([7.0, 7.0, 7.0])
        messages = [
            self._message(0, [2.0, 0.0, 0.0], [1.0, 0.0, 0.0]),
            self._message(1, [4.0, 6.0, 0.0], [1.0, 1.0, 0.0]),
        ]
        out = algorithm.aggregate(theta, {}, messages, num_clients=2, round_index=0)
        # coord 0: (2+4)/2; coord 1: 6/1; coord 2: unreported -> theta
        np.testing.assert_array_equal(out, [3.0, 6.0, 7.0])

    def test_accumulator_merge_matches_batch(self):
        algorithm = FedDropoutAvg()
        theta = np.zeros(2)
        messages = [
            self._message(0, [1.0, 0.0], [1.0, 0.0]),
            self._message(1, [0.0, 2.0], [0.0, 1.0]),
            self._message(2, [3.0, 4.0], [1.0, 1.0]),
        ]
        batch = algorithm.aggregate(theta, {}, messages, 3, 0)
        left = MaskedAverageAccumulator(theta, 3, 0)
        right = MaskedAverageAccumulator(theta, 3, 0)
        left.accumulate(messages[0])
        right.accumulate(messages[1])
        right.accumulate(messages[2])
        left.merge(right)
        np.testing.assert_array_equal(left.finalise(), batch)
        with pytest.raises(ConfigurationError):
            MaskedAverageAccumulator(theta, 3, 0).finalise()

    def test_end_to_end_training_learns(self):
        cfg = tiny_robustness_cfg(adversary=None, adversary_fraction=0.0)
        result = run_single(
            cfg.with_overrides(num_rounds=6),
            AlgorithmSpec("feddropoutavg", {"dropout_rate": 0.2}),
            stop_at_target=False,
        )
        assert result.history.final_accuracy() > 0.5
