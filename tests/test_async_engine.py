"""Tests for the event-driven asynchronous engine and its scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.exceptions import ConfigurationError, SimulationError
from repro.federated.async_engine import (
    AsyncFederatedSimulation,
    ConstantStaleness,
    PolynomialStaleness,
    StaleUpdate,
    build_staleness,
)
from repro.federated.engine import FederatedSimulation
from repro.federated.messages import ClientMessage
from repro.federated.scheduler import AsyncScheduler, EventQueue
from repro.systems.faults import FaultInjector
from repro.systems.network import (
    ClientSystemProfile,
    HomogeneousNetwork,
    LogNormalNetwork,
)

from conftest import make_model


def make_async_sim(algorithm_name, clients, test_dataset, *, seed=0, **kwargs):
    kwargs.setdefault("network", LogNormalNetwork())
    algo_kwargs = {"rho": 0.3} if algorithm_name in ("fedadmm", "fedprox") else {}
    return AsyncFederatedSimulation(
        algorithm=build_algorithm(algorithm_name, **algo_kwargs),
        model=make_model(seed=0),
        clients=clients,
        test_dataset=test_dataset,
        batch_size=16,
        learning_rate=0.1,
        seed=seed,
        **kwargs,
    )


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, 0)
        queue.push(1.0, 1)
        queue.push(2.0, 2)
        assert [queue.pop().client_id for _ in range(3)] == [1, 2, 0]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        for client_id in (5, 3, 9):
            queue.push(1.0, client_id)
        assert [queue.pop().client_id for _ in range(3)] == [5, 3, 9]

    def test_empty_pop_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            EventQueue().push(-1.0, 0)


class TestAsyncScheduler:
    def test_clock_advances_to_completions(self):
        scheduler = AsyncScheduler(4)
        scheduler.dispatch(0, 5.0, payload="slow")
        scheduler.dispatch(1, 1.0, payload="fast")
        event = scheduler.next_completion()
        assert (event.client_id, event.payload) == (1, "fast")
        assert scheduler.now == 1.0
        assert scheduler.next_completion().client_id == 0
        assert scheduler.now == 5.0

    def test_dispatch_from_now_not_zero(self):
        scheduler = AsyncScheduler(2)
        scheduler.dispatch(0, 2.0)
        scheduler.next_completion()
        scheduler.dispatch(1, 1.0)
        assert scheduler.next_completion().time == 3.0

    def test_in_flight_bookkeeping(self):
        scheduler = AsyncScheduler(3)
        scheduler.dispatch(1, 1.0)
        assert not scheduler.is_idle(1)
        assert list(scheduler.idle_clients()) == [0, 2]
        with pytest.raises(SimulationError):
            scheduler.dispatch(1, 1.0)
        scheduler.next_completion()
        assert scheduler.is_idle(1)

    def test_bad_ids_and_durations(self):
        scheduler = AsyncScheduler(2)
        with pytest.raises(ConfigurationError):
            scheduler.dispatch(2, 1.0)
        with pytest.raises(ConfigurationError):
            scheduler.dispatch(0, -1.0)
        with pytest.raises(ConfigurationError):
            AsyncScheduler(0)


class TestStalenessPolicies:
    def test_constant(self):
        policy = ConstantStaleness()
        assert policy.weight(0) == policy.weight(100) == 1.0

    def test_polynomial_decay(self):
        policy = PolynomialStaleness(exponent=0.5)
        assert policy.weight(0) == 1.0
        assert policy.weight(3) == pytest.approx(0.5)
        assert policy.weight(1) > policy.weight(2)

    def test_polynomial_validation(self):
        with pytest.raises(ConfigurationError):
            PolynomialStaleness(exponent=-1.0)
        with pytest.raises(ConfigurationError):
            PolynomialStaleness().weight(-1)

    def test_registry(self):
        assert isinstance(build_staleness("constant"), ConstantStaleness)
        built = build_staleness("polynomial", exponent=2.0)
        assert built.exponent == 2.0
        with pytest.raises(ConfigurationError):
            build_staleness("exponential")


class TestAsyncEngine:
    def test_staleness_fields_recorded(self, iid_clients, blobs_split):
        sim = make_async_sim(
            "fedadmm", iid_clients, blobs_split.test,
            buffer_size=2, max_concurrency=5,
        )
        result = sim.run(6)
        assert result.rounds_run == 6
        assert sim.model_version == 6
        for record in result.history.records:
            assert record.model_version == record.round_index
            assert record.mean_staleness >= 0.0
            assert record.max_staleness >= 0
        # With concurrency above the buffer size some updates must be stale.
        assert result.history.max_staleness() > 0
        assert result.metadata["mode"] == "async"
        assert result.simulated_seconds > 0

    def test_deterministic_across_runs(self, blobs_split, iid_partition):
        from repro.federated.client import build_clients

        histories = []
        for _ in range(2):
            clients = build_clients(blobs_split.train, iid_partition)
            sim = make_async_sim(
                "fedavg", clients, blobs_split.test, seed=3,
                buffer_size=2, max_concurrency=4,
            )
            histories.append(sim.run(5).history)
        first, second = histories
        assert [r.test_accuracy for r in first.records] == [
            r.test_accuracy for r in second.records
        ]
        assert [r.simulated_seconds for r in first.records] == [
            r.simulated_seconds for r in second.records
        ]

    def test_fresh_buffered_fedavg_matches_sync_aggregate(self):
        """With zero staleness the default async mix is the sync uniform mean."""
        algorithm = build_algorithm("fedavg")
        base = np.zeros(4)
        models = [np.full(4, 1.0), np.full(4, 3.0)]
        messages = [
            ClientMessage(client_id=i, payload={"params": m}, num_samples=10,
                          local_epochs=1, train_loss=0.0)
            for i, m in enumerate(models)
        ]
        sync = algorithm.aggregate(base, {}, messages, num_clients=4, round_index=0)
        updates = [
            StaleUpdate(message=msg, base_params=base, base_version=0)
            for msg in messages
        ]
        asynchronous = algorithm.aggregate_async(base, {}, updates, 4, 0)
        np.testing.assert_allclose(asynchronous, sync)

    def test_staleness_damping_shrinks_fedavg_updates(self):
        algorithm = build_algorithm("fedavg")
        base = np.zeros(4)
        message = ClientMessage(client_id=0, payload={"params": np.full(4, 2.0)},
                                num_samples=10, local_epochs=1, train_loss=0.0)
        fresh = StaleUpdate(message=message, base_params=base, base_version=0,
                            staleness=0, weight=1.0)
        stale = StaleUpdate(message=message, base_params=base, base_version=0,
                            staleness=3, weight=0.5)
        full = algorithm.aggregate_async(base, {}, [fresh], 4, 0)
        damped = algorithm.aggregate_async(base, {}, [stale], 4, 0)
        np.testing.assert_allclose(damped, 0.5 * full)

    def test_fedadmm_uses_raw_deltas_scaled_by_trust(self):
        """FedADMM never differences against a stale base: the dual-corrected
        delta passes straight into the tracking update, scaled only by the
        staleness trust weight (eta = 1 here)."""
        algorithm = build_algorithm("fedadmm", rho=0.3)
        base = np.full(4, 7.0)  # a base the delta must NOT be differenced with
        delta = np.full(4, 1.0)
        message = ClientMessage(client_id=0, payload={"delta": delta},
                                num_samples=10, local_epochs=1, train_loss=0.0)
        stale = StaleUpdate(message=message, base_params=base, base_version=0,
                            staleness=5, weight=0.1)
        mixed = algorithm.aggregate_async(np.zeros(4), {}, [stale], 4, 0)
        np.testing.assert_allclose(mixed, 0.1 * delta)
        fresh = StaleUpdate(message=message, base_params=base, base_version=0,
                            staleness=0, weight=1.0)
        np.testing.assert_allclose(
            algorithm.aggregate_async(np.zeros(4), {}, [fresh], 4, 0), delta
        )

    def test_unsupported_algorithms_rejected(self, iid_clients, blobs_split):
        for name in ("scaffold", "fedpd"):
            with pytest.raises(ConfigurationError):
                make_async_sim(name, iid_clients, blobs_split.test)

    def test_fault_configs_that_never_deliver_rejected(
        self, iid_clients, blobs_split
    ):
        """An instant deadline or certain dropout can never fill the buffer;
        the sync engine models those as abandoned rounds, the async engine
        refuses them up front."""
        with pytest.raises(ConfigurationError):
            make_async_sim(
                "fedavg", iid_clients, blobs_split.test,
                faults=FaultInjector(deadline_s=0.0),
            )
        with pytest.raises(ConfigurationError):
            make_async_sim(
                "fedavg", iid_clients, blobs_split.test,
                faults=FaultInjector(dropout_rate=1.0),
            )

    def test_buffer_size_validation(self, iid_clients, blobs_split):
        with pytest.raises(ConfigurationError):
            make_async_sim("fedavg", iid_clients, blobs_split.test, buffer_size=0)
        with pytest.raises(ConfigurationError):
            make_async_sim(
                "fedavg", iid_clients, blobs_split.test,
                buffer_size=len(iid_clients) + 1,
            )
        with pytest.raises(ConfigurationError):
            make_async_sim(
                "fedavg", iid_clients, blobs_split.test, max_concurrency=0
            )

    def test_defaults_without_network_model(self, iid_clients, blobs_split):
        """No network model: homogeneous profiles drive the virtual clock."""
        sim = make_async_sim("fedavg", iid_clients, blobs_split.test, network=None)
        record = sim.run_round()
        assert record.simulated_seconds > 0
        assert isinstance(sim.network, HomogeneousNetwork)

    def test_faults_charge_downloads_but_not_uploads(self, iid_clients, blobs_split):
        sim = make_async_sim(
            "fedavg", iid_clients, blobs_split.test,
            buffer_size=2, max_concurrency=4,
            faults=FaultInjector(dropout_rate=0.5),
        )
        result = sim.run(4)
        dropped = result.history.total_dropped()
        assert dropped > 0
        dim = result.final_params.size
        # Every dispatch (delivered or crashed) downloaded the model.
        assert result.ledger.download_floats >= (
            result.ledger.upload_floats // dim + dropped
        ) * dim

    def test_deadline_discards_slow_updates(self, iid_clients, blobs_split):
        slow = ClientSystemProfile(seconds_per_sample_epoch=1.0)
        sim = make_async_sim(
            "fedavg", iid_clients, blobs_split.test,
            network=LogNormalNetwork(base=slow, compute_sigma=2.0),
            buffer_size=1, max_concurrency=4,
            faults=FaultInjector(deadline_s=60.0),
        )
        result = sim.run(3)
        assert result.rounds_run == 3  # fast clients still fill the buffer

    def test_sync_records_report_zero_staleness(self, iid_clients, blobs_split):
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedavg"),
            model=make_model(seed=0),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            batch_size=16,
            seed=0,
        )
        record = sim.run_round()
        assert record.model_version == record.round_index
        assert record.mean_staleness == 0.0
        assert record.max_staleness == 0

    def test_seconds_to_accuracy(self, iid_clients, blobs_split):
        sim = make_async_sim("fedadmm", iid_clients, blobs_split.test,
                             buffer_size=2, max_concurrency=4)
        result = sim.run(8)
        history = result.history
        best = history.best_accuracy()
        seconds = history.seconds_to_accuracy(best)
        assert seconds is not None
        assert 0 < seconds <= history.total_simulated_seconds() + 1e-12
        assert history.seconds_to_accuracy(1.1) is None
