"""Tests for the experiment harness: configs, runner studies, tables, figures."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.configs import (
    AlgorithmSpec,
    ExperimentConfig,
    async_config,
    default_algorithms,
    fig3_config,
    fig5_config,
    fig6_config,
    fig8_config,
    fig9_config,
    table3_config,
    table4_config,
    table5_config,
    table6_config,
)
from repro.experiments.configs import semisync_config
from repro.experiments.figures import accuracy_series, final_accuracies, series_to_text
from repro.experiments.runner import (
    build_simulation,
    prepare_environment,
    rounds_summary,
    run_comparison,
    run_single,
)
from repro.experiments.studies import (
    run_async_study,
    run_imbalanced_study,
    run_local_epochs_study,
    run_local_init_study,
    run_rho_schedule_study,
    run_rho_sensitivity_table,
    run_scale_sweep,
    run_semisync_study,
    run_server_stepsize_study,
)
from repro.experiments.tables import comparison_to_rows, format_table, table3_text

# A deliberately tiny configuration so every study smoke-tests in seconds.
TINY = ExperimentConfig(
    name="tiny",
    dataset="blobs",
    n_train=300,
    n_test=120,
    model="mlp",
    model_kwargs={"input_dim": 32, "hidden_dims": (16,)},
    num_clients=10,
    partition="iid",
    client_fraction=0.3,
    local_epochs=2,
    batch_size=16,
    learning_rate=0.2,
    num_rounds=4,
    target_accuracy=0.5,
    seed=0,
)

TINY_NON_IID = TINY.with_overrides(
    name="tiny-noniid", partition="shard", partition_kwargs={"shards_per_client": 2}
)


class TestConfigs:
    def test_all_presets_construct_at_bench_scale(self):
        presets = [
            table3_config(),
            table3_config(dataset="cifar10", non_iid=True),
            table4_config(),
            table5_config(),
            table6_config(),
            fig3_config(),
            fig5_config(),
            fig6_config(),
            fig8_config(),
            fig9_config(),
        ]
        for preset in presets:
            assert preset.num_clients > 0
            assert 0 < preset.target_accuracy <= 1

    def test_paper_scale_uses_paper_models_and_targets(self):
        mnist = table3_config(dataset="mnist", scale="paper")
        assert mnist.model == "cnn1"
        assert mnist.target_accuracy == 0.97
        cifar = table3_config(dataset="cifar10", scale="paper", num_clients=1000)
        assert cifar.model == "cnn2"
        assert cifar.local_epochs == 20

    def test_table6_uses_imbalanced_partition(self):
        assert table6_config().partition == "imbalanced"

    def test_table4_disables_system_heterogeneity(self):
        assert table4_config().system_heterogeneity is False

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            table3_config(scale="huge")

    def test_with_overrides(self):
        assert TINY.with_overrides(num_rounds=9).num_rounds == 9
        with pytest.raises(ConfigurationError):
            TINY.with_overrides(client_fraction=0.0)

    def test_default_algorithms_labels(self):
        labels = [spec.label() for spec in default_algorithms()]
        assert any(label.startswith("fedadmm") for label in labels)
        assert any(label.startswith("fedsgd") for label in labels)
        assert AlgorithmSpec("fedprox", {"rho": 0.1}).label() == "fedprox(rho=0.1)"


class TestRunnerBasics:
    def test_prepare_environment(self):
        split, clients, stats = prepare_environment(TINY)
        assert len(clients) == 10
        assert stats.total_samples == TINY.n_train
        assert split.test.feature_dim == 32

    def test_build_simulation_uses_config(self):
        sim = build_simulation(TINY, AlgorithmSpec("fedavg", {}))
        assert len(sim.clients) == TINY.num_clients
        assert sim.learning_rate == TINY.learning_rate

    def test_run_single_stops_at_target(self):
        result = run_single(TINY, AlgorithmSpec("fedavg", {}), stop_at_target=True)
        assert result.rounds_run <= TINY.num_rounds

    def test_run_comparison_shares_data_and_isolates_state(self):
        comparison = run_comparison(
            TINY, [AlgorithmSpec("fedadmm", {"rho": 0.3}), AlgorithmSpec("fedavg", {})]
        )
        assert set(comparison.rounds_table()) == {"fedadmm(rho=0.3)", "fedavg"}
        assert comparison.partition_stats.total_samples == TINY.n_train

    def test_rounds_summary_and_reduction(self):
        comparison = run_comparison(
            TINY,
            [
                AlgorithmSpec("fedsgd", {"server_learning_rate": 0.5}),
                AlgorithmSpec("fedadmm", {"rho": 0.3}),
                AlgorithmSpec("fedavg", {}),
            ],
        )
        summary = rounds_summary(comparison)
        assert set(summary) == set(comparison.results)
        for info in summary.values():
            assert "rounds" in info and "formatted" in info
        # reduction_of returns None or a float < 1
        reduction = comparison.reduction_of("fedadmm(rho=0.3)")
        assert reduction is None or reduction < 1.0

    def test_empty_algorithm_list_rejected(self):
        with pytest.raises(ConfigurationError):
            run_comparison(TINY, [])


class TestStudies:
    def test_scale_sweep(self):
        sweeps = run_scale_sweep(
            TINY, populations=[6, 12], algorithms=[AlgorithmSpec("fedavg", {})]
        )
        assert set(sweeps) == {6, 12}
        assert sweeps[6].config.num_clients == 6

    def test_server_stepsize_study_includes_switch(self):
        results = run_server_stepsize_study(
            TINY_NON_IID, etas=(0.5, 1.0), switch_round=2, rho=0.3
        )
        assert len(results) == 3
        assert any("->" in label for label in results)
        for result in results.values():
            assert result.rounds_run == TINY_NON_IID.num_rounds

    def test_local_epochs_study(self):
        results = run_local_epochs_study(TINY, epoch_counts=(1, 2), rho=0.3)
        assert set(results) == {1, 2}

    def test_local_init_study_labels(self):
        results = run_local_init_study(TINY_NON_IID, etas=(1.0,), rho=0.3)
        assert set(results) == {"I-warm-eta=1.0", "II-restart-eta=1.0"}

    def test_rho_sensitivity_table(self):
        table = run_rho_sensitivity_table(
            {"tiny": TINY_NON_IID}, prox_rhos=(0.1,), admm_rho=0.3
        )
        labels = set(table["tiny"].results)
        assert labels == {"fedadmm(rho=0.3)", "fedprox(rho=0.1)"}

    def test_rho_schedule_study(self):
        results = run_rho_schedule_study(
            TINY_NON_IID, constant_rhos=(0.3,), switch_round=2, switch_values=(0.3, 1.0)
        )
        assert len(results) == 2

    def test_async_config_preset(self):
        config = async_config("blobs", non_iid=True)
        assert config.async_mode
        assert config.network == "lognormal"
        assert config.staleness == "polynomial"

    def test_build_simulation_dispatches_on_async_mode(self):
        from repro.federated.async_engine import AsyncFederatedSimulation

        config = TINY.with_overrides(
            async_mode=True, buffer_size=2, max_concurrency=3
        )
        simulation = build_simulation(config, AlgorithmSpec("fedavg", {}))
        assert isinstance(simulation, AsyncFederatedSimulation)
        assert simulation.buffer_size == 2
        assert simulation.max_concurrency == 3
        sync = build_simulation(TINY, AlgorithmSpec("fedavg", {}))
        assert not isinstance(sync, AsyncFederatedSimulation)

    def test_async_buffer_defaults_to_sync_cohort(self):
        config = TINY.with_overrides(async_mode=True)
        simulation = build_simulation(config, AlgorithmSpec("fedavg", {}))
        # client_fraction 0.3 of 10 clients -> 3-client cohort.
        assert simulation.buffer_size == 3

    def test_run_async_study_runs_both_modes(self):
        config = TINY.with_overrides(
            async_mode=True, num_rounds=2, buffer_size=2, network="lognormal"
        )
        studies = run_async_study(
            config, [AlgorithmSpec("fedavg", {})], stop_at_target=False
        )
        assert set(studies) == {"sync", "async"}
        sync_result = next(iter(studies["sync"].results.values()))
        async_result = next(iter(studies["async"].results.values()))
        assert sync_result.history.max_staleness() == 0
        assert async_result.metadata["mode"] == "async"
        assert async_result.simulated_seconds > 0

    def test_run_async_study_rejects_sync_config(self):
        with pytest.raises(ConfigurationError):
            run_async_study(TINY, [AlgorithmSpec("fedavg", {})])

    def test_mode_and_async_mode_stay_consistent(self):
        config = TINY.with_overrides(async_mode=True)
        assert config.mode == "async"
        back = config.with_overrides(async_mode=False)
        assert back.mode == "sync" and not back.async_mode
        semi = TINY.with_overrides(mode="semisync")
        assert not semi.async_mode
        with pytest.raises(ConfigurationError):
            TINY.with_overrides(mode="lockstep")

    def test_build_simulation_dispatches_on_semisync_mode(self):
        from repro.federated.plans import SemiSyncPlan
        from repro.systems.network import HomogeneousNetwork

        config = TINY.with_overrides(mode="semisync", round_deadline_s=5.0)
        simulation = build_simulation(config, AlgorithmSpec("fedavg", {}))
        assert isinstance(simulation.plan, SemiSyncPlan)
        assert simulation.plan.round_deadline_s == 5.0
        # No network configured: the homogeneous default drives the clock.
        assert isinstance(simulation.network, HomogeneousNetwork)

    def test_semisync_config_preset(self):
        config = semisync_config("blobs", non_iid=True)
        assert config.mode == "semisync"
        assert config.network == "lognormal"
        assert not config.async_mode

    def test_run_semisync_study_runs_both_modes(self):
        config = TINY.with_overrides(
            mode="semisync", num_rounds=3, network="lognormal"
        )
        studies = run_semisync_study(
            config, [AlgorithmSpec("fedavg", {})], stop_at_target=False
        )
        assert set(studies) == {"sync", "semisync"}
        semi_result = next(iter(studies["semisync"].results.values()))
        assert semi_result.metadata["mode"] == "semisync"
        assert semi_result.metadata["round_deadline_s"] > 0
        deadlines = [r.deadline_s for r in semi_result.history.records]
        assert all(d is not None and d > 0 for d in deadlines)

    def test_run_semisync_study_rejects_sync_config(self):
        with pytest.raises(ConfigurationError):
            run_semisync_study(TINY, [AlgorithmSpec("fedavg", {})])

    def test_imbalanced_study_requires_imbalanced_partition(self):
        with pytest.raises(ConfigurationError):
            run_imbalanced_study(TINY, [AlgorithmSpec("fedavg", {})])

    def test_imbalanced_study_runs(self):
        config = TINY.with_overrides(
            name="tiny-imbalanced",
            partition="imbalanced",
            partition_kwargs={"num_groups": 5},
            num_clients=10,
        )
        comparison = run_imbalanced_study(config, [AlgorithmSpec("fedavg", {})])
        assert comparison.partition_stats.std_samples > 0


class TestTablesAndFigures:
    def _comparison(self):
        return run_comparison(
            TINY,
            [
                AlgorithmSpec("fedsgd", {"server_learning_rate": 0.5}),
                AlgorithmSpec("fedadmm", {"rho": 0.3}),
            ],
        )

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": None}, {"a": 20, "b": 0.5}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "-" in lines[1]

    def test_format_empty_table(self):
        assert format_table([]) == "(empty table)"

    def test_comparison_to_rows(self):
        rows = comparison_to_rows(self._comparison())
        assert len(rows) == 2
        assert {"method", "rounds", "speedup_vs_fedsgd"} <= set(rows[0])

    def test_table3_text_contains_reduction_row(self):
        text = table3_text({"tiny": self._comparison()})
        assert "reduction" in text

    def test_accuracy_series_and_text(self):
        comparison = self._comparison()
        series = {
            label: accuracy_series(result) for label, result in comparison.results.items()
        }
        text = series_to_text(series, max_points=3)
        assert all(label in text for label in series)
        finals = final_accuracies(comparison.results)
        assert all(0.0 <= value <= 1.0 for value in finals.values())
