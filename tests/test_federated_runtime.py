"""Tests for the federated runtime: local problems, clients, samplers,
heterogeneity policies, messages, history, evaluation."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState, build_clients
from repro.federated.evaluation import evaluate_model
from repro.federated.heterogeneity import (
    FixedEpochs,
    PerClientEpochs,
    UniformRandomEpochs,
)
from repro.federated.history import RoundRecord, TrainingHistory
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import BYTES_PER_FLOAT, ClientMessage, CommunicationLedger
from repro.federated.sampler import (
    BernoulliSampler,
    FixedScheduleSampler,
    UniformFractionSampler,
)
from repro.nn.losses import CrossEntropyLoss
from tests.conftest import make_model


class TestLocalProblem:
    def test_dimensions(self, local_problem):
        assert local_problem.dim == local_problem.model.num_params
        assert local_problem.num_samples == 60

    def test_full_gradient_matches_batch_average(self, local_problem):
        params = local_problem.model.get_flat_params()
        loss_full, grad_full = local_problem.full_loss_and_grad(params, batch_size=None)
        loss_chunked, grad_chunked = local_problem.full_loss_and_grad(params, batch_size=7)
        assert np.isclose(loss_full, loss_chunked)
        assert np.allclose(grad_full, grad_chunked)

    def test_gradient_descent_on_problem_reduces_loss(self, local_problem):
        params = local_problem.model.get_flat_params()
        initial = local_problem.full_loss(params)
        for _ in range(15):
            _, grad = local_problem.full_loss_and_grad(params)
            params = params - 0.2 * grad
        assert local_problem.full_loss(params) < initial

    def test_minibatches_cover_dataset(self, local_problem):
        batches = list(local_problem.minibatches(batch_size=16, rng=0))
        total = sum(len(labels) for _, labels in batches)
        assert total == local_problem.num_samples

    def test_empty_dataset_rejected(self, blobs_split):
        empty = blobs_split.train.subset(np.array([], dtype=np.int64))
        with pytest.raises(ConfigurationError):
            LocalProblem(make_model(), CrossEntropyLoss(), empty)


class TestClientState:
    def test_build_clients_counts(self, blobs_split, iid_partition):
        clients = build_clients(blobs_split.train, iid_partition)
        assert len(clients) == 8
        assert sum(c.num_samples for c in clients) == len(blobs_split.train)

    def test_variable_storage_is_copied(self):
        client = ClientState(client_id=0, dataset=make_blobs(n_train=10, n_test=2, rng=0).train)
        value = np.ones(3)
        client.set("w", value)
        value += 1.0
        assert np.array_equal(client.get("w"), np.ones(3))

    def test_missing_variable_raises(self):
        client = ClientState(client_id=0, dataset=make_blobs(n_train=10, n_test=2, rng=0).train)
        with pytest.raises(ConfigurationError):
            client.get("w")
        assert not client.has("w")

    def test_record_participation(self):
        client = ClientState(client_id=0, dataset=make_blobs(n_train=10, n_test=2, rng=0).train)
        client.record_participation(epochs=3)
        client.record_participation(epochs=2)
        assert client.rounds_participated == 2
        assert client.local_work_done == 5


class TestSamplers:
    def test_uniform_fraction_size(self):
        sampler = UniformFractionSampler(0.2)
        selected = sampler.sample(0, 50, rng=0)
        assert selected.size == 10
        assert len(np.unique(selected)) == 10

    def test_uniform_fraction_minimum_one(self):
        assert UniformFractionSampler(0.01).sample(0, 20, rng=0).size == 1

    def test_uniform_fraction_rounds_to_at_least_one(self):
        # Any fraction, however tiny, and any population always yield >= 1.
        for num_clients in (1, 2, 9, 1000):
            sampler = UniformFractionSampler(1e-6)
            assert sampler.num_selected(num_clients) == 1
            assert sampler.sample(0, num_clients, rng=0).size == 1
        # Round-half-up (not truncation, not banker's rounding) governs
        # the count above the floor: C·m = 2.5 means a 3-client cohort.
        assert UniformFractionSampler(0.25).num_selected(10) == 3
        assert UniformFractionSampler(0.26).num_selected(10) == 3
        assert UniformFractionSampler(1.0).num_selected(7) == 7

    def test_uniform_fraction_deterministic_under_fixed_seed(self):
        sampler = UniformFractionSampler(0.3)
        first = sampler.sample(0, 40, rng=123)
        second = sampler.sample(0, 40, rng=123)
        assert np.array_equal(first, second)
        assert not np.array_equal(first, sampler.sample(0, 40, rng=124))

    def test_uniform_fraction_pmin(self):
        assert UniformFractionSampler(0.1).min_participation_probability(100) == pytest.approx(0.1)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            UniformFractionSampler(0.0)

    def test_bernoulli_never_empty(self):
        sampler = BernoulliSampler(0.0001)
        for round_index in range(5):
            assert sampler.sample(round_index, 30, rng=round_index).size >= 1

    def test_bernoulli_per_client_probabilities(self):
        sampler = BernoulliSampler([0.0, 1.0, 1.0])
        selected = sampler.sample(0, 3, rng=0)
        assert set(selected.tolist()) <= {0, 1, 2}
        assert {1, 2} <= set(selected.tolist())
        assert sampler.min_participation_probability(3) == 0.0

    def test_bernoulli_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            BernoulliSampler([0.5, 0.5]).sample(0, 3, rng=0)

    def test_fixed_schedule_cycles(self):
        sampler = FixedScheduleSampler([[0, 1], [2]])
        assert np.array_equal(sampler.sample(0, 5), [0, 1])
        assert np.array_equal(sampler.sample(1, 5), [2])
        assert np.array_equal(sampler.sample(2, 5), [0, 1])

    def test_fixed_schedule_pmin(self):
        full = FixedScheduleSampler([[0], [1], [2]])
        assert full.min_participation_probability(3) == pytest.approx(1 / 3)
        partial = FixedScheduleSampler([[0], [1]])
        assert partial.min_participation_probability(3) == 0.0

    def test_fixed_schedule_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FixedScheduleSampler([[7]]).sample(0, 3)


class TestHeterogeneity:
    def test_fixed_epochs(self):
        policy = FixedEpochs(4)
        assert policy.epochs(0, 0) == 4
        assert policy.max_epochs == 4

    def test_uniform_random_epochs_range(self):
        policy = UniformRandomEpochs(max_epochs=5)
        draws = {policy.epochs(0, r, rng=r) for r in range(200)}
        assert draws <= set(range(1, 6))
        assert len(draws) >= 4  # nearly all values appear

    def test_per_client_profile(self):
        policy = PerClientEpochs([1, 3, 5])
        assert policy.epochs(1, 0) == 3
        assert policy.max_epochs == 5
        with pytest.raises(ConfigurationError):
            policy.epochs(7, 0)

    def test_invalid_policies(self):
        with pytest.raises(ConfigurationError):
            FixedEpochs(0)
        with pytest.raises(ConfigurationError):
            UniformRandomEpochs(max_epochs=2, min_epochs=3)
        with pytest.raises(ConfigurationError):
            PerClientEpochs([0, 1])


class TestMessagesAndLedger:
    def test_upload_floats_counts_all_payload(self):
        message = ClientMessage(
            client_id=0,
            payload={"a": np.zeros(10), "b": np.zeros(5)},
            num_samples=3,
            local_epochs=1,
            train_loss=0.5,
        )
        assert message.upload_floats == 15

    def test_upload_floats_empty_payload(self):
        message = ClientMessage(
            client_id=0, payload={}, num_samples=3, local_epochs=1, train_loss=0.5
        )
        assert message.upload_floats == 0

    def test_upload_floats_multi_entry_mixed_shapes(self):
        message = ClientMessage(
            client_id=0,
            payload={
                "delta": np.zeros(7),
                "control": np.zeros((2, 3)),
                "scalar": np.zeros(1),
            },
            num_samples=3,
            local_epochs=1,
            train_loss=0.5,
        )
        assert message.upload_floats == 7 + 6 + 1

    def test_ledger_accumulates(self):
        ledger = CommunicationLedger()
        ledger.record_round(uploads=10, downloads=20)
        ledger.record_round(uploads=5, downloads=5)
        assert ledger.upload_floats == 15
        assert ledger.download_floats == 25
        assert ledger.rounds == 2
        assert ledger.total_floats == 40
        assert ledger.total_bytes == 40 * BYTES_PER_FLOAT
        assert ledger.per_round_upload == [10, 5]

    def test_ledger_byte_accounting(self):
        ledger = CommunicationLedger()
        ledger.record_round(uploads=100, downloads=50)
        assert ledger.upload_bytes == 100 * BYTES_PER_FLOAT
        assert ledger.download_bytes == 50 * BYTES_PER_FLOAT
        assert ledger.total_bytes == ledger.upload_bytes + ledger.download_bytes
        # Without an explicit wire size, the wire totals equal raw float32.
        assert ledger.upload_wire_bytes == ledger.upload_bytes
        assert ledger.download_wire_bytes == ledger.download_bytes
        assert ledger.upload_compression_ratio == 1.0

    def test_ledger_wire_bytes_tracked_separately(self):
        ledger = CommunicationLedger()
        ledger.record_round(
            uploads=100, downloads=50, upload_wire_bytes=100, download_wire_bytes=200
        )
        ledger.record_round(
            uploads=100, downloads=50, upload_wire_bytes=60, download_wire_bytes=200
        )
        assert ledger.upload_floats == 200
        assert ledger.upload_wire_bytes == 160
        assert ledger.download_wire_bytes == 400
        assert ledger.total_wire_bytes == 560
        assert ledger.per_round_upload_wire_bytes == [100, 60]
        assert ledger.upload_compression_ratio == pytest.approx(
            200 * BYTES_PER_FLOAT / 160
        )

    def test_ledger_empty_compression_ratio_is_nan(self):
        assert np.isnan(CommunicationLedger().upload_compression_ratio)


class TestHistory:
    def _history(self, accuracies):
        history = TrainingHistory(algorithm="test")
        for index, accuracy in enumerate(accuracies, start=1):
            history.append(
                RoundRecord(
                    round_index=index,
                    test_accuracy=accuracy,
                    test_loss=None if accuracy is None else 1.0 - accuracy,
                    train_loss=0.5,
                    num_selected=2,
                    upload_floats=10,
                    download_floats=10,
                    mean_local_epochs=1.0,
                )
            )
        return history

    def test_rounds_to_accuracy(self):
        history = self._history([0.2, 0.5, 0.8, 0.9])
        assert history.rounds_to_accuracy(0.8) == 3
        assert history.rounds_to_accuracy(0.95) is None

    def test_skipped_evaluations_are_nan(self):
        history = self._history([0.2, None, 0.8])
        accuracies = history.accuracies
        assert np.isnan(accuracies[1])
        assert history.best_accuracy() == 0.8
        assert history.final_accuracy() == 0.8

    def test_total_upload(self):
        assert self._history([0.1, 0.2]).total_upload_floats() == 20

    def test_accuracy_series_skips_none(self):
        series = self._history([0.1, None, 0.3]).accuracy_series()
        assert series == [(1, 0.1), (3, 0.3)]


class TestEvaluation:
    def test_evaluate_model_bounds(self, blobs_split):
        model = make_model()
        result = evaluate_model(
            model, CrossEntropyLoss(), model.get_flat_params(), blobs_split.test
        )
        assert 0.0 <= result.accuracy <= 1.0
        assert result.num_samples == len(blobs_split.test)
        assert result.loss > 0

    def test_evaluate_model_restores_train_mode(self, blobs_split):
        model = make_model()
        model.train()
        evaluate_model(model, CrossEntropyLoss(), model.get_flat_params(), blobs_split.test)
        assert model.training
