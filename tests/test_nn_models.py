"""Tests for the model zoo, including the paper's exact parameter counts."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import (
    CNN1,
    CNN2,
    MLP,
    MODEL_REGISTRY,
    LogisticRegression,
    SmallCNN,
    build_model,
)


class TestPaperArchitectures:
    def test_cnn1_parameter_count_matches_table2(self):
        """Table II: the MNIST/FMNIST CNN has exactly 1,663,370 parameters."""
        assert CNN1(rng=0).num_params == 1_663_370

    def test_cnn2_parameter_count_matches_table2(self):
        """Table II: the CIFAR-10 CNN has exactly 1,105,098 parameters."""
        assert CNN2(rng=0).num_params == 1_105_098

    def test_cnn1_forward_from_flat_input(self):
        model = CNN1(rng=0)
        out = model.forward(np.random.default_rng(0).normal(size=(2, 784)))
        assert out.shape == (2, 10)

    def test_cnn2_forward_from_flat_input(self):
        model = CNN2(rng=0)
        out = model.forward(np.random.default_rng(0).normal(size=(2, 3072)))
        assert out.shape == (2, 10)

    def test_cnn1_rejects_wrong_input_dim(self):
        with pytest.raises(ShapeError):
            CNN1(rng=0).forward(np.zeros((2, 100)))


class TestSmallModels:
    def test_mlp_shapes(self):
        model = MLP(input_dim=20, hidden_dims=(8, 8), num_classes=5, rng=0)
        out = model.forward(np.random.default_rng(0).normal(size=(3, 20)))
        assert out.shape == (3, 5)

    def test_logistic_regression_param_count(self):
        model = LogisticRegression(input_dim=10, num_classes=4, rng=0)
        assert model.num_params == 10 * 4 + 4

    def test_small_cnn_forward(self):
        model = SmallCNN(rng=0, channels=1, image_size=8, num_classes=3)
        out = model.forward(np.random.default_rng(0).normal(size=(2, 64)))
        assert out.shape == (2, 3)

    def test_mlp_learns_separable_data(self):
        """A couple of gradient steps on separable data should reduce the loss."""
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(-2, 0.3, size=(30, 4)), rng.normal(2, 0.3, size=(30, 4))])
        y = np.array([0] * 30 + [1] * 30)
        model = MLP(input_dim=4, hidden_dims=(8,), num_classes=2, rng=0)
        loss = CrossEntropyLoss()
        initial = loss.value(model.forward(x), y)
        for _ in range(30):
            model.zero_grad()
            value, grad_pred = loss.value_and_grad(model.forward(x), y)
            model.backward(grad_pred)
            flat = model.get_flat_params() - 0.5 * model.get_flat_grad()
            model.set_flat_params(flat)
        assert loss.value(model.forward(x), y) < initial * 0.5


class TestRegistry:
    def test_registry_contains_paper_models(self):
        assert {"cnn1", "cnn2", "mlp", "logistic"} <= set(MODEL_REGISTRY)

    def test_build_model_mlp(self):
        model = build_model("mlp", rng=0, input_dim=6, num_classes=3)
        assert model.num_params > 0

    def test_build_model_unknown(self):
        with pytest.raises(ConfigurationError):
            build_model("transformer")

    def test_same_seed_same_init(self):
        a = build_model("mlp", rng=3, input_dim=6)
        b = build_model("mlp", rng=3, input_dim=6)
        assert np.array_equal(a.get_flat_params(), b.get_flat_params())
