"""Tests for repro.nn.functional (im2col, softmax, one-hot)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    softmax,
)


class TestOneHot:
    def test_basic_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        assert encoded.shape == (3, 3)
        assert np.array_equal(encoded.argmax(axis=1), [0, 2, 1])
        assert np.allclose(encoded.sum(axis=1), 1.0)

    def test_out_of_range_label_rejected(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([0, 3]), 3)

    def test_non_1d_rejected(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs > 0).all()

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_log_softmax_consistency(self):
        logits = np.random.default_rng(1).normal(size=(4, 6))
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))

    def test_numerical_stability_large_values(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, [[0.5, 0.5]])


class TestConvOutputSize:
    def test_same_padding(self):
        assert conv_output_size(28, 5, 1, 2) == 28

    def test_pooling(self):
        assert conv_output_size(28, 2, 2, 0) == 14

    def test_invalid_raises(self):
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shapes(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_identity_kernel_recovers_pixels(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, 1, 1, 1, 0)
        assert np.array_equal(cols.ravel(), x.ravel())

    def test_col2im_adjoint_property(self):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 2, 6, 6))
        cols = im2col(x, 3, 3, 1, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 1, 1)).sum())
        assert np.isclose(lhs, rhs)

    def test_non_4d_rejected(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((3, 8, 8)), 3, 3, 1, 1)
