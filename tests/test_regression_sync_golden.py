"""Bit-identical regression guard for the default synchronous path.

The asynchronous engine was layered on top of the synchronous one
(shared evaluation helper, new ``RoundRecord`` fields, algorithm-level
async hooks).  This test pins the *exact* values the seed synchronous
engine produced before that refactor — parameter hash, every evaluated
accuracy, every mean train loss — so any PR that perturbs the default
path (no transport, no network, no faults, serial executor) fails loudly
rather than drifting silently.

The golden values were generated on the pre-async engine (commit
``fe497a2``) with the recipe below; they are a property of the seeded
RNG streams and must never be "refreshed" to make a failing build pass
without understanding why the stream moved.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.datasets.synthetic import make_blobs
from repro.federated.client import build_clients
from repro.federated.engine import FederatedSimulation
from repro.nn.models import MLP
from repro.partition.shard import ShardPartitioner

GOLDEN_PARAMS_SHA256 = (
    "39c66b4c135cc30eee756747f6254ce1770ad87ec98bc71f14dbdf5a8ca4b28e"
)
GOLDEN_ACCURACIES = [0.6125, 0.6625, 0.5375, 0.75, 0.64375, 0.84375]
GOLDEN_TRAIN_LOSSES = [
    0.9052403120652177,
    0.250090993383959,
    0.09299182963031986,
    0.7705001961900039,
    0.40308204715337426,
    0.022957810578853995,
]
GOLDEN_FINAL_ACCURACY = 0.84375
GOLDEN_FINAL_LOSS = 0.36626625769519
GOLDEN_UPLOAD_FLOATS = 1656
GOLDEN_DOWNLOAD_FLOATS = 1656


def run_seed_recipe(executor=None) -> "FederatedSimulation":
    """The exact run the golden values were generated from.

    ``executor=None`` is the seed serial path; passing another executor
    reruns the identical recipe through it (used by the vectorized parity
    guard below).
    """
    split = make_blobs(
        n_train=480, n_test=160, num_classes=4, feature_dim=12,
        separation=2.5, noise_std=0.8, rng=0,
    )
    partition = ShardPartitioner(shards_per_client=2).partition(
        split.train, num_clients=8, rng=0
    )
    clients = build_clients(split.train, partition)
    model = MLP(
        input_dim=12, hidden_dims=(16,), num_classes=4,
        rng=np.random.default_rng(7),
    )
    simulation = FederatedSimulation(
        algorithm=build_algorithm("fedadmm", rho=0.3),
        model=model,
        clients=clients,
        test_dataset=split.test,
        batch_size=16,
        learning_rate=0.1,
        seed=11,
        eval_every=1,
        executor=executor,
    )
    return simulation.run(6, target_accuracy=None)


@pytest.fixture(scope="module")
def seed_result():
    return run_seed_recipe()


class TestSyncPathBitIdentity:
    def test_final_parameters_hash(self, seed_result):
        digest = hashlib.sha256(seed_result.final_params.tobytes()).hexdigest()
        assert digest == GOLDEN_PARAMS_SHA256

    def test_accuracy_trajectory_exact(self, seed_result):
        accuracies = [rec.test_accuracy for rec in seed_result.history.records]
        assert accuracies == GOLDEN_ACCURACIES

    def test_train_loss_trajectory_exact(self, seed_result):
        losses = [rec.train_loss for rec in seed_result.history.records]
        assert losses == GOLDEN_TRAIN_LOSSES

    def test_final_evaluation_exact(self, seed_result):
        assert seed_result.final_evaluation.accuracy == GOLDEN_FINAL_ACCURACY
        assert seed_result.final_evaluation.loss == GOLDEN_FINAL_LOSS

    def test_communication_totals_exact(self, seed_result):
        assert seed_result.ledger.upload_floats == GOLDEN_UPLOAD_FLOATS
        assert seed_result.ledger.download_floats == GOLDEN_DOWNLOAD_FLOATS
        # No transport configured: wire bytes are the raw float32 bytes.
        assert seed_result.ledger.upload_wire_bytes == GOLDEN_UPLOAD_FLOATS * 4

    def test_systems_fields_stay_inert(self, seed_result):
        """Without systems components the new fields keep their defaults."""
        for record in seed_result.history.records:
            assert record.simulated_seconds == 0.0
            assert record.dropped_clients == ()
            assert record.mean_staleness == 0.0
            assert record.max_staleness == 0
            assert record.model_version == record.round_index


# --------------------------------------------------------------------------- #
# Asynchronous golden path
# --------------------------------------------------------------------------- #
# Generated on the pre-decomposition AsyncFederatedSimulation (commit
# ``888d5c3``, before the engine was split into state/rounds/plans) with the
# recipe below.  Like the synchronous goldens above, these pin the exact RNG
# stream consumption of the event-driven path — dispatch order, per-dispatch
# seeds, staleness accounting — and must never be refreshed to make a failing
# build pass without understanding why the stream moved.
GOLDEN_ASYNC_PARAMS_SHA256 = (
    "08af74602483b0e11efdffdde80ec8da7c0086b09858045a8481fc2bf6c3600e"
)
GOLDEN_ASYNC_ACCURACIES = [0.71875, 0.90625, 0.96875, 0.98125, 0.98125, 0.9375]
GOLDEN_ASYNC_TRAIN_LOSSES = [
    0.49846802227805065,
    0.5969267964862257,
    0.6425320914162252,
    0.11209958993949908,
    0.0719943123865061,
    0.12926361639893003,
]
GOLDEN_ASYNC_STALENESS = [
    (0.0, 0),
    (1.0, 1),
    (2.0, 2),
    (2.5, 3),
    (2.5, 3),
    (2.0, 2),
]
GOLDEN_ASYNC_UPLOAD_FLOATS = 3312
GOLDEN_ASYNC_DOWNLOAD_FLOATS = 4692


def run_async_seed_recipe():
    """The exact async run the golden values were generated from."""
    from repro.federated.async_engine import AsyncFederatedSimulation
    from repro.systems.network import LogNormalNetwork

    split = make_blobs(
        n_train=480, n_test=160, num_classes=4, feature_dim=12,
        separation=2.5, noise_std=0.8, rng=0,
    )
    partition = ShardPartitioner(shards_per_client=2).partition(
        split.train, num_clients=8, rng=0
    )
    clients = build_clients(split.train, partition)
    model = MLP(
        input_dim=12, hidden_dims=(16,), num_classes=4,
        rng=np.random.default_rng(7),
    )
    simulation = AsyncFederatedSimulation(
        algorithm=build_algorithm("fedadmm", rho=0.3),
        model=model,
        clients=clients,
        test_dataset=split.test,
        batch_size=16,
        learning_rate=0.1,
        seed=11,
        eval_every=1,
        buffer_size=2,
        max_concurrency=5,
        network=LogNormalNetwork(),
    )
    return simulation.run(6, target_accuracy=None)


@pytest.fixture(scope="module")
def async_seed_result():
    return run_async_seed_recipe()


class TestAsyncPathBitIdentity:
    def test_final_parameters_hash(self, async_seed_result):
        digest = hashlib.sha256(
            async_seed_result.final_params.tobytes()
        ).hexdigest()
        assert digest == GOLDEN_ASYNC_PARAMS_SHA256

    def test_accuracy_trajectory_exact(self, async_seed_result):
        accuracies = [rec.test_accuracy for rec in async_seed_result.history.records]
        assert accuracies == GOLDEN_ASYNC_ACCURACIES

    def test_train_loss_trajectory_exact(self, async_seed_result):
        losses = [rec.train_loss for rec in async_seed_result.history.records]
        assert losses == GOLDEN_ASYNC_TRAIN_LOSSES

    def test_staleness_trajectory_exact(self, async_seed_result):
        staleness = [
            (rec.mean_staleness, rec.max_staleness)
            for rec in async_seed_result.history.records
        ]
        assert staleness == GOLDEN_ASYNC_STALENESS

    def test_communication_totals_exact(self, async_seed_result):
        assert async_seed_result.ledger.upload_floats == GOLDEN_ASYNC_UPLOAD_FLOATS
        assert (
            async_seed_result.ledger.download_floats
            == GOLDEN_ASYNC_DOWNLOAD_FLOATS
        )

    def test_model_versions_advance_per_aggregation(self, async_seed_result):
        versions = [rec.model_version for rec in async_seed_result.history.records]
        assert versions == [1, 2, 3, 4, 5, 6]
        assert all(
            rec.simulated_seconds > 0
            for rec in async_seed_result.history.records
        )


# --------------------------------------------------------------------------- #
# Vectorized executor parity with the pinned serial goldens
# --------------------------------------------------------------------------- #
# The vectorized executor's tolerance contract (see docs/tutorials/
# fast-sweeps.md): stacked matmuls change only the reduction order, so the
# pinned serial goldens must be reproduced within atol=1e-8 — and the
# evaluated accuracies, being threshold counts, must be *identical*.
class TestVectorizedGoldenParity:
    @pytest.fixture(scope="class")
    def vectorized_result(self):
        from repro.systems.executor import VectorizedExecutor

        return run_seed_recipe(executor=VectorizedExecutor())

    def test_accuracy_trajectory_identical(self, vectorized_result):
        accuracies = [rec.test_accuracy for rec in vectorized_result.history.records]
        assert accuracies == GOLDEN_ACCURACIES

    def test_train_losses_within_tolerance(self, vectorized_result):
        losses = [rec.train_loss for rec in vectorized_result.history.records]
        np.testing.assert_allclose(
            losses, GOLDEN_TRAIN_LOSSES, atol=1e-8, rtol=0
        )

    def test_final_params_within_tolerance(self, vectorized_result, seed_result):
        np.testing.assert_allclose(
            vectorized_result.final_params, seed_result.final_params,
            atol=1e-8, rtol=0,
        )

    def test_final_evaluation_matches_golden(self, vectorized_result):
        assert vectorized_result.final_evaluation.accuracy == GOLDEN_FINAL_ACCURACY
        assert abs(vectorized_result.final_evaluation.loss - GOLDEN_FINAL_LOSS) < 1e-8

    def test_communication_totals_exact(self, vectorized_result):
        # Accounting is integer bookkeeping: no tolerance applies.
        assert vectorized_result.ledger.upload_floats == GOLDEN_UPLOAD_FLOATS
        assert vectorized_result.ledger.download_floats == GOLDEN_DOWNLOAD_FLOATS


# --------------------------------------------------------------------------- #
# SCAFFOLD / FedPD goldens (pinned when they gained batched kernels)
# --------------------------------------------------------------------------- #
# The same recipe as run_seed_recipe with the algorithm swapped; the values
# were generated on the serial executor at the commit that introduced
# batched_local_update for these algorithms, so any later change to either
# the serial or the stacked path fails against the same pin.
SCAFFOLD_GOLDEN_ACCURACIES = [0.68125, 0.9375, 0.93125, 1.0, 1.0, 0.94375]
SCAFFOLD_GOLDEN_FINAL_LOSS = 0.15881199907710095
SCAFFOLD_GOLDEN_PARAMS_SHA256 = (
    "6acd6ca90ec0f26611663db186e9a8519b0bb1f06cd1cf06bf1e80e4915e00b5"
)
SCAFFOLD_GOLDEN_UPLOAD_FLOATS = 3312  # double upload: params + control deltas
FEDPD_GOLDEN_ACCURACIES = [0.6125, 0.50625, 0.725, 0.75, 0.525, 0.55]
FEDPD_GOLDEN_FINAL_LOSS = 1.858001347728465
FEDPD_GOLDEN_PARAMS_SHA256 = (
    "9c0d94bac8f24c6f66f8059d5d0bc90bd7e656eb94d0767e3586f048813b81d6"
)
FEDPD_GOLDEN_UPLOAD_FLOATS = 1656

ALGORITHM_GOLDENS = {
    "scaffold": (
        {}, SCAFFOLD_GOLDEN_ACCURACIES, SCAFFOLD_GOLDEN_FINAL_LOSS,
        SCAFFOLD_GOLDEN_PARAMS_SHA256, SCAFFOLD_GOLDEN_UPLOAD_FLOATS,
    ),
    "fedpd": (
        {"rho": 0.3}, FEDPD_GOLDEN_ACCURACIES, FEDPD_GOLDEN_FINAL_LOSS,
        FEDPD_GOLDEN_PARAMS_SHA256, FEDPD_GOLDEN_UPLOAD_FLOATS,
    ),
}


def run_algorithm_recipe(algorithm_name, executor=None):
    """run_seed_recipe with the algorithm swapped (same data/model/seeds)."""
    kwargs = ALGORITHM_GOLDENS[algorithm_name][0]
    split = make_blobs(
        n_train=480, n_test=160, num_classes=4, feature_dim=12,
        separation=2.5, noise_std=0.8, rng=0,
    )
    partition = ShardPartitioner(shards_per_client=2).partition(
        split.train, num_clients=8, rng=0
    )
    clients = build_clients(split.train, partition)
    model = MLP(
        input_dim=12, hidden_dims=(16,), num_classes=4,
        rng=np.random.default_rng(7),
    )
    simulation = FederatedSimulation(
        algorithm=build_algorithm(algorithm_name, **kwargs),
        model=model,
        clients=clients,
        test_dataset=split.test,
        batch_size=16,
        learning_rate=0.1,
        seed=11,
        eval_every=1,
        executor=executor,
    )
    return simulation.run(6, target_accuracy=None)


class TestScaffoldFedPDGoldens:
    """Serial pins and vectorized atol=1e-8 parity for the new batched pair."""

    @pytest.fixture(scope="class", params=["scaffold", "fedpd"])
    def algorithm_runs(self, request):
        from repro.systems.executor import VectorizedExecutor

        name = request.param
        serial = run_algorithm_recipe(name)
        vectorized = run_algorithm_recipe(name, executor=VectorizedExecutor())
        return name, serial, vectorized

    def test_serial_matches_pinned_goldens(self, algorithm_runs):
        name, serial, _ = algorithm_runs
        _, accuracies, final_loss, sha, upload = ALGORITHM_GOLDENS[name]
        assert [r.test_accuracy for r in serial.history.records] == accuracies
        assert abs(serial.final_evaluation.loss - final_loss) < 1e-8
        digest = hashlib.sha256(serial.final_params.tobytes()).hexdigest()
        assert digest == sha
        assert serial.ledger.upload_floats == upload

    def test_vectorized_accuracies_identical(self, algorithm_runs):
        name, _, vectorized = algorithm_runs
        _, accuracies, _, _, _ = ALGORITHM_GOLDENS[name]
        assert [
            r.test_accuracy for r in vectorized.history.records
        ] == accuracies

    def test_vectorized_history_and_params_within_tolerance(self, algorithm_runs):
        _, serial, vectorized = algorithm_runs
        np.testing.assert_allclose(
            np.array([r.train_loss for r in vectorized.history.records]),
            np.array([r.train_loss for r in serial.history.records]),
            atol=1e-8, rtol=0,
        )
        np.testing.assert_allclose(
            vectorized.final_params, serial.final_params, atol=1e-8, rtol=0
        )
        assert abs(
            vectorized.final_evaluation.loss - serial.final_evaluation.loss
        ) < 1e-8

    def test_communication_totals_exact(self, algorithm_runs):
        name, serial, vectorized = algorithm_runs
        _, _, _, _, upload = ALGORITHM_GOLDENS[name]
        assert vectorized.ledger.upload_floats == upload
        assert vectorized.ledger.download_floats == serial.ledger.download_floats
