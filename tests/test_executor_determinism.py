"""Executor determinism: the run history must not depend on where tasks run.

Two guarantees, both regressions waiting to happen in per-task seeding
code:

* **Asynchronous engine** — every dispatch receives an integer seed
  derived from ``(engine seed, dispatch index, client id)``, so serial,
  thread-pool, and process-pool executors must produce *identical*
  ``TrainingHistory`` objects for a fixed engine seed.
* **Synchronous engine** — the isolated executors (thread and process)
  share the same per-(round, client) seeding scheme and must match each
  other exactly.  (The serial executor intentionally differs there: it
  consumes the engine's sequential training RNG, the seed behaviour the
  golden regression test pins.)
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import AlgorithmSpec, async_config, systems_config
from repro.experiments.runner import run_single

EXECUTORS = ("serial", "thread", "process")


def history_fingerprint(result):
    """Everything observable about a run that must not depend on the executor."""
    return {
        "accuracies": [rec.test_accuracy for rec in result.history.records],
        "train_losses": [rec.train_loss for rec in result.history.records],
        "simulated_seconds": [rec.simulated_seconds for rec in result.history.records],
        "dropped": [rec.dropped_clients for rec in result.history.records],
        "staleness": [rec.mean_staleness for rec in result.history.records],
        "uploads": result.ledger.per_round_upload,
        "params_bytes": result.final_params.tobytes(),
    }


def tiny_async_cfg(executor: str):
    return async_config("blobs", non_iid=True, seed=4).with_overrides(
        num_clients=8,
        n_train=320,
        n_test=120,
        num_rounds=4,
        buffer_size=2,
        max_concurrency=4,
        executor=executor,
        max_workers=2,
    )


def tiny_sync_cfg(executor: str):
    return systems_config(
        "blobs", non_iid=True, seed=4, codec=None, dropout=0.0, executor=executor
    ).with_overrides(
        num_clients=8,
        n_train=320,
        n_test=120,
        num_rounds=3,
        max_workers=2,
        network=None,
    )


@pytest.mark.slow
def test_async_history_identical_across_all_executors():
    spec = AlgorithmSpec("fedadmm", {"rho": 0.3})
    fingerprints = {
        executor: history_fingerprint(
            run_single(tiny_async_cfg(executor), spec, stop_at_target=False)
        )
        for executor in EXECUTORS
    }
    for executor in ("thread", "process"):
        assert fingerprints[executor] == fingerprints["serial"], (
            f"async run under --executor {executor} diverged from serial"
        )


@pytest.mark.slow
def test_sync_history_identical_across_isolated_executors():
    spec = AlgorithmSpec("fedavg", {})
    thread = history_fingerprint(
        run_single(tiny_sync_cfg("thread"), spec, stop_at_target=False)
    )
    process = history_fingerprint(
        run_single(tiny_sync_cfg("process"), spec, stop_at_target=False)
    )
    assert thread == process


def test_async_task_seeds_are_unique_and_stable(iid_clients, blobs_split):
    """The per-dispatch seed stream: stable across calls, distinct across tasks."""
    from repro.algorithms import build_algorithm
    from repro.federated.async_engine import AsyncFederatedSimulation
    from conftest import make_model

    sim = AsyncFederatedSimulation(
        algorithm=build_algorithm("fedavg"),
        model=make_model(seed=0),
        clients=iid_clients,
        test_dataset=blobs_split.test,
        batch_size=16,
        seed=9,
    )
    seeds = [sim._async_task_seed(seq, client) for seq in range(5) for client in range(4)]
    assert len(set(seeds)) == len(seeds)
    assert seeds[0] == sim._async_task_seed(0, 0)
