"""Property-based tests (hypothesis) for core invariants.

These check structural invariants of the data structures the paper's
correctness rests on: partitions are exact covers, flat packing round-trips,
dual/message algebra matches eq. (4), and the tracking server update
preserves the augmented-model average under the analysed step size.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.admm_server import admm_server_update, average_aggregate
from repro.core.dual import augmented_model, dual_update, update_message
from repro.datasets.base import Dataset
from repro.nn.layers import Linear, ReLU, Sequential
from repro.partition.dirichlet import DirichletPartitioner
from repro.partition.iid import IidPartitioner
from repro.partition.shard import ShardPartitioner

# Keep hypothesis fast and deterministic enough for CI-style runs.
COMMON_SETTINGS = dict(max_examples=25, deadline=None)


def _dataset(n, num_classes, seed):
    rng = np.random.default_rng(seed)
    return Dataset(
        features=rng.normal(size=(n, 3)),
        labels=rng.integers(0, num_classes, size=n),
        name="prop",
    )


class TestPartitionProperties:
    @given(
        n=st.integers(min_value=20, max_value=200),
        num_clients=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(**COMMON_SETTINGS)
    def test_iid_partition_is_exact_cover(self, n, num_clients, seed):
        dataset = _dataset(n, 5, seed)
        partition = IidPartitioner().partition(dataset, num_clients, rng=seed)
        combined = np.sort(np.concatenate(partition.client_indices))
        assert np.array_equal(combined, np.arange(n))

    @given(
        num_clients=st.integers(min_value=2, max_value=20),
        shards=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(**COMMON_SETTINGS)
    def test_shard_partition_is_exact_cover(self, num_clients, shards, seed):
        dataset = _dataset(240, 6, seed)
        partition = ShardPartitioner(shards).partition(dataset, num_clients, rng=seed)
        combined = np.sort(np.concatenate(partition.client_indices))
        assert np.array_equal(combined, np.arange(240))

    @given(
        alpha=st.floats(min_value=0.05, max_value=10.0),
        num_clients=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(**COMMON_SETTINGS)
    def test_dirichlet_partition_is_exact_cover(self, alpha, num_clients, seed):
        dataset = _dataset(150, 4, seed)
        partition = DirichletPartitioner(alpha=alpha, min_samples_per_client=0).partition(
            dataset, num_clients, rng=seed
        )
        combined = np.sort(np.concatenate([c for c in partition.client_indices if c.size]))
        assert np.array_equal(combined, np.arange(150))


class TestFlatPackingProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_set_then_get_is_identity(self, seed, scale):
        model = Sequential(Linear(5, 4, rng=0), ReLU(), Linear(4, 3, rng=1))
        rng = np.random.default_rng(seed)
        flat = rng.normal(scale=scale, size=model.num_params)
        model.set_flat_params(flat)
        assert np.allclose(model.get_flat_params(), flat)


class TestDualAlgebraProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rho=st.floats(min_value=1e-3, max_value=10.0),
        dim=st.integers(min_value=1, max_value=20),
    )
    @settings(**COMMON_SETTINGS)
    def test_update_message_identity(self, seed, rho, dim):
        """Delta = (w_new - w_old) + (w_new - theta) for the paper's dual update."""
        rng = np.random.default_rng(seed)
        w_old, y_old, w_new, theta = (rng.normal(size=dim) for _ in range(4))
        y_new = dual_update(y_old, w_new, theta, rho)
        delta = update_message(w_new, y_new, w_old, y_old, rho)
        assert np.allclose(delta, (w_new - w_old) + (w_new - theta), atol=1e-6 / rho)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rho=st.floats(min_value=1e-2, max_value=10.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_augmented_model_linear_in_dual(self, seed, rho):
        rng = np.random.default_rng(seed)
        w, y1, y2 = rng.normal(size=6), rng.normal(size=6), rng.normal(size=6)
        lhs = augmented_model(w, y1 + y2, rho)
        rhs = augmented_model(w, y1, rho) + y2 / rho
        assert np.allclose(lhs, rhs)


class TestAggregationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_selected=st.integers(min_value=1, max_value=8),
        num_clients=st.integers(min_value=8, max_value=40),
    )
    @settings(**COMMON_SETTINGS)
    def test_tracking_update_preserves_augmented_mean_under_analysed_step(
        self, seed, num_selected, num_clients
    ):
        """With eta = |S|/m and theta_0 = mean(u_0), theta stays the mean of
        all clients' augmented models after any single round (eq. 20's
        invariant)."""
        rng = np.random.default_rng(seed)
        dim = 5
        u_old = rng.normal(size=(num_clients, dim))
        theta = u_old.mean(axis=0)
        selected = rng.choice(num_clients, size=num_selected, replace=False)
        u_new = u_old.copy()
        u_new[selected] = rng.normal(size=(num_selected, dim))
        deltas = [u_new[i] - u_old[i] for i in selected]
        eta = num_selected / num_clients
        theta_next = admm_server_update(theta, deltas, eta)
        assert np.allclose(theta_next, u_new.mean(axis=0))

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        count=st.integers(min_value=1, max_value=10),
    )
    @settings(**COMMON_SETTINGS)
    def test_average_aggregate_within_convex_hull(self, seed, count):
        rng = np.random.default_rng(seed)
        models = [rng.normal(size=4) for _ in range(count)]
        average = average_aggregate(models)
        stacked = np.stack(models)
        assert np.all(average <= stacked.max(axis=0) + 1e-12)
        assert np.all(average >= stacked.min(axis=0) - 1e-12)
