"""Tests for the documentation site: catalogue generation and integrity.

``mkdocs build --strict`` runs in CI (the docs toolchain is not a runtime
dependency), so these tests check the properties that build relies on
locally: the catalogue generator covers the whole registry, every page the
nav references exists (or is generated), and every ``::: module``
identifier in the API pages is importable by mkdocstrings.
"""

from __future__ import annotations

import importlib
import re
import runpy
from pathlib import Path

import pytest
import yaml

from repro.experiments.studies import STUDIES

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Pages produced at build time rather than committed.
GENERATED_PAGES = {"studies.md"}


def _generate_catalogue() -> str:
    module = runpy.run_path(str(DOCS_DIR / "gen_catalogue.py"), run_name="docs")
    return module["generate"]()


class TestCatalogueGenerator:
    def test_every_registered_study_appears(self):
        page = _generate_catalogue()
        for study in STUDIES:
            assert f"`{study.name}`" in page

    def test_study_flags_and_artefacts_appear(self):
        page = _generate_catalogue()
        assert "`--etas`" in page and "`--prox-rhos`" in page
        assert "Table III" in page and "Fig. 8" in page
        # The closed-form study is labelled as such, not given a sweep size.
        table1_row = next(
            line for line in page.splitlines() if line.startswith("| `table1`")
        )
        assert "closed form" in table1_row

    def test_sweep_point_counts_match_the_registry(self):
        from repro.experiments.registry import StudyRequest

        page = _generate_catalogue()
        study = STUDIES.get("table3")
        request = StudyRequest()
        config = request.apply_overrides(study.build_config(request))
        expected = len(study.specs(config, request))
        table3_row = next(
            line for line in page.splitlines() if line.startswith("| `table3`")
        )
        assert f"| {expected} |" in table3_row

    def test_main_writes_the_page(self, tmp_path, capsys):
        module = runpy.run_path(str(DOCS_DIR / "gen_catalogue.py"), run_name="docs")
        target = tmp_path / "studies.md"
        assert module["main"](["--output", str(target)]) == 0
        assert f"{len(STUDIES)} studies" in capsys.readouterr().out
        assert "| Study |" in target.read_text(encoding="utf-8")

    def test_generator_is_deterministic(self):
        assert _generate_catalogue() == _generate_catalogue()


def _nav_pages(nav) -> list[str]:
    pages: list[str] = []
    for entry in nav:
        if isinstance(entry, str):
            pages.append(entry)
        elif isinstance(entry, dict):
            for value in entry.values():
                if isinstance(value, str):
                    pages.append(value)
                else:
                    pages.extend(_nav_pages(value))
    return pages


class TestSiteIntegrity:
    @pytest.fixture(scope="class")
    def mkdocs_config(self):
        # The mkdocstrings plugin entry uses custom tags mkdocs resolves at
        # build time; BaseLoader reads the structure without interpreting.
        return yaml.load(
            (REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8"),
            Loader=yaml.BaseLoader,
        )

    def test_strict_mode_is_pinned_in_config(self, mkdocs_config):
        assert mkdocs_config["strict"] == "true"

    def test_every_nav_page_exists_or_is_generated(self, mkdocs_config):
        for page in _nav_pages(mkdocs_config["nav"]):
            if page in GENERATED_PAGES:
                continue  # produced by docs/gen_catalogue.py before the build
            assert (DOCS_DIR / page).exists(), f"nav references missing {page}"

    def test_api_pages_reference_importable_modules(self):
        directive = re.compile(r"^::: ([\w.]+)$", re.MULTILINE)
        referenced = set()
        for page in (DOCS_DIR / "api").glob("*.md"):
            referenced.update(directive.findall(page.read_text(encoding="utf-8")))
        assert referenced, "no mkdocstrings directives found"
        for identifier in sorted(referenced):
            importlib.import_module(identifier)

    def test_api_pages_cover_the_advertised_layers(self):
        pages = {page.stem for page in (DOCS_DIR / "api").glob("*.md")}
        assert {"algorithms", "federated", "systems", "experiments"} <= pages

    def test_internal_links_resolve(self):
        link = re.compile(r"\]\((?!https?://|#)([^)#\s]+)")
        for page in DOCS_DIR.rglob("*.md"):
            for target in link.findall(page.read_text(encoding="utf-8")):
                resolved = (page.parent / target).resolve()
                if resolved.name in GENERATED_PAGES:
                    continue
                assert resolved.exists(), f"{page.name} links to missing {target}"

    def test_catalogue_generator_keeps_src_importable_standalone(self):
        # The generator must run before the package is installed (CI's docs
        # job only pip-installs the docs toolchain), so it inserts src/ on
        # sys.path itself rather than relying on PYTHONPATH.
        text = (DOCS_DIR / "gen_catalogue.py").read_text(encoding="utf-8")
        assert 'sys.path.insert(0, str(REPO_ROOT / "src"))' in text


class TestLinkChecker:
    """The stdlib ``docs-linkcheck`` gate (docs/check_links.py)."""

    @pytest.fixture(scope="class")
    def checker(self):
        return runpy.run_path(str(DOCS_DIR / "check_links.py"), run_name="docs")

    def test_repo_docs_pass(self, checker, capsys):
        assert checker["main"](["README.md"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_broken_link_and_missing_anchor_fail(self, checker, capsys, tmp_path):
        rogue = DOCS_DIR / "_linkcheck_rogue.md"
        rogue.write_text(
            "[a](no-such-page.md)\n[b](index.md#no-such-anchor)\n"
            "[ok](index.md)\n[ext](https://example.com/missing)\n",
            encoding="utf-8",
        )
        try:
            assert checker["main"]([]) == 1
            err = capsys.readouterr().err
            assert "broken link -> no-such-page.md" in err
            assert "missing anchor -> index.md#no-such-anchor" in err
        finally:
            rogue.unlink()

    def test_fenced_code_is_not_scanned(self, checker):
        errors = checker["check_file"](DOCS_DIR / "tutorials" / "robustness.md", {})
        assert errors == []

    def test_slugify_matches_toc_style(self, checker):
        assert checker["slugify"]("The adversary / defense matrix") == (
            "the-adversary-defense-matrix"
        )
        assert checker["slugify"]("Valuing clients: `repro contributions`") == (
            "valuing-clients-repro-contributions"
        )
