"""Tests for the content-addressed experiment store (crash paths included)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.configs import AlgorithmSpec, ExperimentConfig
from repro.experiments.orchestrator import RunSpec, execute_spec
from repro.experiments.store import (
    ExperimentStore,
    RunRecord,
    RunStatus,
)

TINY = ExperimentConfig(
    name="tiny-store",
    dataset="blobs",
    n_train=200,
    n_test=80,
    model="mlp",
    model_kwargs={"input_dim": 32, "hidden_dims": (8,)},
    num_clients=6,
    client_fraction=0.5,
    local_epochs=1,
    batch_size=16,
    num_rounds=2,
    target_accuracy=0.5,
)


def make_spec(name="fedavg", kwargs=None, seed=0, stop=True, key=("a",)) -> RunSpec:
    return RunSpec(
        study="demo",
        key=key,
        config=TINY.with_overrides(seed=seed),
        algorithm=AlgorithmSpec(name, kwargs or {}),
        stop_at_target=stop,
    )


class TestContentAddressing:
    def test_key_is_stable_across_store_instances(self, tmp_path):
        spec = make_spec()
        first = ExperimentStore(tmp_path / "a").key_for(spec)
        second = ExperimentStore(tmp_path / "b").key_for(spec)
        assert first == second

    def test_key_varies_with_content(self, tmp_path):
        store = ExperimentStore(tmp_path)
        base = store.key_for(make_spec())
        assert store.key_for(make_spec(seed=1)) != base
        assert store.key_for(make_spec(kwargs={"server_learning_rate": 0.5})) != base
        assert store.key_for(make_spec(name="fedsgd")) != base
        assert store.key_for(make_spec(stop=False)) != base

    def test_key_ignores_spec_position(self, tmp_path):
        # The sweep-tree position is bookkeeping, not run content: the same
        # training run reached via a different study layout must hit the cache.
        store = ExperimentStore(tmp_path)
        assert store.key_for(make_spec(key=("a",))) == store.key_for(
            make_spec(key=("elsewhere", "b"))
        )

    def test_key_varies_with_code_version(self, tmp_path):
        spec = make_spec()
        current = ExperimentStore(tmp_path, version="1.0.0").key_for(spec)
        future = ExperimentStore(tmp_path, version="2.0.0").key_for(spec)
        assert current != future


class TestLifecycle:
    def test_status_transitions_last_wins(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec = make_spec()
        key = store.key_for(spec)
        store.mark(spec, RunStatus.PENDING)
        assert store.record(key).status is RunStatus.PENDING
        store.mark(spec, RunStatus.RUNNING)
        assert store.record(key).status is RunStatus.RUNNING
        store.mark(spec, RunStatus.FAILED, error="boom")
        record = store.record(key)
        assert record.status is RunStatus.FAILED
        assert record.error == "boom"
        assert record.spec_key == ("a",)
        assert record.algorithm == "fedavg"

    def test_save_and_load_result_round_trips_bit_identically(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec = make_spec()
        result = execute_spec(spec)
        record = store.save_result(spec, result, duration_s=1.25)
        assert record.status is RunStatus.DONE
        key = store.key_for(spec)
        assert store.has_result(key)
        loaded = store.load_result(key)
        assert loaded.history.records == result.history.records
        np.testing.assert_array_equal(loaded.final_params, result.final_params)
        assert loaded.final_params.dtype == result.final_params.dtype
        assert loaded.ledger == result.ledger
        assert loaded.final_evaluation == result.final_evaluation
        assert loaded.rounds_to_target == result.rounds_to_target
        assert loaded.metadata == result.metadata

    def test_abandoned_round_nan_is_stored_as_strict_null(self, tmp_path):
        # Abandoned semi-sync rounds record train_loss=NaN; the persisted
        # payload must still parse under a strict JSON reader (jq et al.
        # reject the bare NaN token the stdlib emits by default).
        store = ExperimentStore(tmp_path)
        spec = make_spec()
        result = execute_spec(spec)
        result.history.records[0].train_loss = float("nan")
        store.save_result(spec, result)
        key = store.key_for(spec)

        def reject(token):
            raise ValueError(f"non-standard JSON constant: {token}")

        for path in (
            tmp_path / ExperimentStore.RESULTS_DIR / f"{key}.json",
            tmp_path / ExperimentStore.INDEX_NAME,
        ):
            text = path.read_text()
            assert "NaN" not in text and "Infinity" not in text
            for line in filter(None, text.splitlines()):
                json.loads(line, parse_constant=reject)

        loaded = store.load_result(key)
        assert loaded.history.records[0].train_loss is None
        assert loaded.history.records[1:] == result.history.records[1:]

    def test_load_unknown_key_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no stored result"):
            ExperimentStore(tmp_path).load_result("deadbeef")

    def test_done_without_payload_file_is_not_a_result(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec = make_spec()
        store.save_result(spec, execute_spec(spec))
        key = store.key_for(spec)
        (tmp_path / "results" / f"{key}.json").unlink()
        assert not store.has_result(key)

    def test_summary_counts(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.mark(make_spec(seed=0), RunStatus.PENDING)
        store.mark(make_spec(seed=1), RunStatus.FAILED, error="x")
        assert store.summary() == {
            "pending": 1, "running": 0, "done": 0, "failed": 1,
        }


class TestCrashPaths:
    def test_torn_final_line_is_discarded(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.mark(make_spec(seed=0), RunStatus.DONE)
        # Simulate a crash mid-append: a final line with no terminator.
        with store.index_path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "partial", "status": "do')
        records = store.records()
        assert len(records) == 1
        assert "partial" not in records

    def test_append_after_torn_line_recovers(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.mark(make_spec(seed=0), RunStatus.DONE)
        with store.index_path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "partial", "status": "do')
        # The next append must not be glued onto the torn line.
        store.mark(make_spec(seed=1), RunStatus.PENDING)
        records = store.records()
        assert len(records) == 2
        assert {rec.status for rec in records.values()} == {
            RunStatus.DONE, RunStatus.PENDING,
        }

    def test_corrupt_mid_file_line_is_skipped(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.mark(make_spec(seed=0), RunStatus.DONE)
        with store.index_path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        store.mark(make_spec(seed=1), RunStatus.PENDING)
        assert len(store.records()) == 2

    def test_interrupted_result_write_leaves_no_partial_record(
        self, tmp_path, monkeypatch
    ):
        store = ExperimentStore(tmp_path)
        spec = make_spec()
        result = execute_spec(spec)
        key = store.key_for(spec)
        store.mark(spec, RunStatus.RUNNING)

        def exploding_replace(src, dst):
            raise OSError("simulated crash during atomic rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.save_result(spec, result)
        monkeypatch.undo()
        # No payload at the final path, no done line in the index, and no
        # temp-file litter: the run is still `running` and will be re-run.
        assert not store.has_result(key)
        assert store.record(key).status is RunStatus.RUNNING
        assert list((tmp_path / "results").glob("*.tmp")) == []

    def test_empty_store_directory_reads_as_empty(self, tmp_path):
        store = ExperimentStore(tmp_path / "fresh")
        assert store.records() == {}
        assert store.summary()["done"] == 0


class TestClean:
    def test_clean_defaults_to_non_done(self, tmp_path):
        store = ExperimentStore(tmp_path)
        done_spec = make_spec(seed=0)
        store.save_result(done_spec, execute_spec(done_spec))
        store.mark(make_spec(seed=1), RunStatus.FAILED, error="x")
        store.mark(make_spec(seed=2), RunStatus.RUNNING)
        dropped = store.clean()
        assert len(dropped) == 2
        records = store.records()
        assert len(records) == 1
        assert next(iter(records.values())).status is RunStatus.DONE

    def test_clean_specific_status_removes_payloads(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec = make_spec()
        store.save_result(spec, execute_spec(spec))
        key = store.key_for(spec)
        dropped = store.clean([RunStatus.DONE])
        assert dropped == [key]
        assert store.records() == {}
        assert not (tmp_path / "results" / f"{key}.json").exists()

    def test_clean_compacts_index_to_one_line_per_run(self, tmp_path):
        store = ExperimentStore(tmp_path)
        spec = make_spec()
        store.mark(spec, RunStatus.PENDING)
        store.mark(spec, RunStatus.RUNNING)
        store.save_result(spec, execute_spec(spec))
        assert len(store.index_path.read_text().strip().splitlines()) == 3
        store.clean([RunStatus.FAILED])  # drops nothing, but compacts
        assert len(store.index_path.read_text().strip().splitlines()) == 1
        assert store.record(store.key_for(spec)).status is RunStatus.DONE


class TestRecordSerialisation:
    def test_record_line_round_trip(self):
        record = RunRecord(
            key="abc", status=RunStatus.FAILED, study="s", spec_key=(1, "x"),
            config_name="cfg", algorithm="fedavg", seed=3, updated_at=12.5,
            duration_s=0.25, error="trace",
        )
        replayed = RunRecord.from_payload(json.loads(record.to_line()))
        assert replayed == record


class TestPolicyObjectAddressing:
    """Non-dataclass policy objects in algorithm kwargs must hash by value."""

    def _fig6_switch_spec(self):
        from repro.core.stepsize import PiecewiseStepSize

        policy = PiecewiseStepSize(values=[1.0, 0.5], boundaries=[10])
        return make_spec(name="fedadmm", kwargs={"rho": 0.3, "server_step_size": policy})

    def test_structurally_equal_policies_hash_identically(self, tmp_path):
        # Two instances have different memory addresses; a repr-based
        # fallback would give each its own key and break --resume.
        store = ExperimentStore(tmp_path)
        assert store.key_for(self._fig6_switch_spec()) == store.key_for(
            self._fig6_switch_spec()
        )

    def test_policy_values_change_the_key(self, tmp_path):
        from repro.core.rho import PiecewiseRho
        from repro.core.stepsize import PiecewiseStepSize

        store = ExperimentStore(tmp_path)
        base = store.key_for(self._fig6_switch_spec())
        other_policy = PiecewiseStepSize(values=[1.0, 0.25], boundaries=[10])
        assert store.key_for(
            make_spec(name="fedadmm", kwargs={"rho": 0.3, "server_step_size": other_policy})
        ) != base
        schedule = PiecewiseRho(values=[0.1, 0.3], boundaries=[10])
        assert store.key_for(
            make_spec(name="fedadmm", kwargs={"rho": schedule})
        ) != base

    def test_registry_piecewise_specs_resume_cleanly(self, tmp_path):
        # The fig6/fig9 switch points carry policy objects; a full
        # store-backed run followed by a resume must skip every point.
        from repro.experiments.orchestrator import SweepOrchestrator
        from repro.experiments.registry import StudyRequest
        from repro.experiments.studies import STUDIES

        request = StudyRequest(dataset="blobs", clients=8, rounds=2)
        study = STUDIES.get("fig9")
        config = request.apply_overrides(study.build_config(request))
        specs = study.specs(config, request)
        store = ExperimentStore(tmp_path)
        SweepOrchestrator(store=store).execute(specs)
        resumer = SweepOrchestrator(store=store, resume=True)
        resumer.execute(study.specs(config, request))  # freshly-built specs
        assert len(resumer.last_report.skipped) == len(specs)
        assert resumer.last_report.executed == []


class TestForeignIndexLines:
    def test_json_line_missing_required_fields_is_skipped(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.mark(make_spec(seed=0), RunStatus.DONE)
        with store.index_path.open("a", encoding="utf-8") as handle:
            handle.write('{"status": "done"}\n')   # valid JSON, no "key"
            handle.write('{"key": "x", "status": "not-a-status"}\n')
        assert len(store.records()) == 1  # both foreign lines skipped

    def test_set_valued_kwargs_hash_stably(self, tmp_path):
        store = ExperimentStore(tmp_path)
        first = store.key_for(make_spec(kwargs={"tags": {"b", "a", "c"}}))
        second = store.key_for(make_spec(kwargs={"tags": {"c", "a", "b"}}))
        assert first == second
