"""Tests for dataset containers, synthetic generators, registry, transforms."""

import numpy as np
import pytest

from repro.datasets.base import Dataset, iterate_minibatches, train_test_split
from repro.datasets.registry import DATASET_REGISTRY, dataset_info, load_dataset
from repro.datasets.synthetic import (
    SyntheticImageSpec,
    make_blobs,
    make_synthetic_images,
)
from repro.datasets.transforms import flatten_images, normalize_features, standardize
from repro.exceptions import ConfigurationError, ShapeError


class TestDataset:
    def test_length_and_classes(self):
        data = Dataset(features=np.zeros((6, 3)), labels=np.array([0, 1, 2, 0, 1, 2]))
        assert len(data) == 6
        assert data.num_classes == 3
        assert data.feature_dim == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ShapeError):
            Dataset(features=np.zeros((5, 2)), labels=np.zeros(4, dtype=int))

    def test_subset(self):
        data = Dataset(features=np.arange(10).reshape(5, 2), labels=np.arange(5))
        sub = data.subset(np.array([0, 3]))
        assert len(sub) == 2
        assert np.array_equal(sub.labels, [0, 3])

    def test_label_counts(self):
        data = Dataset(features=np.zeros((4, 1)), labels=np.array([0, 0, 2, 2]))
        assert np.array_equal(data.label_counts(), [2, 0, 2])

    def test_shuffled_preserves_content(self):
        data = Dataset(features=np.arange(12).reshape(6, 2), labels=np.arange(6))
        shuffled = data.shuffled(rng=0)
        assert sorted(shuffled.labels.tolist()) == list(range(6))


class TestMinibatches:
    def test_full_batch_when_none(self):
        x, y = np.zeros((10, 2)), np.zeros(10, dtype=int)
        batches = list(iterate_minibatches(x, y, None))
        assert len(batches) == 1
        assert batches[0][0].shape == (10, 2)

    def test_batches_cover_all_samples(self):
        x = np.arange(14).reshape(7, 2).astype(float)
        y = np.arange(7)
        batches = list(iterate_minibatches(x, y, 3, rng=0))
        total = np.concatenate([b[1] for b in batches])
        assert sorted(total.tolist()) == list(range(7))
        assert len(batches) == 3

    def test_invalid_batch_size(self):
        with pytest.raises(ShapeError):
            list(iterate_minibatches(np.zeros((4, 1)), np.zeros(4, dtype=int), 0))

    def test_empty_dataset_yields_nothing(self):
        assert list(iterate_minibatches(np.zeros((0, 2)), np.zeros(0, dtype=int), 4)) == []


class TestTrainTestSplit:
    def test_split_sizes(self):
        data = Dataset(features=np.zeros((20, 2)), labels=np.arange(20) % 4)
        split = train_test_split(data, test_fraction=0.25, rng=0)
        assert len(split.test) == 5
        assert len(split.train) == 15

    def test_invalid_fraction(self):
        data = Dataset(features=np.zeros((10, 2)), labels=np.zeros(10, dtype=int))
        with pytest.raises(ShapeError):
            train_test_split(data, test_fraction=1.5)


class TestSyntheticGenerators:
    def test_blobs_shapes_and_balance(self):
        split = make_blobs(n_train=100, n_test=40, num_classes=5, feature_dim=8, rng=0)
        assert split.train.features.shape == (100, 8)
        assert split.train.num_classes == 5
        counts = split.train.label_counts()
        assert counts.max() - counts.min() <= 1

    def test_blobs_deterministic(self):
        a = make_blobs(n_train=50, n_test=10, rng=3)
        b = make_blobs(n_train=50, n_test=10, rng=3)
        assert np.array_equal(a.train.features, b.train.features)

    def test_images_shapes(self):
        spec = SyntheticImageSpec(channels=1, image_size=12, num_classes=4)
        split = make_synthetic_images(n_train=40, n_test=12, spec=spec, rng=0)
        assert split.train.features.shape == (40, 144)
        assert split.test.features.shape == (12, 144)

    def test_images_unflattened_option(self):
        spec = SyntheticImageSpec(channels=3, image_size=8, num_classes=3)
        split = make_synthetic_images(n_train=9, n_test=3, spec=spec, rng=0, flatten=False)
        assert split.train.features.shape == (9, 3, 8, 8)

    def test_images_learnable_signal(self):
        """Same-class samples must be closer to their prototype than to others."""
        spec = SyntheticImageSpec(channels=1, image_size=10, num_classes=3, noise_std=0.2)
        split = make_synthetic_images(n_train=90, n_test=30, spec=spec, rng=0)
        features, labels = split.train.features, split.train.labels
        centroids = np.stack([features[labels == c].mean(axis=0) for c in range(3)])
        distances = ((features[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        nearest = distances.argmin(axis=1)
        assert (nearest == labels).mean() > 0.9

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticImageSpec(noise_std=-1.0)
        with pytest.raises(ConfigurationError):
            make_blobs(num_classes=0)


class TestRegistry:
    def test_registry_matches_paper_datasets(self):
        assert {"mnist", "fmnist", "cifar10"} <= set(DATASET_REGISTRY)
        assert DATASET_REGISTRY["mnist"].input_dim == 784
        assert DATASET_REGISTRY["cifar10"].input_dim == 3072

    def test_paper_target_accuracies(self):
        assert DATASET_REGISTRY["mnist"].paper_target_accuracy == 0.97
        assert DATASET_REGISTRY["fmnist"].paper_target_accuracy == 0.80
        assert DATASET_REGISTRY["cifar10"].paper_target_accuracy == 0.45

    def test_load_dataset_shapes(self):
        split = load_dataset("cifar10", n_train=30, n_test=10, rng=0)
        assert split.train.features.shape == (30, 3072)
        assert split.num_classes == 10

    def test_load_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            load_dataset("imagenet")

    def test_dataset_info_accessor(self):
        assert dataset_info("fmnist").image_size == 28


class TestTransforms:
    def test_flatten_images(self):
        data = Dataset(features=np.zeros((4, 2, 3, 3)), labels=np.zeros(4, dtype=int))
        assert flatten_images(data).features.shape == (4, 18)

    def test_flatten_noop_for_flat(self):
        data = Dataset(features=np.zeros((4, 6)), labels=np.zeros(4, dtype=int))
        assert flatten_images(data).features.shape == (4, 6)

    def test_normalize_range(self):
        data = Dataset(
            features=np.array([[-5.0, 0.0], [5.0, 10.0]]), labels=np.zeros(2, dtype=int)
        )
        normalized = normalize_features(data)
        assert normalized.features.min() == 0.0
        assert normalized.features.max() == 1.0

    def test_standardize_moments(self):
        rng = np.random.default_rng(0)
        data = Dataset(features=rng.normal(3.0, 2.0, size=(200, 5)), labels=np.zeros(200, dtype=int))
        standardized = standardize(data)
        assert np.allclose(standardized.features.mean(axis=0), 0.0, atol=1e-8)
        assert np.allclose(standardized.features.std(axis=0), 1.0, atol=1e-8)
