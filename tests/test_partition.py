"""Tests for all partitioners and partition statistics."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError, PartitionError
from repro.partition import (
    DirichletPartitioner,
    IidPartitioner,
    ImbalancedPartitioner,
    ShardPartitioner,
    build_partitioner,
    compute_partition_stats,
)
from repro.partition.base import Partition


@pytest.fixture(scope="module")
def dataset():
    return make_blobs(n_train=600, n_test=10, num_classes=10, feature_dim=4, rng=0).train


class TestPartitionContainer:
    def test_validate_detects_overlap(self):
        partition = Partition(
            client_indices=[np.array([0, 1]), np.array([1, 2])], dataset_size=3
        )
        with pytest.raises(PartitionError):
            partition.validate()

    def test_validate_detects_missing_cover(self):
        partition = Partition(client_indices=[np.array([0])], dataset_size=3)
        with pytest.raises(PartitionError):
            partition.validate(require_cover=True)
        partition.validate(require_cover=False)

    def test_validate_detects_out_of_range(self):
        partition = Partition(client_indices=[np.array([5])], dataset_size=3)
        with pytest.raises(PartitionError):
            partition.validate(require_cover=False)

    def test_client_dataset_out_of_range(self, dataset):
        partition = IidPartitioner().partition(dataset, 4, rng=0)
        with pytest.raises(PartitionError):
            partition.client_dataset(dataset, 9)


class TestIidPartitioner:
    def test_covers_dataset_evenly(self, dataset):
        partition = IidPartitioner().partition(dataset, 10, rng=0)
        sizes = partition.client_sizes()
        assert sizes.sum() == len(dataset)
        assert sizes.max() - sizes.min() <= 1

    def test_label_distribution_roughly_uniform(self, dataset):
        partition = IidPartitioner().partition(dataset, 6, rng=0)
        stats = compute_partition_stats(partition, dataset)
        assert stats.mean_classes_per_client >= 9.0

    def test_too_many_clients_rejected(self, dataset):
        with pytest.raises(PartitionError):
            IidPartitioner().partition(dataset, len(dataset) + 1, rng=0)

    def test_deterministic_given_seed(self, dataset):
        a = IidPartitioner().partition(dataset, 5, rng=7)
        b = IidPartitioner().partition(dataset, 5, rng=7)
        for idx_a, idx_b in zip(a.client_indices, b.client_indices):
            assert np.array_equal(idx_a, idx_b)


class TestShardPartitioner:
    def test_covers_dataset(self, dataset):
        partition = ShardPartitioner(2).partition(dataset, 20, rng=0)
        assert partition.client_sizes().sum() == len(dataset)

    def test_clients_see_few_classes(self, dataset):
        """With two shards per client most clients hold at most ~2-3 classes."""
        partition = ShardPartitioner(2).partition(dataset, 20, rng=0)
        stats = compute_partition_stats(partition, dataset)
        assert stats.mean_classes_per_client <= 3.0

    def test_more_shards_more_classes(self, dataset):
        few = compute_partition_stats(
            ShardPartitioner(2).partition(dataset, 10, rng=0), dataset
        )
        many = compute_partition_stats(
            ShardPartitioner(6).partition(dataset, 10, rng=0), dataset
        )
        assert many.mean_classes_per_client > few.mean_classes_per_client

    def test_invalid_shards_per_client(self):
        with pytest.raises(PartitionError):
            ShardPartitioner(0)

    def test_too_many_shards_rejected(self, dataset):
        with pytest.raises(PartitionError):
            ShardPartitioner(shards_per_client=200).partition(dataset, 20, rng=0)


class TestImbalancedPartitioner:
    def test_covers_dataset(self, dataset):
        partition = ImbalancedPartitioner(num_groups=5).partition(dataset, 20, rng=0)
        assert partition.client_sizes().sum() == len(dataset)

    def test_volume_increases_with_group_index(self, dataset):
        partition = ImbalancedPartitioner(num_groups=5).partition(dataset, 20, rng=0)
        sizes = partition.client_sizes()
        group_means = [sizes[g * 4 : (g + 1) * 4].mean() for g in range(5)]
        assert group_means[0] < group_means[-1]

    def test_volume_std_is_substantial(self, dataset):
        """Mirrors Table VI: the std of client volumes is a sizable fraction of the mean."""
        partition = ImbalancedPartitioner(num_groups=5).partition(dataset, 20, rng=0)
        stats = compute_partition_stats(partition, dataset)
        assert stats.std_samples > 0.3 * stats.mean_samples

    def test_clients_must_divide_groups(self, dataset):
        with pytest.raises(PartitionError):
            ImbalancedPartitioner(num_groups=7).partition(dataset, 20, rng=0)

    def test_table6_style_row(self, dataset):
        partition = ImbalancedPartitioner(num_groups=5).partition(dataset, 20, rng=0)
        row = compute_partition_stats(partition, dataset).as_table_row()
        assert row["Clients"] == 20
        assert row["Samples"] == len(dataset)


class TestDirichletPartitioner:
    def test_covers_dataset(self, dataset):
        partition = DirichletPartitioner(alpha=0.5).partition(dataset, 12, rng=0)
        assert partition.client_sizes().sum() == len(dataset)

    def test_small_alpha_more_skewed_than_large(self, dataset):
        skewed = compute_partition_stats(
            DirichletPartitioner(alpha=0.05).partition(dataset, 12, rng=0), dataset
        )
        uniform = compute_partition_stats(
            DirichletPartitioner(alpha=100.0).partition(dataset, 12, rng=0), dataset
        )
        assert skewed.label_entropy < uniform.label_entropy

    def test_minimum_samples_enforced(self, dataset):
        partition = DirichletPartitioner(alpha=0.05, min_samples_per_client=2).partition(
            dataset, 12, rng=0
        )
        assert partition.client_sizes().min() >= 2

    def test_invalid_alpha(self):
        with pytest.raises(PartitionError):
            DirichletPartitioner(alpha=0.0)


class TestBuildPartitioner:
    def test_known_names(self):
        assert isinstance(build_partitioner("iid"), IidPartitioner)
        assert isinstance(build_partitioner("shard", shards_per_client=3), ShardPartitioner)
        assert isinstance(build_partitioner("imbalanced"), ImbalancedPartitioner)
        assert isinstance(build_partitioner("dirichlet", alpha=1.0), DirichletPartitioner)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_partitioner("random-forest")
