"""Tests for the command-line interface (python -m repro.cli)."""

import json

import pytest

from repro.cli import EXPERIMENTS, main, run_experiment


class TestCliListing:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "table3" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table7"])


class TestCliRuns:
    def test_table1_runs_without_training(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "fedadmm" in out and "fedavg" in out

    def test_table3_small_run_and_json_output(self, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(
            [
                "table3",
                "--dataset",
                "blobs",
                "--clients",
                "8",
                "--rounds",
                "2",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        payload = json.loads(output.read_text())
        assert "summary" in payload
        out = capsys.readouterr().out
        assert "fedadmm" in out

    def test_table4_small_run(self, capsys):
        code = main(["table4", "--dataset", "blobs", "--clients", "8", "--rounds", "2"])
        assert code == 0
        assert "rounds_to_target" in capsys.readouterr().out

    def test_systems_small_run(self, capsys):
        code = main(
            [
                "systems",
                "--dataset",
                "blobs",
                "--clients",
                "8",
                "--rounds",
                "2",
                "--codec",
                "qsgd",
                "--dropout",
                "0.2",
                "--executor",
                "thread",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wire_upload_MB" in out and "sim_minutes" in out

    def test_fig6_small_run(self, capsys):
        code = main(
            ["fig6", "--dataset", "blobs", "--clients", "8", "--rounds", "4", "--non-iid"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eta=1.0" in out

    def test_async_experiment_small_run(self, capsys):
        code = main(
            [
                "async",
                "--dataset",
                "blobs",
                "--clients",
                "8",
                "--rounds",
                "3",
                "--buffer-size",
                "2",
                "--max-concurrency",
                "4",
                "--staleness",
                "constant",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "seconds_to_target" in out
        assert "sync" in out and "async" in out

    def test_semisync_experiment_small_run(self, tmp_path, capsys):
        output = tmp_path / "semisync.json"
        code = main(
            [
                "semisync",
                "--dataset",
                "blobs",
                "--clients",
                "8",
                "--rounds",
                "3",
                "--round-deadline",
                "2.0",
                "--staleness",
                "constant",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "semisync" in out and "seconds_to_target" in out
        payload = json.loads(output.read_text())
        assert {"rows", "late_arrivals", "round_deadline_s"} <= set(payload)

    def test_semisync_mode_flag_on_table3(self, capsys):
        code = main(
            ["table3", "--dataset", "blobs", "--clients", "8", "--rounds", "2",
             "--mode", "semisync", "--network", "lognormal"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skips" in out  # scaffold/fedpd opt out of buffered plans
        assert "fedadmm" in out

    def test_registry_extra_flags_reach_the_sweep(self, capsys):
        code = main(
            ["fig6", "--dataset", "blobs", "--clients", "8", "--rounds", "2",
             "--etas", "0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eta=0.5" in out and "eta=1.5" not in out

    def test_async_flag_on_systems_skips_scaffold(self, capsys):
        code = main(
            ["systems", "--dataset", "blobs", "--clients", "8", "--rounds", "2",
             "--async"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skips scaffold" in out
        assert "fedadmm" in out

    def test_run_experiment_rejects_unknown_name(self):
        class Args:
            dataset = "blobs"
            non_iid = False
            scale = "bench"
            clients = 8
            rounds = 2
            rho = 0.3
            seed = 0

        with pytest.raises(ValueError):
            run_experiment("not-an-experiment", Args())


class TestCliOrchestration:
    TABLE4 = ["table4", "--dataset", "blobs", "--clients", "8", "--rounds", "2",
              "--epochs", "1", "5"]

    def test_plain_invocations_print_no_progress_lines(self, capsys):
        assert main(self.TABLE4) == 0
        assert "[1/" not in capsys.readouterr().out

    def test_jobs_and_store_dir_stream_progress_and_persist(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        code = main(self.TABLE4 + ["--jobs", "2", "--store-dir", store_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out and "done" in out
        assert (tmp_path / "store" / "runs.jsonl").exists()

    def test_resume_skips_done_points(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(self.TABLE4 + ["--store-dir", store_dir]) == 0
        first = capsys.readouterr().out
        assert main(self.TABLE4 + ["--store-dir", store_dir, "--resume"]) == 0
        second = capsys.readouterr().out
        assert second.count("skipped") == 2
        # The resumed (fully cached) payload prints the same report.
        assert first.splitlines()[-3:] == second.splitlines()[-3:]

    def test_runs_list_show_clean_cycle(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(self.TABLE4 + ["--store-dir", store_dir]) == 0
        capsys.readouterr()

        assert main(["runs", "list", "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "done=2" in out and "table4" in out
        key = next(
            line.split("|")[0].strip()
            for line in out.splitlines()
            if "table4" in line
        )

        assert main(["runs", "show", key, "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "rounds_run" in out and "final_accuracy" in out

        assert main(["runs", "clean", "--store-dir", store_dir,
                     "--status", "done"]) == 0
        assert "dropped 2" in capsys.readouterr().out
        assert main(["runs", "list", "--store-dir", store_dir]) == 0
        assert "done=0" in capsys.readouterr().out

    def test_runs_show_unknown_key_fails(self, tmp_path, capsys):
        assert main(["runs", "show", "nope",
                     "--store-dir", str(tmp_path / "s")]) == 1
        assert "no run" in capsys.readouterr().err

    def test_runs_show_without_key_fails(self, tmp_path, capsys):
        assert main(["runs", "show",
                     "--store-dir", str(tmp_path / "s")]) == 2
        assert "needs a run key" in capsys.readouterr().err

    def test_runs_clean_default_keeps_done(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(self.TABLE4 + ["--store-dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["runs", "clean", "--store-dir", store_dir]) == 0
        assert "dropped 0" in capsys.readouterr().out

    def test_resume_without_store_dir_uses_default(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(self.TABLE4 + ["--resume"]) == 0
        assert (tmp_path / ".repro_runs" / "runs.jsonl").exists()
        capsys.readouterr()
        assert main(self.TABLE4 + ["--resume"]) == 0
        assert capsys.readouterr().out.count("skipped") == 2

    def test_non_positive_jobs_rejected(self, capsys):
        # Configuration errors surface as a clean one-line failure (exit
        # code 2), not a traceback.
        assert main(self.TABLE4 + ["--jobs", "0"]) == 2
        assert "jobs must be positive" in capsys.readouterr().err

    def test_unimportable_backend_fails_fast(self, capsys):
        # A registered-but-unimportable backend dies before any sweep
        # point runs, with one clear line (not a per-spec failure pile).
        try:
            import torch  # noqa: F401
        except ImportError:
            assert main(self.TABLE4 + ["--backend", "torch"]) == 2
            assert "torch" in capsys.readouterr().err
        else:  # pragma: no cover - only on machines with torch
            pytest.skip("torch installed; the guard does not trip")


class TestCliObservability:
    TABLE4 = ["table4", "--dataset", "blobs", "--clients", "8", "--rounds", "2",
              "--epochs", "1", "5"]

    def test_trace_and_metrics_flags_write_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        metrics = tmp_path / "run.metrics.json"
        code = main(
            self.TABLE4 + ["--trace", str(trace), "--metrics", str(metrics)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Wrote Chrome trace" in out and "Wrote metrics snapshot" in out

        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        names = {event["name"] for event in events}
        assert {"run", "round", "client_task", "local_sgd"} <= names
        # The span log sits next to the Chrome trace.
        span_log = tmp_path / "run.trace.json.spans.jsonl"
        assert span_log.exists()
        assert len(span_log.read_text().splitlines()) == len(events)

        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["rounds_completed"] >= 2
        assert snapshot["counters"]["sweep.specs_done"] == 2

    def test_progress_flag_streams_eta_lines(self, capsys):
        assert main(self.TABLE4 + ["--progress"]) == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out
        # The first resolved spec carries an ETA for the one remaining.
        assert "(eta " in out

    def test_profile_subcommand_prints_hotspots(self, capsys):
        code = main(
            ["profile", "table4", "--dataset", "blobs", "--clients", "8",
             "--rounds", "2", "--top", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Hot spots for table4" in out
        assert "pipeline.local_updates" in out

    def test_profile_vectorized_includes_kernels(self, capsys):
        code = main(
            ["profile", "table4", "--dataset", "blobs", "--clients", "8",
             "--rounds", "2", "--executor", "vectorized"]
        )
        assert code == 0
        assert "kernel." in capsys.readouterr().out

    def test_runs_show_prints_duration_and_wire_totals(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(self.TABLE4 + ["--store-dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--store-dir", store_dir]) == 0
        key = next(
            line.split("|")[0].strip()
            for line in capsys.readouterr().out.splitlines()
            if "table4" in line
        )
        assert main(["runs", "show", key, "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "status: done (as of" in out
        assert "run duration:" in out
        assert "upload_wire_bytes:" in out


class TestCliServe:
    """The networked-runtime subcommands (see repro.serve and repro.cli)."""

    def test_serve_self_contained_smoke(self, tmp_path, capsys):
        output = tmp_path / "serve.json"
        code = main(
            ["serve", "--rounds", "2", "--workers", "2",
             "--output", str(output)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving serve-blobs-noniid / fedavg at http://" in out
        assert "rounds_run: 2" in out
        status = json.loads(output.read_text())
        assert status["rounds_run"] == 2
        assert status["done"] is True

    def test_loadtest_reports_and_saves_json(self, tmp_path, capsys):
        output = tmp_path / "load.json"
        code = main(
            ["loadtest", "--max-rounds", "2", "--time-scale", "0.001",
             "--output", str(output)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds_per_sec:" in out and "p99_round_latency_seconds:" in out
        report = json.loads(output.read_text())
        assert report["rounds"] == 2
        # float16: the bytes observed in HTTP bodies equal the ledger's
        # nominal accounting, and the closed-form expectation, exactly.
        assert (
            report["real_upload_payload_bytes"]
            == report["ledger_upload_wire_bytes"]
            == report["expected_real_upload_bytes"]
        )

    def test_worker_against_live_server(self, capsys):
        import threading

        from repro.experiments.configs import AlgorithmSpec, serve_config
        from repro.serve.server import FederationServer

        server = FederationServer(
            serve_config(), AlgorithmSpec("fedavg"), num_rounds=1
        )
        server.start()
        try:
            thread = threading.Thread(
                target=main, args=(["worker", server.url],), daemon=True
            )
            thread.start()
            server.wait(timeout=120)
        finally:
            server.stop()
        thread.join(timeout=30)
        assert "completed" in capsys.readouterr().out

    def test_serve_flag_errors_fail_fast_without_traceback(self, capsys):
        # Same one-line `error: ...` + exit 2 contract as the studies.
        assert main(["loadtest", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err
        assert main(["worker", "ftp://nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err


class TestCliRobustness:
    def test_robustness_small_run(self, capsys):
        code = main(
            [
                "robustness",
                "--dataset", "blobs",
                "--clients", "8",
                "--rounds", "2",
                "--adversary", "sign_flip",
                "--defense", "median",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation_vs_clean" in out
        assert "sign_flip" in out and "median" in out

    def test_unknown_defense_fails_fast(self, capsys):
        code = main(
            [
                "robustness",
                "--clients", "8",
                "--rounds", "2",
                "--adversary", "sign_flip",
                "--defense", "bogus",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_unsupported_adversary_on_a_study_fails_fast(self, capsys):
        assert main(["robustness", "--adversary", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "supported adversaries" in err

    def test_contributions_loo_smoke(self, tmp_path, capsys):
        output = tmp_path / "contrib.json"
        code = main(
            [
                "contributions",
                "--clients", "4",
                "--rounds", "2",
                "--method", "loo",
                "--store-dir", str(tmp_path / "store"),
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "contribution scores" in out
        payload = json.loads(output.read_text())
        assert payload["method"] == "loo"
        assert len(payload["scores"]) == 4
        # Second invocation reuses every cached coalition run.
        assert main(
            [
                "contributions",
                "--clients", "4",
                "--rounds", "2",
                "--method", "loo",
                "--store-dir", str(tmp_path / "store"),
            ]
        ) == 0
        assert "0 coalition run(s) executed" in capsys.readouterr().out
