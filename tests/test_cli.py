"""Tests for the command-line interface (python -m repro.cli)."""

import json

import pytest

from repro.cli import EXPERIMENTS, main, run_experiment


class TestCliListing:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "table3" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table7"])


class TestCliRuns:
    def test_table1_runs_without_training(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "fedadmm" in out and "fedavg" in out

    def test_table3_small_run_and_json_output(self, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(
            [
                "table3",
                "--dataset",
                "blobs",
                "--clients",
                "8",
                "--rounds",
                "2",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        payload = json.loads(output.read_text())
        assert "summary" in payload
        out = capsys.readouterr().out
        assert "fedadmm" in out

    def test_table4_small_run(self, capsys):
        code = main(["table4", "--dataset", "blobs", "--clients", "8", "--rounds", "2"])
        assert code == 0
        assert "rounds_to_target" in capsys.readouterr().out

    def test_systems_small_run(self, capsys):
        code = main(
            [
                "systems",
                "--dataset",
                "blobs",
                "--clients",
                "8",
                "--rounds",
                "2",
                "--codec",
                "qsgd",
                "--dropout",
                "0.2",
                "--executor",
                "thread",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wire_upload_MB" in out and "sim_minutes" in out

    def test_fig6_small_run(self, capsys):
        code = main(
            ["fig6", "--dataset", "blobs", "--clients", "8", "--rounds", "4", "--non-iid"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eta=1.0" in out

    def test_async_experiment_small_run(self, capsys):
        code = main(
            [
                "async",
                "--dataset",
                "blobs",
                "--clients",
                "8",
                "--rounds",
                "3",
                "--buffer-size",
                "2",
                "--max-concurrency",
                "4",
                "--staleness",
                "constant",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "seconds_to_target" in out
        assert "sync" in out and "async" in out

    def test_semisync_experiment_small_run(self, tmp_path, capsys):
        output = tmp_path / "semisync.json"
        code = main(
            [
                "semisync",
                "--dataset",
                "blobs",
                "--clients",
                "8",
                "--rounds",
                "3",
                "--round-deadline",
                "2.0",
                "--staleness",
                "constant",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "semisync" in out and "seconds_to_target" in out
        payload = json.loads(output.read_text())
        assert {"rows", "late_arrivals", "round_deadline_s"} <= set(payload)

    def test_semisync_mode_flag_on_table3(self, capsys):
        code = main(
            ["table3", "--dataset", "blobs", "--clients", "8", "--rounds", "2",
             "--mode", "semisync", "--network", "lognormal"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skips" in out  # scaffold/fedpd opt out of buffered plans
        assert "fedadmm" in out

    def test_registry_extra_flags_reach_the_sweep(self, capsys):
        code = main(
            ["fig6", "--dataset", "blobs", "--clients", "8", "--rounds", "2",
             "--etas", "0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eta=0.5" in out and "eta=1.5" not in out

    def test_async_flag_on_systems_skips_scaffold(self, capsys):
        code = main(
            ["systems", "--dataset", "blobs", "--clients", "8", "--rounds", "2",
             "--async"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skips scaffold" in out
        assert "fedadmm" in out

    def test_run_experiment_rejects_unknown_name(self):
        class Args:
            dataset = "blobs"
            non_iid = False
            scale = "bench"
            clients = 8
            rounds = 2
            rho = 0.3
            seed = 0

        with pytest.raises(ValueError):
            run_experiment("not-an-experiment", Args())
