"""Wire-protocol tests for the serve layer.

Three concerns, each pinned independently of the networked e2e suite:

* **Round-trips** — hypothesis drives every codec's encoded form through
  :func:`~repro.serve.protocol.pack_vector` / ``unpack_vector`` and whole
  frames through ``pack_frame`` / ``unpack_frame``, asserting the binary
  wire form reproduces the in-memory representation exactly (bit-exact
  floats, identical support, identical signs).
* **Rejection** — malformed, truncated, and oversized frames raise
  :class:`~repro.exceptions.ProtocolError` with the documented machine
  codes, and a live server maps those codes onto the right HTTP statuses
  (400/404/413/426), refusing version-mismatched handshakes.
* **Transport.decode** — the boundary-crossing decode validates payload
  dtype/shape/support against the model template and raises instead of
  silently reshaping; a regression pin for the transport fix.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ProtocolError
from repro.experiments.configs import AlgorithmSpec, serve_config
from repro.serve import protocol
from repro.systems.compression import (
    EncodedVector,
    Float16Codec,
    IdentityCodec,
    QSGDCodec,
    SignSGDCodec,
    TopKCodec,
)
from repro.systems.transport import Transport

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=64
)

vectors = st.lists(finite_floats, min_size=1, max_size=64).map(
    lambda values: np.array(values, dtype=np.float64)
)


def all_codecs():
    return [
        None,  # the raw float64 path used when the server runs codec-free
        IdentityCodec(),
        Float16Codec(),
        TopKCodec(fraction=0.3),
        TopKCodec(k=2),
        QSGDCodec(levels=16),
        QSGDCodec(levels=5),  # non-power-of-two level count
        SignSGDCodec(),
    ]


def encode(codec, values, rng):
    if codec is None:
        return EncodedVector(
            codec="raw",
            dim=values.size,
            wire_bytes=values.size * 8,
            data={"values": np.asarray(values, dtype=np.float64)},
        )
    return codec.encode(values, rng=rng)


# --------------------------------------------------------------------------- #
# Vector round-trips
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "codec", all_codecs(), ids=lambda c: "raw" if c is None else repr(c)
)
@given(values=vectors, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_vector_wire_roundtrip_is_exact(codec, values, seed):
    """pack_vector → unpack_vector reproduces every codec field bit-exactly."""
    encoded = encode(codec, values, np.random.default_rng(seed))
    wire = protocol.pack_vector(codec, encoded)
    assert len(wire) == protocol.payload_wire_bytes(codec, values.size)
    decoded = protocol.unpack_vector(codec, values.size, wire)
    assert decoded.codec == encoded.codec
    assert decoded.dim == encoded.dim
    assert decoded.wire_bytes == encoded.wire_bytes
    assert set(decoded.data) == set(encoded.data)
    for key, original in encoded.data.items():
        assert np.array_equal(
            np.asarray(decoded.data[key], dtype=np.float64),
            np.asarray(original, dtype=np.float64),
        ), key
    if codec is not None:
        assert np.array_equal(codec.decode(decoded), codec.decode(encoded))


@given(values=vectors)
@settings(max_examples=25, deadline=None)
def test_float16_wire_bytes_match_ledger_exactly(values):
    """float16 is the codec whose real packed bytes equal the nominal ones."""
    codec = Float16Codec()
    wire = protocol.pack_vector(codec, codec.encode(values))
    assert len(wire) == codec.wire_bytes(values.size)


@given(value=st.floats(allow_nan=True, allow_infinity=True, width=64))
@settings(max_examples=50, deadline=None)
def test_hex_float_roundtrip(value):
    restored = protocol.unhex_float(protocol.hex_float(value))
    if np.isnan(value):
        assert np.isnan(restored)
    else:
        assert restored == value and np.signbit(restored) == np.signbit(value)


# --------------------------------------------------------------------------- #
# Frame round-trips and rejection
# --------------------------------------------------------------------------- #

headers = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(), st.text(max_size=8), st.none(), st.booleans()),
    max_size=6,
)
blob_lists = st.lists(st.binary(max_size=128), max_size=5)


@given(header=headers, blobs=blob_lists)
@settings(max_examples=50, deadline=None)
def test_frame_roundtrip(header, blobs):
    packed = protocol.pack_frame(header, blobs)
    restored_header, restored_blobs = protocol.unpack_frame(packed)
    assert restored_header == header
    assert restored_blobs == blobs


@given(header=headers, blobs=blob_lists, cut=st.integers(min_value=1, max_value=64))
@settings(max_examples=50, deadline=None)
def test_truncated_frame_is_rejected(header, blobs, cut):
    packed = protocol.pack_frame(header, blobs)
    with pytest.raises(ProtocolError):
        protocol.unpack_frame(packed[: max(0, len(packed) - cut)])


def test_bad_magic_and_garbage_are_rejected():
    with pytest.raises(ProtocolError):
        protocol.unpack_frame(b"NOPE" + b"\x00" * 16)
    with pytest.raises(ProtocolError):
        protocol.unpack_frame(b"")
    # Valid preamble, header bytes that are not JSON.
    frame = bytearray(protocol.pack_frame({"a": 1}))
    frame[protocol._HEADER_STRUCT.size] = 0xFF
    with pytest.raises(ProtocolError):
        protocol.unpack_frame(bytes(frame))


def test_trailing_bytes_are_rejected():
    packed = protocol.pack_frame({"kind": "x"}, [b"abc"])
    with pytest.raises(ProtocolError):
        protocol.unpack_frame(packed + b"\x00")


def test_oversized_frame_rejected_with_too_large():
    packed = protocol.pack_frame({"kind": "x"}, [b"y" * 256])
    with pytest.raises(ProtocolError) as excinfo:
        protocol.unpack_frame(packed, max_bytes=64)
    assert excinfo.value.code == "too_large"
    assert protocol.http_status_for(excinfo.value) == 413


def test_version_mismatch_frame_rejected_with_426_code():
    packed = bytearray(protocol.pack_frame({"kind": "x"}))
    # The u16 version field sits right after the 4-byte magic.
    packed[4:6] = (protocol.PROTOCOL_VERSION + 1).to_bytes(2, "little")
    with pytest.raises(ProtocolError) as excinfo:
        protocol.unpack_frame(bytes(packed))
    assert excinfo.value.code == "version_mismatch"
    assert protocol.http_status_for(excinfo.value) == 426


def test_error_code_to_http_status_table():
    assert protocol.HTTP_STATUS_FOR_CODE == {
        "malformed": 400,
        "bad_codec": 400,
        "unknown_task": 404,
        "too_large": 413,
        "version_mismatch": 426,
    }
    assert protocol.http_status_for(ProtocolError("x")) == 400
    assert protocol.http_status_for(ProtocolError("x", code="unknown_task")) == 404


# --------------------------------------------------------------------------- #
# Transport.decode validation (regression pin for the silent-reshape fix)
# --------------------------------------------------------------------------- #


def test_transport_decode_roundtrips_valid_payload():
    transport = Transport(Float16Codec())
    template = np.zeros((3, 4))
    values = np.linspace(-1, 1, template.size)
    encoded = transport.codec.encode(values)
    decoded = transport.decode(encoded, template)
    assert decoded.shape == template.shape
    assert np.array_equal(decoded.ravel(), transport.codec.decode(encoded))


def test_transport_decode_rejects_wrong_codec_name():
    transport = Transport(Float16Codec())
    encoded = IdentityCodec().encode(np.ones(4))
    with pytest.raises(ProtocolError) as excinfo:
        transport.decode(encoded, np.zeros(4))
    assert excinfo.value.code == "bad_codec"


def test_transport_decode_rejects_dim_mismatch_instead_of_reshaping():
    """The old path reshaped whatever arrived; dim mismatches must now raise."""
    transport = Transport(IdentityCodec())
    encoded = transport.codec.encode(np.ones(6))
    with pytest.raises(ProtocolError):
        transport.decode(encoded, np.zeros((2, 4)))  # 8 scalars != 6


def test_transport_decode_rejects_wire_byte_lie():
    transport = Transport(Float16Codec())
    encoded = transport.codec.encode(np.ones(4))
    forged = EncodedVector(
        codec=encoded.codec, dim=encoded.dim, wire_bytes=1, data=encoded.data
    )
    with pytest.raises(ProtocolError):
        transport.decode(forged, np.zeros(4))


def test_transport_decode_rejects_non_float_values():
    transport = Transport(IdentityCodec())
    encoded = transport.codec.encode(np.ones(4))
    forged = EncodedVector(
        codec=encoded.codec,
        dim=4,
        wire_bytes=encoded.wire_bytes,
        data={"values": np.ones(4, dtype=np.int64)},
    )
    with pytest.raises(ProtocolError):
        transport.decode(forged, np.zeros(4))


def test_transport_decode_rejects_bad_topk_indices():
    codec = TopKCodec(k=2)
    transport = Transport(codec)
    encoded = codec.encode(np.array([5.0, -4.0, 3.0, 1.0]))
    for indices in ([3, 3], [1, 0], [2, 99]):  # duplicate, unsorted, out of range
        forged = EncodedVector(
            codec=codec.name,
            dim=4,
            wire_bytes=encoded.wire_bytes,
            data={
                "indices": np.array(indices, dtype=np.uint32),
                "values": np.asarray(encoded.data["values"]),
            },
        )
        with pytest.raises(ProtocolError):
            transport.decode(forged, np.zeros(4))


def test_transport_decode_rejects_qsgd_out_of_range():
    codec = QSGDCodec(levels=4)
    transport = Transport(codec)
    encoded = codec.encode(np.ones(4), rng=np.random.default_rng(0))
    bad = {
        "levels": np.array([99, 0, 0, 0]),
        "signs": np.asarray(encoded.data["signs"]),
        "norm": np.asarray(encoded.data["norm"]),
    }
    forged = EncodedVector(
        codec=codec.name, dim=4, wire_bytes=encoded.wire_bytes, data=bad
    )
    with pytest.raises(ProtocolError):
        transport.decode(forged, np.zeros(4))


def test_transport_decode_rejects_signsgd_bad_signs():
    codec = SignSGDCodec()
    transport = Transport(codec)
    encoded = codec.encode(np.array([1.0, -2.0, 3.0]))
    forged = EncodedVector(
        codec=codec.name,
        dim=3,
        wire_bytes=encoded.wire_bytes,
        data={"signs": np.array([1, 0, -1]), "scale": np.asarray(encoded.data["scale"])},
    )
    with pytest.raises(ProtocolError):
        transport.decode(forged, np.zeros(3))


# --------------------------------------------------------------------------- #
# Live server: HTTP status mapping, handshake refusal, duplicate idempotence
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def live_server():
    from repro.serve.server import FederationServer

    config = serve_config().with_overrides(num_rounds=1)
    server = FederationServer(config, AlgorithmSpec("fedavg"), num_rounds=1)
    server.start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def live_client(live_server):
    from repro.serve.worker import ServerClient

    client = ServerClient(live_server.url)
    yield client
    client.close()


def test_server_refuses_version_mismatch_handshake(live_client):
    body = json.dumps({"protocol_version": protocol.PROTOCOL_VERSION + 1}).encode()
    status, _, data = live_client.post("/v1/handshake", body)
    assert status == 426
    assert b"version" in data.lower()


def test_server_accepts_current_version_handshake(live_server, live_client):
    from repro.serve.worker import handshake

    info = handshake(live_client, worker_id="protocol-test")
    assert info["protocol_version"] == protocol.PROTOCOL_VERSION
    assert info["model_dim"] == live_server.model_dim
    assert info["config"]["name"] == live_server.config.name


def test_server_maps_malformed_submit_to_400(live_client):
    status, _, _ = live_client.post("/v1/submit", b"garbage bytes")
    assert status == 400


def test_server_maps_unknown_task_to_404(live_client):
    frame = protocol.pack_frame(
        {
            "kind": "submit",
            "task_id": "r999-c999-0",
            "client_id": 0,
            "num_samples": 1,
            "local_epochs": 1,
            "train_loss": protocol.hex_float(0.0),
            "codec": "float16",
            "payload": [],
            "var_keys": [],
            "var_shapes": [],
        }
    )
    status, _, _ = live_client.post("/v1/submit", frame)
    assert status == 404


def test_server_refuses_oversized_body_with_413():
    from repro.serve.server import FederationServer
    from repro.serve.worker import ServerClient

    config = serve_config().with_overrides(num_rounds=1)
    server = FederationServer(
        config, AlgorithmSpec("fedavg"), num_rounds=1, max_frame_bytes=1024
    )
    server.start()
    client = ServerClient(server.url)
    try:
        status, _, _ = client.post("/v1/submit", b"\x00" * 4096)
        assert status == 413
    finally:
        client.close()
        server.stop()


def test_duplicate_delta_submission_is_idempotent():
    """The same submit frame twice: first 'ok', second 'duplicate', one count."""
    from repro.serve.server import FederationServer
    from repro.serve.worker import ServerClient, WorkerEnvironment, handshake

    config = serve_config().with_overrides(num_rounds=1)
    server = FederationServer(config, AlgorithmSpec("fedavg"), num_rounds=1)
    server.start()
    client = ServerClient(server.url)
    try:
        info = handshake(client, worker_id="dup-test")
        from repro.experiments.configs import ExperimentConfig

        env = WorkerEnvironment(ExperimentConfig(**info["config"]), info["algorithm"])
        status, content_type, data = client.post("/v1/task", b"")
        assert status == 200 and not content_type.startswith("application/json")
        header, blobs = protocol.unpack_frame(data)
        frame = env.execute(protocol.decode_task(header, blobs))

        status, _, first = client.post("/v1/submit", frame)
        assert status == 200 and json.loads(first)["status"] == "ok"
        status, _, second = client.post("/v1/submit", frame)
        assert status == 200 and json.loads(second)["status"] == "duplicate"
        assert server.board.duplicates == 1

        # Only the first copy is charged to the wire-byte counters.
        counters = server.metrics.snapshot()["counters"]
        payload_bytes = sum(len(blob) for blob in blobs)  # task download side
        assert counters["serve.download_payload_bytes"] >= payload_bytes
        submit_header, frame_blobs = protocol.unpack_frame(frame)
        submitted_payload = sum(
            len(blob) for blob in frame_blobs[: len(submit_header["payload"])]
        )
        assert counters.get("serve.payload_bytes.float16", 0) == submitted_payload
    finally:
        client.close()
        server.stop()
