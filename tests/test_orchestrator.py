"""Tests for the sweep orchestrator: parallelism, resume, and crash paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.experiments.configs import AlgorithmSpec, ExperimentConfig
from repro.experiments.orchestrator import (
    RunSpec,
    SweepOrchestrator,
    execute_spec,
)
from repro.experiments.registry import StudyRequest
from repro.experiments.runner import run_comparison
from repro.experiments.store import ExperimentStore, RunStatus
from repro.experiments.studies import STUDIES, comparison_specs, run_study
from repro.utils.serialization import to_jsonable

TINY = ExperimentConfig(
    name="tiny-orchestrator",
    dataset="blobs",
    n_train=240,
    n_test=80,
    model="mlp",
    model_kwargs={"input_dim": 32, "hidden_dims": (8,)},
    num_clients=6,
    client_fraction=0.5,
    local_epochs=1,
    batch_size=16,
    num_rounds=2,
    target_accuracy=0.99,
)

ALGORITHMS = [
    AlgorithmSpec("fedadmm", {"rho": 0.3}),
    AlgorithmSpec("fedavg", {}),
    AlgorithmSpec("fedprox", {"rho": 0.1}),
]


def tiny_specs(stop_at_target=False) -> list[RunSpec]:
    return comparison_specs("demo", TINY, ALGORITHMS, stop_at_target=stop_at_target)


def assert_results_bit_identical(left, right):
    assert set(left) == set(right)
    for key in left:
        assert left[key].history.records == right[key].history.records
        np.testing.assert_array_equal(
            left[key].final_params, right[key].final_params
        )


class TestConstruction:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ConfigurationError):
            SweepOrchestrator(jobs=0)

    def test_resume_requires_a_store(self):
        with pytest.raises(ConfigurationError, match="store"):
            SweepOrchestrator(resume=True)


class TestSerialExecution:
    def test_results_keyed_and_ordered_by_spec(self):
        results = SweepOrchestrator().execute(tiny_specs())
        assert list(results) == [spec.key for spec in tiny_specs()]

    def test_serial_matches_monolithic_run_comparison(self):
        # The spec decomposition re-derives each run's environment from the
        # config seed; that must reproduce the shared-environment loop of
        # run_comparison bit for bit.
        comparison = run_comparison(TINY, ALGORITHMS, stop_at_target=False)
        results = SweepOrchestrator().execute(tiny_specs())
        for spec, algorithm in zip(tiny_specs(), ALGORITHMS):
            monolithic = comparison.results[algorithm.label()]
            orchestrated = results[spec.key]
            assert orchestrated.history.records == monolithic.history.records
            np.testing.assert_array_equal(
                orchestrated.final_params, monolithic.final_params
            )

    def test_progress_events_stream_in_order(self):
        events = []
        orchestrator = SweepOrchestrator(progress=events.append)
        orchestrator.execute(tiny_specs())
        assert [e.event for e in events] == ["start", "done"] * len(ALGORITHMS)
        assert [e.index for e in events if e.event == "done"] == [0, 1, 2]
        assert all(e.total == len(ALGORITHMS) for e in events)
        done = [e for e in events if e.event == "done"]
        assert all(e.elapsed_s is not None and e.elapsed_s >= 0 for e in done)

    def test_done_events_carry_a_shrinking_eta(self):
        events = []
        SweepOrchestrator(progress=events.append).execute(tiny_specs())
        etas = [e.eta_s for e in events if e.event == "done"]
        # Every resolved spec except the last estimates the remainder; the
        # final one has nothing outstanding.
        assert all(eta is not None and eta >= 0 for eta in etas[:-1])
        assert etas[-1] is None

    def test_parallel_eta_scales_by_jobs(self):
        events = []
        SweepOrchestrator(jobs=3, progress=events.append).execute(tiny_specs())
        etas = [e.eta_s for e in events if e.event in ("done", "failed")]
        assert etas[-1] is None
        assert all(eta is not None for eta in etas[:-1])

    def test_sweep_metrics_counters(self, tmp_path):
        from repro.obs import MetricsRegistry, observe

        store = ExperimentStore(tmp_path / "store")
        metrics = MetricsRegistry()
        with observe(metrics=metrics):
            SweepOrchestrator(store=store).execute(tiny_specs())
        assert metrics.snapshot()["counters"]["sweep.specs_done"] == len(ALGORITHMS)
        with observe(metrics=metrics):
            SweepOrchestrator(store=store, resume=True).execute(tiny_specs())
        assert metrics.snapshot()["counters"]["sweep.store_hits"] == len(ALGORITHMS)

    def test_serial_sweep_spans_nest_runs_under_specs(self):
        from repro.obs import Tracer, observe
        from repro.obs.trace import span_tree

        tracer = Tracer()
        with observe(tracer=tracer):
            SweepOrchestrator().execute(tiny_specs())
        records = tracer.sorted_records()
        spans = {r.span_id: r for r in records}
        spec_spans = [r for r in records if r.name == "spec"]
        assert len(spec_spans) == len(ALGORITHMS)
        run_spans = [r for r in records if r.name == "run"]
        assert len(run_spans) == len(ALGORITHMS)
        for run in run_spans:
            assert spans[run.parent_id].name == "spec"
        tree = span_tree(records)
        for spec in spec_spans:
            assert [r.name for r in tree[spec.span_id]] == ["run"]


class TestParallelExecution:
    def test_parallel_bit_identical_to_serial(self):
        serial = SweepOrchestrator(jobs=1).execute(tiny_specs())
        parallel = SweepOrchestrator(jobs=2).execute(tiny_specs())
        assert_results_bit_identical(serial, parallel)

    def test_parallel_persists_every_result(self, tmp_path):
        store = ExperimentStore(tmp_path)
        orchestrator = SweepOrchestrator(jobs=2, store=store)
        results = orchestrator.execute(tiny_specs())
        assert store.summary()["done"] == len(ALGORITHMS)
        for spec in tiny_specs():
            loaded = store.load_result(store.key_for(spec))
            assert loaded.history.records == results[spec.key].history.records


class TestResume:
    def test_resume_skips_done_and_runs_the_rest(self, tmp_path):
        store = ExperimentStore(tmp_path)
        specs = tiny_specs()
        # Interrupt after k of n points: only the first two ran to completion.
        SweepOrchestrator(store=store).execute(specs[:2])
        orchestrator = SweepOrchestrator(store=store, resume=True)
        resumed = orchestrator.execute(specs)
        report = orchestrator.last_report
        assert [spec.key for spec in report.skipped] == [s.key for s in specs[:2]]
        assert [spec.key for spec in report.executed] == [s.key for s in specs[2:]]
        # The stitched-together sweep equals an uninterrupted serial run.
        uninterrupted = SweepOrchestrator().execute(specs)
        assert_results_bit_identical(resumed, uninterrupted)

    def test_resume_reruns_failed_and_running_specs(self, tmp_path):
        store = ExperimentStore(tmp_path)
        specs = tiny_specs()
        store.save_result(specs[0], execute_spec(specs[0]))
        store.mark(specs[1], RunStatus.FAILED, error="crashed earlier")
        # A worker killed mid-run leaves `running` with no payload behind.
        store.mark(specs[2], RunStatus.RUNNING)
        orchestrator = SweepOrchestrator(store=store, resume=True)
        orchestrator.execute(specs)
        report = orchestrator.last_report
        assert [spec.key for spec in report.skipped] == [specs[0].key]
        assert [spec.key for spec in report.executed] == [
            specs[1].key, specs[2].key,
        ]
        assert store.summary() == {
            "pending": 0, "running": 0, "done": 3, "failed": 0,
        }

    def test_without_resume_done_specs_are_re_executed(self, tmp_path):
        store = ExperimentStore(tmp_path)
        specs = tiny_specs()[:1]
        SweepOrchestrator(store=store).execute(specs)
        orchestrator = SweepOrchestrator(store=store, resume=False)
        orchestrator.execute(specs)
        assert [spec.key for spec in orchestrator.last_report.executed] == [
            specs[0].key
        ]

    def test_skipped_events_fire_for_cached_specs(self, tmp_path):
        store = ExperimentStore(tmp_path)
        specs = tiny_specs()[:1]
        SweepOrchestrator(store=store).execute(specs)
        events = []
        SweepOrchestrator(store=store, resume=True, progress=events.append).execute(
            specs
        )
        assert [e.event for e in events] == ["skipped"]


class TestFailureHandling:
    def failing_specs(self) -> list[RunSpec]:
        specs = tiny_specs()
        bad = RunSpec(
            study="demo",
            key=("broken",),
            config=TINY,
            algorithm=AlgorithmSpec("no-such-algorithm", {}),
            stop_at_target=False,
        )
        return [specs[0], bad, specs[2]]

    def test_failure_recorded_and_raised_after_the_batch(self, tmp_path):
        store = ExperimentStore(tmp_path)
        orchestrator = SweepOrchestrator(store=store)
        with pytest.raises(SimulationError, match="1 of 3"):
            orchestrator.execute(self.failing_specs())
        # Healthy specs still ran and were persisted for the next resume.
        assert store.summary()["done"] == 2
        assert store.summary()["failed"] == 1
        failed = [
            rec for rec in store.records().values()
            if rec.status is RunStatus.FAILED
        ]
        assert "no-such-algorithm" in failed[0].error

    def test_parallel_failure_also_raises_after_the_batch(self, tmp_path):
        store = ExperimentStore(tmp_path)
        orchestrator = SweepOrchestrator(jobs=2, store=store)
        with pytest.raises(SimulationError, match="1 of 3"):
            orchestrator.execute(self.failing_specs())
        assert store.summary()["done"] == 2

    def test_resume_after_failure_completes_the_sweep(self, tmp_path):
        store = ExperimentStore(tmp_path)
        specs = self.failing_specs()
        with pytest.raises(SimulationError):
            SweepOrchestrator(store=store).execute(specs)
        # Fix the bad spec (as a user would) and resume: only it re-runs.
        repaired = [specs[0], tiny_specs()[1], specs[2]]
        orchestrator = SweepOrchestrator(store=store, resume=True)
        orchestrator.execute(repaired)
        assert [spec.key for spec in orchestrator.last_report.executed] == [
            repaired[1].key
        ]


class TestRegistryIntegration:
    REQUEST = StudyRequest(dataset="blobs", clients=8, rounds=2)

    def test_every_training_study_is_orchestrable(self):
        for study in STUDIES:
            if study.name == "table1":
                assert not study.orchestrable  # closed form, nothing to expand
            else:
                assert study.orchestrable, study.name

    def test_specs_are_self_contained_and_picklable(self):
        import pickle

        study = STUDIES.get("table3")
        config = self.REQUEST.apply_overrides(study.build_config(self.REQUEST))
        specs = study.specs(config, self.REQUEST)
        assert len(specs) == 5  # the paper's five-algorithm comparison
        for spec in specs:
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_run_study_parallel_payload_matches_serial(self, tmp_path):
        serial = to_jsonable(run_study("table4", self.REQUEST))
        parallel = to_jsonable(run_study(
            "table4", self.REQUEST,
            orchestrator=SweepOrchestrator(
                jobs=2, store=ExperimentStore(tmp_path)
            ),
        ))
        assert serial == parallel

    def test_run_study_resume_payload_matches_serial(self, tmp_path):
        store = ExperimentStore(tmp_path)
        study = STUDIES.get("table4")
        config = self.REQUEST.apply_overrides(study.build_config(self.REQUEST))
        specs = study.specs(config, self.REQUEST)
        # Pre-populate the store with the first point, as an interrupted
        # sweep would have; the resumed study must reuse it untouched.
        SweepOrchestrator(store=store).execute(specs[:1])
        orchestrator = SweepOrchestrator(store=store, resume=True)
        resumed = to_jsonable(run_study("table4", self.REQUEST, orchestrator))
        assert len(orchestrator.last_report.skipped) == 1
        assert resumed == to_jsonable(run_study("table4", self.REQUEST))

    def test_monolithic_studies_ignore_the_orchestrator_with_a_note(self, capsys):
        run_study("table1", orchestrator=SweepOrchestrator(jobs=4))
        assert "no spec expansion" in capsys.readouterr().out
