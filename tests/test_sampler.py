"""Cohort-size rounding and shard-sampling contracts.

``UniformFractionSampler.num_selected`` must implement the paper's C·m
cohort with explicit round-half-up: Python's builtin ``round`` rounds
half to even, which silently made cohort sizes parity-dependent at half
boundaries (0.25 × 10 → 2 instead of 3).  These tests pin the boundary
grid, confirm the defaults used by the committed sync goldens are
unaffected, and cover the shard-local sampling layer the hierarchical
plan builds on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.federated.sampler import FixedScheduleSampler, UniformFractionSampler
from repro.federated.sharding import (
    Shard,
    ShardSampler,
    shard_label,
    shard_population,
)


class TestUniformFractionRounding:
    @pytest.mark.parametrize(
        "fraction, num_clients, expected",
        [
            # Half boundaries: round-half-up, never half-to-even.
            (0.25, 10, 3),   # 2.5 → 3 (builtin round gives 2)
            (0.25, 2, 1),    # 0.5 → 1 (and the >=1 floor)
            (0.75, 2, 2),    # 1.5 → 2 (both rules agree)
            (0.25, 14, 4),   # 3.5 → 4 (builtin round gives 4 too)
            (0.05, 50, 3),   # 2.5 → 3 (builtin round gives 2)
            (0.35, 10, 4),   # 3.5 → 4 (builtin round gives 4)
            # Non-boundary values are plain nearest-integer.
            (0.26, 10, 3),
            (0.24, 10, 2),
            (1.0, 7, 7),
        ],
    )
    def test_half_boundaries_round_up(self, fraction, num_clients, expected):
        assert UniformFractionSampler(fraction).num_selected(num_clients) == expected

    def test_default_study_cohorts_unchanged(self):
        # The committed sync goldens use fraction=0.1 over these
        # populations; half-up and half-to-even must agree there, so the
        # rounding fix cannot perturb any golden history.
        for num_clients in (8, 10, 30, 60, 100, 120):
            sampler = UniformFractionSampler(0.1)
            assert sampler.num_selected(num_clients) == max(
                1, int(round(0.1 * num_clients))
            )

    def test_sample_size_matches_num_selected(self):
        sampler = UniformFractionSampler(0.25)
        selected = sampler.sample(0, 10, rng=0)
        assert selected.size == sampler.num_selected(10) == 3
        assert np.all(selected == np.sort(selected))

    def test_min_participation_probability_uses_new_count(self):
        assert UniformFractionSampler(0.25).min_participation_probability(
            10
        ) == pytest.approx(0.3)


class TestSharding:
    def test_contiguous_cover_without_overlap(self):
        shards = shard_population(10, 3)
        assert [(s.start, s.stop) for s in shards] == [(0, 4), (4, 7), (7, 10)]
        assert sum(s.size for s in shards) == 10

    def test_sizes_differ_by_at_most_one(self):
        for num_clients, num_shards in ((100, 7), (8, 8), (1_000_000, 13)):
            sizes = [s.size for s in shard_population(num_clients, num_shards)]
            assert max(sizes) - min(sizes) <= 1
            assert sum(sizes) == num_clients

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_population(10, 0)
        with pytest.raises(ConfigurationError):
            shard_population(3, 4)

    def test_shard_label_flat_for_single_shard(self):
        assert shard_label("client-sampling", 0, 1) == "client-sampling"
        assert shard_label("client-sampling", 2, 4) == "client-sampling/shard-2"

    def test_shard_sampler_maps_local_to_global(self):
        shard = Shard(index=1, start=4, stop=7)
        sampler = ShardSampler(FixedScheduleSampler([[0, 2]]), shard)
        assert sampler.sample(0).tolist() == [4, 6]

    def test_shard_sampler_rejects_out_of_range_local_ids(self):
        shard = Shard(index=0, start=0, stop=2)
        sampler = ShardSampler(FixedScheduleSampler([[0, 2]]), shard)
        with pytest.raises(ConfigurationError):
            sampler.sample(0)

    def test_fraction_applies_per_shard(self):
        shard = Shard(index=0, start=0, stop=10)
        sampler = ShardSampler(UniformFractionSampler(0.25), shard)
        assert sampler.sample(0, rng=0).size == 3
        assert sampler.min_participation_probability() == pytest.approx(0.3)
