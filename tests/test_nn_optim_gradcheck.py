"""Tests for the SGD optimiser and the gradient-checking utilities."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.gradcheck import check_gradients, numerical_gradient
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import SGD, SGDConfig


def _toy_batch(n=16, d=6, k=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)), rng.integers(0, k, size=n)


class TestSGD:
    def test_step_reduces_loss(self):
        model = Sequential(Linear(6, 8, rng=0), ReLU(), Linear(8, 3, rng=1))
        loss = CrossEntropyLoss()
        optimizer = SGD(model, learning_rate=0.2)
        x, y = _toy_batch()
        initial = loss.value(model.forward(x), y)
        for _ in range(20):
            optimizer.zero_grad()
            _, grad_pred = loss.value_and_grad(model.forward(x), y)
            model.backward(grad_pred)
            optimizer.step()
        assert loss.value(model.forward(x), y) < initial

    def test_momentum_differs_from_plain(self):
        x, y = _toy_batch()
        finals = []
        for momentum in (0.0, 0.9):
            model = Sequential(Linear(6, 3, rng=0))
            optimizer = SGD(model, learning_rate=0.05, momentum=momentum)
            loss = CrossEntropyLoss()
            for _ in range(5):
                optimizer.zero_grad()
                _, grad_pred = loss.value_and_grad(model.forward(x), y)
                model.backward(grad_pred)
                optimizer.step()
            finals.append(model.get_flat_params())
        assert not np.allclose(finals[0], finals[1])

    def test_weight_decay_shrinks_weights(self):
        model = Sequential(Linear(4, 2, rng=0))
        optimizer = SGD(model, learning_rate=0.1, weight_decay=0.5)
        norm_before = np.linalg.norm(model.get_flat_params())
        model.zero_grad()  # zero gradient: only decay acts
        optimizer.step()
        assert np.linalg.norm(model.get_flat_params()) < norm_before

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SGDConfig(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            SGDConfig(momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGDConfig(weight_decay=-0.1)

    def test_learning_rate_setter(self):
        optimizer = SGD(Sequential(Linear(2, 2, rng=0)), learning_rate=0.1)
        optimizer.learning_rate = 0.01
        assert optimizer.learning_rate == 0.01
        with pytest.raises(ConfigurationError):
            optimizer.learning_rate = -1.0


class TestGradcheckUtilities:
    def test_numerical_gradient_of_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])

        def func(v):
            return float(((v - target) ** 2).sum())

        grad = numerical_gradient(func, np.zeros(3))
        assert np.allclose(grad, -2 * target, atol=1e-5)

    def test_check_gradients_passes_for_correct_model(self):
        model = Sequential(Linear(5, 4, rng=0), ReLU(), Linear(4, 3, rng=1))
        x, y = _toy_batch(n=6, d=5)
        error = check_gradients(model, CrossEntropyLoss(), x, y, max_params=40)
        assert error < 1e-5

    def test_check_gradients_restores_parameters(self):
        model = Sequential(Linear(5, 3, rng=0))
        x, y = _toy_batch(n=6, d=5)
        before = model.get_flat_params().copy()
        check_gradients(model, CrossEntropyLoss(), x, y, max_params=10)
        assert np.array_equal(model.get_flat_params(), before)
