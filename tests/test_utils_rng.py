"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_rng, permutation_chunks, spawn_rngs


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert as_rng(gen) is gen

    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_differ(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestRngFactory:
    def test_same_label_same_stream(self):
        factory = RngFactory(seed=11)
        assert factory.make("x").random() == factory.make("x").random()

    def test_different_labels_different_streams(self):
        factory = RngFactory(seed=11)
        assert factory.make("a").random() != factory.make("b").random()

    def test_different_seeds_different_streams(self):
        assert RngFactory(1).make("a").random() != RngFactory(2).make("a").random()

    def test_make_many_independent(self):
        gens = RngFactory(0).make_many("clients", 4)
        values = {float(g.random()) for g in gens}
        assert len(values) == 4

    def test_child_factory_deterministic(self):
        a = RngFactory(5).child("run-1").make("x").random()
        b = RngFactory(5).child("run-1").make("x").random()
        assert a == b

    def test_seed_property(self):
        assert RngFactory(9).seed == 9


class TestPermutationChunks:
    def test_covers_all_indices_once(self):
        chunks = permutation_chunks(as_rng(0), 17, 4)
        combined = np.sort(np.concatenate(chunks))
        assert np.array_equal(combined, np.arange(17))

    def test_chunk_sizes_balanced(self):
        chunks = permutation_chunks(as_rng(0), 10, 3)
        sizes = sorted(len(c) for c in chunks)
        assert sizes == [3, 3, 4]

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            permutation_chunks(as_rng(0), 5, 0)
