"""Tests for repro.utils.validation and repro.utils.serialization."""

import dataclasses

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.utils.serialization import load_json, save_json, to_jsonable
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive(1.5, "x") == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            check_non_negative(-1, "x")

    def test_check_fraction_bounds(self):
        assert check_fraction(1.0, "c") == 1.0
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "c")
        with pytest.raises(ConfigurationError):
            check_fraction(1.2, "c")

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ConfigurationError):
            check_probability(-0.1, "p")

    def test_check_same_length(self):
        check_same_length([1, 2], (3, 4), "a", "b")
        with pytest.raises(ShapeError):
            check_same_length([1], [1, 2], "a", "b")


@dataclasses.dataclass
class _Sample:
    name: str
    values: np.ndarray


class TestSerialization:
    def test_numpy_scalars_and_arrays(self):
        obj = {"a": np.float64(1.5), "b": np.int64(3), "c": np.arange(3)}
        encoded = to_jsonable(obj)
        assert encoded == {"a": 1.5, "b": 3, "c": [0, 1, 2]}

    def test_dataclass(self):
        encoded = to_jsonable(_Sample(name="x", values=np.array([1.0, 2.0])))
        assert encoded == {"name": "x", "values": [1.0, 2.0]}

    def test_nested_sequences(self):
        assert to_jsonable([(1, 2), {3}]) == [[1, 2], [3]]

    def test_round_trip_file(self, tmp_path):
        payload = {"rounds": [1, 2, 3], "accuracy": np.float64(0.5)}
        path = save_json(payload, tmp_path / "out" / "result.json")
        assert load_json(path) == {"rounds": [1, 2, 3], "accuracy": 0.5}

    def test_unknown_objects_become_strings(self):
        class Opaque:
            def __str__(self):
                return "opaque"

        assert to_jsonable(Opaque()) == "opaque"
