"""Tests for repro.utils.validation and repro.utils.serialization."""

import dataclasses
import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.utils.serialization import (
    dumps_strict,
    load_json,
    save_json,
    to_jsonable,
)
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive(1.5, "x") == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            check_non_negative(-1, "x")

    def test_check_fraction_bounds(self):
        assert check_fraction(1.0, "c") == 1.0
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "c")
        with pytest.raises(ConfigurationError):
            check_fraction(1.2, "c")

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ConfigurationError):
            check_probability(-0.1, "p")

    def test_check_same_length(self):
        check_same_length([1, 2], (3, 4), "a", "b")
        with pytest.raises(ShapeError):
            check_same_length([1], [1, 2], "a", "b")


@dataclasses.dataclass
class _Sample:
    name: str
    values: np.ndarray


class TestSerialization:
    def test_numpy_scalars_and_arrays(self):
        obj = {"a": np.float64(1.5), "b": np.int64(3), "c": np.arange(3)}
        encoded = to_jsonable(obj)
        assert encoded == {"a": 1.5, "b": 3, "c": [0, 1, 2]}

    def test_dataclass(self):
        encoded = to_jsonable(_Sample(name="x", values=np.array([1.0, 2.0])))
        assert encoded == {"name": "x", "values": [1.0, 2.0]}

    def test_nested_sequences(self):
        assert to_jsonable([(1, 2), {3}]) == [[1, 2], [3]]

    def test_round_trip_file(self, tmp_path):
        payload = {"rounds": [1, 2, 3], "accuracy": np.float64(0.5)}
        path = save_json(payload, tmp_path / "out" / "result.json")
        assert load_json(path) == {"rounds": [1, 2, 3], "accuracy": 0.5}

    def test_unknown_objects_become_strings(self):
        class Opaque:
            def __str__(self):
                return "opaque"

        assert to_jsonable(Opaque()) == "opaque"


def _reject_constant(token):
    raise ValueError(f"non-standard JSON constant: {token}")


def loads_strict(text):
    """json.loads that refuses the NaN/Infinity extension tokens."""
    return json.loads(text, parse_constant=_reject_constant)


class TestStrictJson:
    """Non-finite floats must never reach the wire as bare NaN/Infinity
    tokens — jq and strict parsers reject them.  They serialise as null."""

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_nonfinite_python_floats_become_null(self, value):
        assert to_jsonable(value) is None
        assert to_jsonable({"train_loss": value}) == {"train_loss": None}

    def test_nonfinite_numpy_values_become_null(self):
        assert to_jsonable(np.float64("nan")) is None
        assert to_jsonable(np.float32("inf")) is None
        assert to_jsonable(np.array([1.0, np.nan, np.inf])) == [1.0, None, None]

    def test_finite_floats_unchanged(self):
        assert to_jsonable(0.5) == 0.5
        assert to_jsonable(np.float64(-1.25)) == -1.25

    def test_dumps_strict_output_parses_strictly(self):
        payload = {"loss": float("nan"), "acc": [0.5, float("inf")]}
        text = dumps_strict(payload)
        assert "NaN" not in text and "Infinity" not in text
        assert loads_strict(text) == {"loss": None, "acc": [0.5, None]}

    def test_loads_strict_rejects_legacy_tokens(self):
        # Sanity: the strict parser really does reject what the default
        # json.dumps would have emitted.
        with pytest.raises(ValueError, match="non-standard"):
            loads_strict('{"loss": NaN}')

    def test_save_json_is_strict(self, tmp_path):
        path = save_json(
            {"train_loss": float("nan")}, tmp_path / "result.json"
        )
        assert loads_strict(path.read_text()) == {"train_loss": None}
