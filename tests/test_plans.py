"""Tests for the decomposed server runtime: state, pipeline, and plans.

The synchronous and asynchronous plans are pinned bit-for-bit by
``test_regression_sync_golden.py``; this module covers the pieces the
goldens cannot see — the explicit state objects, the shared client-work
pipeline, and the semi-synchronous plan's deadline/weighting edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.exceptions import ConfigurationError
from repro.federated import (
    AsyncPlan,
    ExecutionPlan,
    FederatedSimulation,
    PLAN_REGISTRY,
    RoundContext,
    SemiSyncPlan,
    ServerState,
    SyncPlan,
)
from repro.federated.staleness import ConstantStaleness, PolynomialStaleness
from repro.systems.network import (
    ClientSystemProfile,
    HomogeneousNetwork,
    LogNormalNetwork,
)

from conftest import make_model


def make_semisync_sim(algorithm_name, clients, test_dataset, *, seed=0, **kwargs):
    plan = SemiSyncPlan(
        round_deadline_s=kwargs.pop("round_deadline_s", None),
        deadline_factor=kwargs.pop("deadline_factor", 1.0),
        staleness=kwargs.pop("staleness", None),
    )
    kwargs.setdefault("network", LogNormalNetwork())
    algo_kwargs = {"rho": 0.3} if algorithm_name in ("fedadmm", "fedprox") else {}
    return FederatedSimulation(
        algorithm=build_algorithm(algorithm_name, **algo_kwargs),
        model=make_model(seed=0),
        clients=clients,
        test_dataset=test_dataset,
        batch_size=16,
        learning_rate=0.1,
        seed=seed,
        plan=plan,
        **kwargs,
    )


class TestServerState:
    def test_defaults(self):
        state = ServerState(params=np.zeros(4))
        assert state.model_version == 0
        assert state.rounds_run == 0
        assert state.algorithm_state == {}
        assert not state.evaluation_is_current()

    def test_engine_exposes_state_through_compat_properties(
        self, iid_clients, blobs_split
    ):
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedavg"),
            model=make_model(seed=0),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            batch_size=16,
            seed=0,
        )
        assert sim.global_params is sim.state.params
        assert sim.server_state is sim.state.algorithm_state
        sim.run_round()
        assert sim.state.rounds_run == 1
        assert sim.state.model_version == 1
        assert sim.state.evaluation_is_current()


class TestRoundContext:
    def test_num_selected_counts_survivors_and_dropped(self):
        ctx = RoundContext(
            round_index=0, selected=(1, 2, 3), survivors=[1], dropped=[2, 3]
        )
        assert ctx.num_selected == 3


class TestPlanRegistry:
    def test_all_plans_registered(self):
        assert set(PLAN_REGISTRY) == {"sync", "hierarchical", "semisync", "async"}
        for plan_cls in PLAN_REGISTRY.values():
            assert issubclass(plan_cls, ExecutionPlan)

    def test_engine_defaults_to_sync_plan(self, iid_clients, blobs_split):
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedavg"),
            model=make_model(seed=0),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            seed=0,
        )
        assert isinstance(sim.plan, SyncPlan)

    def test_async_engine_binds_async_plan(self, iid_clients, blobs_split):
        from repro.federated.async_engine import AsyncFederatedSimulation

        sim = AsyncFederatedSimulation(
            algorithm=build_algorithm("fedavg"),
            model=make_model(seed=0),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            seed=0,
            buffer_size=2,
        )
        assert isinstance(sim.plan, AsyncPlan)
        assert sim.async_plan is sim.plan


class TestSemiSyncValidation:
    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ConfigurationError):
            SemiSyncPlan(round_deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            SemiSyncPlan(deadline_factor=-1.0)

    def test_requires_network_model(self, iid_clients, blobs_split):
        with pytest.raises(ConfigurationError):
            FederatedSimulation(
                algorithm=build_algorithm("fedavg"),
                model=make_model(seed=0),
                clients=iid_clients,
                test_dataset=blobs_split.test,
                seed=0,
                plan=SemiSyncPlan(round_deadline_s=1.0),
            )

    def test_rejects_lockstep_algorithms(self, iid_clients, blobs_split):
        for name in ("scaffold", "fedpd"):
            with pytest.raises(ConfigurationError):
                make_semisync_sim(name, iid_clients, blobs_split.test)

    def test_plan_instances_are_single_use(self, iid_clients, blobs_split):
        """Plans carry per-run state (schedulers, derived deadlines), so
        rebinding an already-bound instance must be rejected."""

        def build(plan):
            return FederatedSimulation(
                algorithm=build_algorithm("fedavg"),
                model=make_model(seed=0),
                clients=iid_clients,
                test_dataset=blobs_split.test,
                seed=0,
                network=HomogeneousNetwork(),
                plan=plan,
            )

        plan = SemiSyncPlan()
        build(plan)
        with pytest.raises(ConfigurationError):
            build(plan)
        with pytest.raises(ConfigurationError):
            used_sync = build(SyncPlan()).plan
            build(used_sync)

    def test_default_deadline_derived_from_median_duration(
        self, iid_clients, blobs_split
    ):
        sim = make_semisync_sim(
            "fedavg", iid_clients, blobs_split.test,
            network=HomogeneousNetwork(), deadline_factor=2.0,
        )
        times = [
            sim.pipeline.client_round_seconds(cid, sim.local_work.max_epochs)
            for cid in range(len(iid_clients))
        ]
        assert sim.plan.round_deadline_s == pytest.approx(
            2.0 * float(np.median(times))
        )


class TestSemiSyncRounds:
    def test_records_deadline_and_staleness_metadata(
        self, iid_clients, blobs_split
    ):
        sim = make_semisync_sim("fedadmm", iid_clients, blobs_split.test)
        result = sim.run(6)
        assert result.metadata["mode"] == "semisync"
        assert result.metadata["round_deadline_s"] > 0
        assert "late_arrivals" in result.metadata
        for record in result.history.records:
            assert record.deadline_s == pytest.approx(
                result.metadata["round_deadline_s"]
            )
            assert record.mean_staleness >= 0.0

    def test_deterministic_across_runs(self, blobs_split, iid_partition):
        from repro.federated.client import build_clients

        histories = []
        for _ in range(2):
            clients = build_clients(blobs_split.train, iid_partition)
            sim = make_semisync_sim("fedavg", clients, blobs_split.test, seed=3)
            histories.append(sim.run(5).history)
        first, second = histories
        assert [r.test_accuracy for r in first.records] == [
            r.test_accuracy for r in second.records
        ]
        assert [r.simulated_seconds for r in first.records] == [
            r.simulated_seconds for r in second.records
        ]

    def test_tight_deadline_abandons_round_then_collects_late(
        self, iid_clients, blobs_split
    ):
        """A deadline below every client's duration leaves round 1 empty;
        the dispatched updates land in later rounds as stale arrivals."""
        slow = ClientSystemProfile(seconds_per_sample_epoch=1.0)
        sim = make_semisync_sim(
            "fedavg", iid_clients, blobs_split.test,
            network=HomogeneousNetwork(profile=slow),
            round_deadline_s=1.0,
        )
        first = sim.run_round()
        # Nothing can arrive within one second: abandoned round.
        assert np.isnan(first.train_loss)
        assert first.model_version == 0
        assert first.num_selected == 0  # nothing resolved in the window
        assert sim.state.model_version == 0
        # Keep running: the in-flight updates eventually arrive, late.
        records = [sim.run_round() for _ in range(80)]
        delivered = [r for r in records if not np.isnan(r.train_loss)]
        assert delivered, "late arrivals never delivered"
        assert max(r.max_staleness for r in delivered) > 0
        assert sim.state.model_version > 0
        # Late arrivals are counted by dispatch round, not staleness, so
        # deliveries into abandoned-round stretches (version unchanged,
        # staleness 0) still register.
        assert sim.plan.late_arrivals > 0

    def test_every_round_advances_clock_by_at_most_deadline(
        self, iid_clients, blobs_split
    ):
        sim = make_semisync_sim(
            "fedavg", iid_clients, blobs_split.test, round_deadline_s=2.5
        )
        result = sim.run(5)
        for record in result.history.records:
            assert 0.0 <= record.simulated_seconds <= 2.5 + 1e-12

    def test_late_arrivals_weighted_by_staleness_policy(
        self, iid_clients, blobs_split
    ):
        """Polynomial weighting damps a late FedAvg update; constant does
        not.  Compare the same seeded run under both policies: once any
        update arrives late, the trajectories must diverge."""
        slow = ClientSystemProfile(seconds_per_sample_epoch=0.05)
        histories = {}
        for policy in ("constant", "polynomial"):
            clients = [
                type(c)(client_id=c.client_id, dataset=c.dataset)
                for c in iid_clients
            ]
            sim = make_semisync_sim(
                "fedavg", clients, blobs_split.test,
                network=LogNormalNetwork(base=slow, compute_sigma=2.0),
                staleness=policy, seed=5,
            )
            result = sim.run(10)
            histories[policy] = result
        late = sum(
            r.max_staleness > 0
            for r in histories["polynomial"].history.records
        )
        assert late > 0, "scenario produced no late arrivals"
        constant_params = histories["constant"].final_params
        polynomial_params = histories["polynomial"].final_params
        assert not np.allclose(constant_params, polynomial_params)

    def test_fault_deadline_voids_slow_uploads(self, iid_clients, blobs_split):
        """faults.deadline_s applies under semi-sync exactly as in the
        other plans: a dispatch slower than the fault deadline still pays
        its download but its upload is discarded on arrival."""
        from repro.systems.faults import FaultInjector

        slow = ClientSystemProfile(seconds_per_sample_epoch=1.0)
        sim = make_semisync_sim(
            "fedavg", iid_clients, blobs_split.test,
            network=HomogeneousNetwork(profile=slow),
            round_deadline_s=1e6,  # the round waits; the *fault* deadline bites
            faults=FaultInjector(deadline_s=1.0),
        )
        result = sim.run(3)
        assert result.history.total_dropped() > 0
        assert all(np.isnan(r.train_loss) for r in result.history.records)
        assert result.ledger.download_floats > 0
        assert result.ledger.upload_floats == 0

    def test_staleness_policies_resolve(self, iid_clients, blobs_split):
        sim = make_semisync_sim(
            "fedavg", iid_clients, blobs_split.test, staleness="constant"
        )
        assert isinstance(sim.plan.staleness_policy, ConstantStaleness)
        default = make_semisync_sim("fedavg", iid_clients, blobs_split.test)
        assert isinstance(default.plan.staleness_policy, PolynomialStaleness)
