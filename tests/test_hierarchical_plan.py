"""Flat-vs-hierarchical parity and the streaming accumulator contracts.

The hierarchical plan's correctness claim has two tiers:

* a **1-shard** hierarchy reuses the flat RNG streams and visits clients
  in :class:`SyncPlan` order, so its history must be **bit-identical** to
  the flat plan — across serial, thread, and process executors;
* an **N-shard** hierarchy with shard-preserving sampling selects the
  same global cohorts but associates the aggregation sum differently
  (per-shard partials merged at the root), so it must match flat within
  ``atol=1e-8``.

The streaming accumulators themselves are pinned against the batch
``aggregate`` they replace: FedAvg's running average and FedADMM's delta
sum are bitwise-equal reductions, and the buffered fallback delegates to
``aggregate`` for every other algorithm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.algorithms.base import BufferedAccumulator
from repro.algorithms.fedadmm import DeltaSumAccumulator, FedADMM
from repro.algorithms.fedavg import FedAvg, RunningAverageAccumulator
from repro.exceptions import ConfigurationError, SimulationError
from repro.federated.engine import FederatedSimulation
from repro.federated.heterogeneity import FixedEpochs, UniformRandomEpochs
from repro.federated.messages import ClientMessage
from repro.federated.plans import HierarchicalPlan
from repro.federated.population import ClientPopulation
from repro.federated.client import build_clients
from repro.federated.sampler import FixedScheduleSampler, UniformFractionSampler
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.systems import build_executor

from conftest import make_model

EXECUTORS = ("serial", "thread", "process")


def make_sim(clients, test_dataset, *, algorithm="fedadmm", plan=None,
             executor="serial", sampler=None, local_work=None, metrics=None,
             tracer=None, **kwargs):
    algo_kwargs = {"rho": 0.3} if algorithm in ("fedadmm", "fedprox") else {}
    return FederatedSimulation(
        algorithm=build_algorithm(algorithm, **algo_kwargs),
        model=make_model(seed=0),
        clients=clients,
        test_dataset=test_dataset,
        batch_size=16,
        learning_rate=0.1,
        seed=0,
        plan=plan,
        executor=build_executor(executor),
        sampler=sampler,
        local_work=local_work,
        metrics=metrics,
        tracer=tracer,
        **kwargs,
    )


def histories_equal(a, b) -> bool:
    return len(a.records) == len(b.records) and all(
        x == y for x, y in zip(a.records, b.records)
    )


# --------------------------------------------------------------------------- #
# 1-shard bit-identity
# --------------------------------------------------------------------------- #
class TestSingleShardBitIdentity:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("algorithm", ["fedadmm", "fedavg"])
    def test_matches_flat_sync_plan(
        self, blobs_split, iid_partition, executor, algorithm
    ):
        def run(plan):
            # Fresh clients per run: FedADMM stores dual variables on the
            # ClientState objects, so runs must not share them.
            sim = make_sim(
                build_clients(blobs_split.train, iid_partition),
                blobs_split.test,
                algorithm=algorithm, plan=plan, executor=executor,
                local_work=UniformRandomEpochs(max_epochs=3),
            )
            return sim.run(num_rounds=3)

        flat = run(None)
        sharded = run(HierarchicalPlan(num_shards=1))
        assert (flat.final_params == sharded.final_params).all()
        assert histories_equal(flat.history, sharded.history)

    def test_buffered_fallback_algorithm_is_also_identical(
        self, iid_clients, blobs_split
    ):
        # FedSGD has no constant-memory accumulator: the buffered default
        # must still reproduce the flat rounds exactly.
        flat = make_sim(
            iid_clients, blobs_split.test, algorithm="fedsgd"
        ).run(num_rounds=3)
        sharded = make_sim(
            iid_clients, blobs_split.test, algorithm="fedsgd",
            plan=HierarchicalPlan(num_shards=1),
        ).run(num_rounds=3)
        assert (flat.final_params == sharded.final_params).all()
        assert histories_equal(flat.history, sharded.history)


# --------------------------------------------------------------------------- #
# N-shard parity under shard-preserving sampling
# --------------------------------------------------------------------------- #
#: Global per-round cohorts for 8 clients in two shards [0..3] / [4..7];
#: every round activates members of both shards (a shard sampling nobody
#: is a SimulationError by design).
GLOBAL_SCHEDULE = [[0, 2, 5, 7], [1, 4, 6], [3, 5, 0, 4]]
SHARD0_SCHEDULE = [[0, 2], [1], [3, 0]]          # shard-local = global
SHARD1_SCHEDULE = [[1, 3], [0, 2], [1, 0]]       # shard-local = global - 4


class TestMultiShardParity:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("algorithm", ["fedadmm", "fedavg"])
    def test_two_shards_match_flat_within_atol(
        self, blobs_split, iid_partition, executor, algorithm
    ):
        plan = HierarchicalPlan(
            num_shards=2,
            shard_samplers=[
                FixedScheduleSampler(SHARD0_SCHEDULE),
                FixedScheduleSampler(SHARD1_SCHEDULE),
            ],
        )
        flat = make_sim(
            build_clients(blobs_split.train, iid_partition), blobs_split.test,
            algorithm=algorithm, executor=executor,
            sampler=FixedScheduleSampler(GLOBAL_SCHEDULE),
            local_work=FixedEpochs(2),
        ).run(num_rounds=3)
        sharded = make_sim(
            build_clients(blobs_split.train, iid_partition), blobs_split.test,
            algorithm=algorithm, executor=executor, plan=plan,
            local_work=FixedEpochs(2),
        ).run(num_rounds=3)

        np.testing.assert_allclose(
            flat.final_params, sharded.final_params, atol=1e-8, rtol=0
        )
        for flat_round, sharded_round in zip(
            flat.history.records, sharded.history.records
        ):
            assert flat_round.num_selected == sharded_round.num_selected
            assert flat_round.upload_floats == sharded_round.upload_floats
            assert flat_round.train_loss == pytest.approx(
                sharded_round.train_loss, abs=1e-8
            )

    def test_shard_cohorts_union_to_global_cohort(self, iid_clients, blobs_split):
        plan = HierarchicalPlan(
            num_shards=2,
            shard_samplers=[
                FixedScheduleSampler(SHARD0_SCHEDULE),
                FixedScheduleSampler(SHARD1_SCHEDULE),
            ],
        )
        sim = make_sim(iid_clients, blobs_split.test, plan=plan)
        merged = [
            sorted(
                sampler.sample(round_index).tolist()
                for sampler in sim.plan._shard_samplers
            )
            for round_index in range(3)
        ]
        for round_index, parts in enumerate(merged):
            combined = sorted(cid for part in parts for cid in part)
            assert combined == sorted(GLOBAL_SCHEDULE[round_index])


# --------------------------------------------------------------------------- #
# Plan validation and observability
# --------------------------------------------------------------------------- #
class TestPlanBehaviour:
    def test_more_shards_than_clients_rejected(self, iid_clients, blobs_split):
        with pytest.raises(ConfigurationError):
            make_sim(
                iid_clients, blobs_split.test,
                plan=HierarchicalPlan(num_shards=9),
            )

    def test_invalid_shard_count_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            HierarchicalPlan(num_shards=0)
        with pytest.raises(ConfigurationError):
            HierarchicalPlan(num_shards=2, shard_samplers=[None])

    def test_empty_shard_cohort_is_a_simulation_error(
        self, iid_clients, blobs_split
    ):
        class EmptySampler:
            def sample(self, round_index, num_clients, rng=None):
                return np.array([], dtype=np.int64)

            def min_participation_probability(self, num_clients):
                return 0.0

        sim = make_sim(
            iid_clients, blobs_split.test,
            plan=HierarchicalPlan(num_shards=2),
            sampler=EmptySampler(),
        )
        with pytest.raises(SimulationError):
            sim.run_round()

    def test_metadata_reports_shard_layout(self, iid_clients, blobs_split):
        result = make_sim(
            iid_clients, blobs_split.test, plan=HierarchicalPlan(num_shards=3)
        ).run(num_rounds=1)
        assert result.metadata["plan"] == "hierarchical"
        assert result.metadata["num_shards"] == 3
        assert result.metadata["shard_sizes"] == [3, 3, 2]

    def test_shard_spans_and_rss_gauge_recorded(self, iid_clients, blobs_split):
        tracer, metrics = Tracer(), MetricsRegistry()
        make_sim(
            iid_clients, blobs_split.test,
            plan=HierarchicalPlan(num_shards=2),
            tracer=tracer, metrics=metrics,
        ).run(num_rounds=2)
        names = [record.name for record in tracer.sorted_records()]
        assert names.count("shard") == 4  # 2 shards x 2 rounds
        # The shard span nests between round and client_task.
        assert "round" in names and "client_task" in names
        assert metrics.gauge("scale.peak_rss_bytes").max_value > 0


# --------------------------------------------------------------------------- #
# Virtual populations
# --------------------------------------------------------------------------- #
class TestClientPopulation:
    def test_materialises_only_touched_clients(self, iid_clients, blobs_split):
        population = ClientPopulation(
            5000, templates=[client.dataset for client in iid_clients[:2]]
        )
        sim = make_sim(
            population, blobs_split.test,
            plan=HierarchicalPlan(num_shards=10),
            sampler=UniformFractionSampler(0.002),  # 1 client per shard
            eager_client_init=False,
        )
        sim.run(num_rounds=2)
        assert population.materialised <= 10 * 2  # <= cohort x rounds
        assert len(population) == 5000

    def test_same_object_identity_per_index(self, iid_clients):
        population = ClientPopulation(100, [iid_clients[0].dataset])
        assert population[7] is population[7]
        assert population[-1].client_id == 99

    def test_rejects_empty_templates(self, iid_clients):
        with pytest.raises(ConfigurationError):
            ClientPopulation(10, [])
        with pytest.raises(ConfigurationError):
            ClientPopulation(0, [iid_clients[0].dataset])


# --------------------------------------------------------------------------- #
# Streaming accumulators vs batch aggregate
# --------------------------------------------------------------------------- #
def make_messages(key, count, dim=64, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ClientMessage(
            client_id=i,
            payload={key: rng.normal(size=dim)},
            num_samples=int(rng.integers(10, 100)),
            local_epochs=2,
            train_loss=float(rng.random()),
        )
        for i in range(count)
    ]


class TestAccumulators:
    @pytest.mark.parametrize("count", [1, 3, 8, 17, 64])
    def test_fedavg_uniform_streaming_is_bitwise_equal(self, count):
        algorithm = FedAvg(weighting="uniform")
        messages = make_messages("params", count)
        acc = algorithm.make_accumulator(None, {}, 100, 0)
        assert isinstance(acc, RunningAverageAccumulator)
        for message in messages:
            acc.accumulate(message)
        batch = algorithm.aggregate(None, {}, messages, 100, 0)
        assert (acc.finalise() == batch).all()

    @pytest.mark.parametrize("count", [1, 3, 8, 17, 64])
    def test_fedadmm_streaming_is_bitwise_equal(self, count):
        theta = np.linspace(-1, 1, 64)
        algorithm = FedADMM(rho=0.3, server_step_size="participation")
        messages = make_messages("delta", count)
        acc = algorithm.make_accumulator(theta, {}, 100, 5)
        assert isinstance(acc, DeltaSumAccumulator)
        for message in messages:
            acc.accumulate(message)
        batch = algorithm.aggregate(theta, {}, messages, 100, 5)
        assert (acc.finalise() == batch).all()

    def test_fedavg_weighted_streaming_is_close(self):
        # The scalar weight total is the one pairwise-summed quantity in
        # the batch path, so weighted streaming agrees to ~1 ulp, not bit.
        algorithm = FedAvg(weighting="samples")
        messages = make_messages("params", 20)
        acc = algorithm.make_accumulator(None, {}, 100, 0)
        for message in messages:
            acc.accumulate(message)
        batch = algorithm.aggregate(None, {}, messages, 100, 0)
        np.testing.assert_allclose(acc.finalise(), batch, rtol=1e-14)

    def test_shard_merge_equals_single_accumulator(self):
        algorithm = FedADMM(rho=0.3, server_step_size="participation")
        theta = np.zeros(32)
        messages = make_messages("delta", 10, dim=32)
        root = algorithm.make_accumulator(theta, {}, 50, 0)
        for chunk in (messages[:4], messages[4:7], messages[7:]):
            partial = algorithm.make_accumulator(theta, {}, 50, 0)
            for message in chunk:
                partial.accumulate(message)
            root.merge(partial)
        single = algorithm.make_accumulator(theta, {}, 50, 0)
        for message in messages:
            single.accumulate(message)
        assert root.count == single.count == 10
        np.testing.assert_allclose(
            root.finalise(), single.finalise(), atol=1e-12, rtol=0
        )

    def test_participation_step_size_uses_total_count(self):
        # η = |S_t|/m must be resolved from the merged count, not any
        # shard's local count.
        algorithm = FedADMM(rho=0.3, server_step_size="participation")
        theta = np.zeros(8)
        messages = make_messages("delta", 6, dim=8)
        root = algorithm.make_accumulator(theta, {}, 12, 0)
        for half in (messages[:3], messages[3:]):
            partial = algorithm.make_accumulator(theta, {}, 12, 0)
            for message in half:
                partial.accumulate(message)
            root.merge(partial)
        expected = algorithm.aggregate(theta, {}, messages, 12, 0)
        np.testing.assert_allclose(root.finalise(), expected, atol=1e-12)

    def test_buffered_fallback_delegates_to_aggregate(self):
        algorithm = build_algorithm("fedsgd")
        messages = make_messages("gradient", 5)
        acc = algorithm.make_accumulator(np.zeros(64), {}, 10, 0)
        assert isinstance(acc, BufferedAccumulator)
        for message in messages:
            acc.accumulate(message)
        batch = algorithm.aggregate(np.zeros(64), {}, messages, 10, 0)
        assert (acc.finalise() == batch).all()

    def test_empty_finalise_raises(self):
        algorithm = FedAvg()
        acc = algorithm.make_accumulator(None, {}, 10, 0)
        with pytest.raises(ConfigurationError):
            acc.finalise()
