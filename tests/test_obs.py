"""Unit tests for the observability primitives (``repro.obs``).

Covers the tracer (nesting, adoption, ordering, Chrome/JSONL round-trip),
the metrics registry (counter/gauge/histogram semantics and snapshots),
the profiler, and the process-wide context plumbing.  Integration with
the federation runtime lives in ``test_obs_runtime.py``.
"""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    ObsContext,
    Profiler,
    SpanRecord,
    Tracer,
    get_obs,
    load_chrome_trace,
    observe,
    read_span_log,
    set_obs,
)
from repro.obs.trace import span_tree


class TestSpanRecord:
    def test_payload_round_trip(self):
        record = SpanRecord(
            name="round",
            category="sim",
            span_id="a-1",
            parent_id="a-0",
            start_s=12.5,
            duration_s=0.25,
            virtual_start_s=3.0,
            virtual_end_s=4.0,
            pid=7,
            tid=9,
            seq=2,
            attrs={"round": 1},
        )
        assert SpanRecord.from_payload(record.to_payload()) == record

    def test_records_pickle(self):
        record = SpanRecord(name="client_task", span_id="x", attrs={"client": 3})
        assert pickle.loads(pickle.dumps(record)) == record

    def test_sort_key_prefers_virtual_time_then_seq(self):
        early = SpanRecord(name="a", virtual_end_s=1.0, seq=9)
        late = SpanRecord(name="b", virtual_end_s=2.0, seq=1)
        tie = SpanRecord(name="c", virtual_end_s=2.0, seq=2)
        unclocked = SpanRecord(name="d", seq=5)
        ordered = sorted([tie, late, unclocked, early], key=SpanRecord.sort_key)
        assert [r.name for r in ordered] == ["d", "a", "b", "c"]


class TestTracer:
    def test_nested_spans_record_parentage(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            with tracer.span("round", round=0) as rnd:
                assert tracer.current_span_id() == rnd.record.span_id
                with tracer.span("compress"):
                    pass
        assert tracer.current_span_id() is None
        by_name = {r.name: r for r in tracer.records}
        assert by_name["round"].parent_id == run.record.span_id
        assert by_name["compress"].parent_id == by_name["round"].span_id
        assert by_name["run"].parent_id is None
        assert by_name["round"].attrs == {"round": 0}
        # Inner spans close first: FIFO order is compress, round, run.
        assert [r.name for r in tracer.records] == ["compress", "round", "run"]
        assert by_name["run"].duration_s >= by_name["round"].duration_s

    def test_virtual_clock_stamped_at_open_and_close(self):
        clock = iter([1.0, 2.0, 5.0, 5.0])
        tracer = Tracer(virtual_clock=lambda: next(clock))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        assert (inner.virtual_start_s, inner.virtual_end_s) == (2.0, 5.0)
        assert (outer.virtual_start_s, outer.virtual_end_s) == (1.0, 5.0)

    def test_span_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("round") as span:
            span.set("cohort", 8)
        assert tracer.records[0].attrs["cohort"] == 8

    def test_emit_defaults_parent_to_open_span(self):
        tracer = Tracer()
        with tracer.span("round") as rnd:
            emitted = tracer.emit(
                "client_flight", category="scheduler",
                virtual_start_s=1.0, virtual_end_s=3.5, client=2,
            )
        assert emitted.parent_id == rnd.record.span_id
        assert emitted.virtual_end_s == 3.5
        assert emitted.attrs == {"client": 2}

    def test_adopt_reparents_orphans_and_keeps_batch_links(self):
        tracer = Tracer()
        task = SpanRecord(name="client_task", span_id="w-1", parent_id=None)
        sgd = SpanRecord(name="local_sgd", span_id="w-2", parent_id="w-1")
        with tracer.span("round") as rnd:
            tracer.adopt([task, sgd])
        by_name = {r.name: r for r in tracer.records}
        assert by_name["client_task"].parent_id == rnd.record.span_id
        assert by_name["local_sgd"].parent_id == "w-1"
        # Fresh FIFO positions in batch order, distinct from each other.
        assert by_name["client_task"].seq < by_name["local_sgd"].seq

    def test_sorted_records_totally_ordered(self):
        tracer = Tracer()
        tracer.emit("b", virtual_end_s=2.0)
        tracer.emit("a", virtual_end_s=1.0)
        tracer.emit("c", virtual_end_s=2.0)
        keys = [r.sort_key() for r in tracer.sorted_records()]
        assert keys == sorted(keys)
        assert [r.name for r in tracer.sorted_records()] == ["a", "b", "c"]

    def test_concurrent_threads_nest_independently(self):
        tracer = Tracer()
        errors = []

        def worker(name):
            try:
                with tracer.span(name) as outer:
                    with tracer.span(f"{name}-inner"):
                        assert tracer.current_span_id() != outer.record.span_id
            except AssertionError as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        records = tracer.records
        assert len(records) == 8
        by_name = {r.name: r for r in records}
        for i in range(4):
            # Each thread's inner span nests under its own outer span.
            assert by_name[f"t{i}-inner"].parent_id == by_name[f"t{i}"].span_id
            assert by_name[f"t{i}"].parent_id is None
        assert len({r.seq for r in records}) == 8

    def test_chrome_trace_round_trip(self, tmp_path):
        tracer = Tracer(virtual_clock=lambda: 2.5)
        with tracer.span("run"):
            with tracer.span("round", round=0):
                pass
        path = tracer.write_chrome_trace(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert all(event["ph"] == "X" for event in payload["traceEvents"])
        loaded = load_chrome_trace(path)
        originals = tracer.sorted_records()
        assert [r.name for r in loaded] == [r.name for r in originals]
        for restored, original in zip(loaded, originals):
            assert restored.span_id == original.span_id
            assert restored.parent_id == original.parent_id
            assert restored.attrs == original.attrs
            assert restored.virtual_end_s == original.virtual_end_s
            assert restored.duration_s == pytest.approx(original.duration_s)

    def test_span_log_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run", study="demo"):
            pass
        path = tracer.write_span_log(tmp_path / "spans.jsonl")
        assert read_span_log(path) == tracer.sorted_records()

    def test_span_tree_groups_by_parent(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("round"):
                pass
            with tracer.span("round"):
                pass
        tree = span_tree(tracer.records)
        run = tree[None][0]
        assert [r.name for r in tree[run.span_id]] == ["round", "round"]

    def test_clear_keeps_seq_advancing(self):
        tracer = Tracer()
        tracer.emit("a")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emit("b").seq == 2


class TestNullTracer:
    def test_everything_is_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("round", round=1) as span:
            span.set("k", "v")
            assert tracer.current_span_id() is None
        tracer.emit("x", duration_s=1.0)
        tracer.adopt([SpanRecord(name="orphan")])
        assert len(tracer) == 0
        assert tracer.records == []

    def test_span_reuses_one_shared_object(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestMetrics:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("rounds_completed")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("rounds_completed").value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_tracks_max(self):
        gauge = MetricsRegistry().gauge("async.buffer_depth")
        gauge.set(3)
        gauge.inc()
        gauge.dec(4)
        assert gauge.value == 0.0
        assert gauge.max_value == 4.0

    def test_histogram_buckets_and_summary(self):
        histogram = MetricsRegistry().histogram("staleness", bounds=(1.0, 5.0))
        for value in (0, 1, 2, 9):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 12.0
        assert (summary["min"], summary["max"]) == (0.0, 9.0)
        assert summary["mean"] == pytest.approx(3.0)
        assert summary["buckets"] == {"le_1": 2, "le_5": 1, "inf": 1}

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("bad", bounds=(5.0, 1.0))

    def test_empty_histogram_summary_has_no_stats(self):
        summary = MetricsRegistry().histogram("empty").summary()
        assert summary["count"] == 0
        assert summary["min"] is None and summary["mean"] is None

    def test_name_collision_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("depth")
        with pytest.raises(ConfigurationError):
            registry.gauge("depth")
        with pytest.raises(ConfigurationError):
            registry.histogram("depth")

    def test_snapshot_and_render_and_write(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("tasks_executed").inc(5)
        registry.gauge("depth").set(2)
        registry.histogram("staleness").observe(1)
        snap = registry.snapshot()
        assert snap["counters"]["tasks_executed"] == 5.0
        assert snap["gauges"]["depth"] == {"value": 2.0, "max": 2.0}
        assert snap["histograms"]["staleness"]["count"] == 1
        text = registry.render_text()
        assert "counter   tasks_executed = 5" in text
        path = registry.write_json(tmp_path / "metrics.json")
        assert json.loads(path.read_text()) == snap
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_counter_is_exact_under_contention(self):
        # 8 threads x 10k increments: read-modify-write without the
        # per-instrument lock loses updates; the total must be exact,
        # not approximately right.
        registry = MetricsRegistry()
        counter = registry.counter("tasks_executed")
        threads_n, incs = 8, 10_000
        start = threading.Barrier(threads_n)

        def hammer():
            start.wait()
            for _ in range(incs):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == float(threads_n * incs)

    def test_gauge_and_histogram_consistent_under_contention(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        histogram = registry.histogram("staleness", bounds=(8.0,))
        start = threading.Barrier(4)

        def hammer():
            start.wait()
            for _ in range(5_000):
                gauge.inc()
                histogram.observe(1.0)
                gauge.dec()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value == 0.0
        assert 1.0 <= gauge.max_value <= 4.0
        summary = histogram.summary()
        assert summary["count"] == 20_000
        assert summary["sum"] == 20_000.0
        assert summary["buckets"] == {"le_8": 20_000, "inf": 0}


class TestProfiler:
    def test_time_accumulates_per_key(self):
        profiler = Profiler()
        with profiler.time("phase.a"):
            pass
        with profiler.time("phase.a"):
            pass
        profiler.add("phase.b", 1.5, calls=3)
        snap = profiler.snapshot()
        assert snap["phase.a"]["calls"] == 2
        assert snap["phase.b"] == {
            "seconds": 1.5, "calls": 3, "mean_ms": pytest.approx(500.0),
        }
        # Hottest first.
        assert list(snap) == ["phase.b", "phase.a"]

    def test_hotspot_table_renders_and_truncates(self):
        profiler = Profiler()
        assert "no profile samples" in profiler.hotspot_table()
        for key, seconds in (("hot", 2.0), ("warm", 1.0), ("cold", 0.5)):
            profiler.add(key, seconds)
        table = profiler.hotspot_table(top=2)
        assert "hot" in table and "warm" in table
        assert "cold" not in table and "(1 more)" in table

    def test_reset(self):
        profiler = Profiler()
        profiler.add("x", 1.0)
        profiler.reset()
        assert len(profiler) == 0


class TestObsContext:
    def test_default_context_is_inert(self):
        context = get_obs()
        assert context.tracer is NULL_TRACER
        assert context.metrics is None and context.profiler is None
        assert not context.tracing

    def test_observe_installs_and_restores(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        with observe(tracer=tracer, metrics=metrics) as context:
            assert get_obs() is context
            assert context.tracer is tracer and context.tracing
            assert context.metrics is metrics and context.profiler is None
        assert get_obs().tracer is NULL_TRACER
        assert get_obs().metrics is None

    def test_nested_observe_composes(self):
        tracer, profiler = Tracer(), Profiler()
        with observe(tracer=tracer):
            with observe(profiler=profiler):
                context = get_obs()
                assert context.tracer is tracer
                assert context.profiler is profiler
            assert get_obs().tracer is tracer
            assert get_obs().profiler is None

    def test_observe_none_tracer_means_disabled(self):
        with observe(tracer=Tracer()):
            with observe(tracer=None):
                assert get_obs().tracer is NULL_TRACER

    def test_set_obs_returns_previous(self):
        context = ObsContext(tracer=Tracer())
        previous = set_obs(context)
        try:
            assert get_obs() is context
        finally:
            assert set_obs(previous) is context
        assert get_obs().tracer is NULL_TRACER
