"""End-to-end networked federation: server + worker *processes* on loopback.

The serve layer's central claim, checked for real: spawn a
:class:`~repro.serve.server.FederationServer` plus N separate worker
processes, run fedavg and fedadmm for a few rounds over actual HTTP, and
the :class:`TrainingHistory` is **bit-identical** to the in-process
simulation with the same seeds — not approximately equal, byte-for-byte
the same floats.  Tasks flow through the isolated-executor seam (integer
seeds derived from round/client labels), so which worker computes which
update, and in what order, cannot matter.

The second claim: the ledger's nominal wire accounting corresponds to real
bytes in the HTTP bodies.  For float16 the packed payload equals the
nominal ``codec.wire_bytes`` exactly; for identity the real float64 body
is exactly twice the nominal float32 accounting.  Both relations are
asserted against the server's byte counters, which measure the actual
submit-frame payload blobs.
"""

from __future__ import annotations

import dataclasses
import multiprocessing

import numpy as np
import pytest

from repro.experiments.configs import AlgorithmSpec, serve_config
from repro.experiments.runner import build_simulation
from repro.serve.loadgen import expected_real_bytes
from repro.serve.server import FederationServer
from repro.serve.worker import run_worker

ROUNDS = 3
WORKERS = 2


def serve_run(config, spec, rounds=ROUNDS, num_workers=WORKERS, **server_kwargs):
    """One networked run: returns (server, SimulationResult)."""
    server = FederationServer(config, spec, num_rounds=rounds, **server_kwargs)
    server.start()
    processes = [
        multiprocessing.Process(
            target=run_worker,
            kwargs=dict(url=server.url, worker_id=f"e2e-{index}"),
            daemon=True,
        )
        for index in range(num_workers)
    ]
    for process in processes:
        process.start()
    try:
        result = server.wait(timeout=300)
    finally:
        server.stop()
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - cleanup only
                process.terminate()
    return server, result


def reference_run(config, spec, rounds=ROUNDS):
    """The in-process ground truth: same config, isolated thread executor.

    The serve layer hands every task an integer seed through the isolated
    executor seam, so its ground truth is the isolated in-process executor
    (``executor="thread"``), not the shared-rng serial default.
    """
    sim = build_simulation(config.with_overrides(executor="thread"), spec)
    return sim.run(rounds, target_accuracy=None)


def assert_bit_identical(networked, reference):
    """Histories, final params, and ledgers must match exactly."""
    assert networked.algorithm == reference.algorithm
    assert len(networked.history.records) == len(reference.history.records)
    for served, simulated in zip(
        networked.history.records, reference.history.records
    ):
        assert dataclasses.asdict(served) == dataclasses.asdict(simulated)
    assert np.array_equal(networked.final_params, reference.final_params)
    networked_ledger = dataclasses.asdict(networked.ledger)
    reference_ledger = dataclasses.asdict(reference.ledger)
    assert networked_ledger == reference_ledger


@pytest.mark.parametrize("algorithm", ["fedavg", "fedadmm"])
def test_networked_history_bit_identical_to_simulation(algorithm):
    config = serve_config()
    spec = AlgorithmSpec(algorithm)
    server, networked = serve_run(config, spec)
    reference = reference_run(config, spec)
    assert_bit_identical(networked, reference)

    # Real bytes on the wire: float16's packed payload equals the ledger's
    # nominal wire accounting exactly, per codec design.
    counters = server.metrics.snapshot()["counters"]
    real_bytes = int(counters["serve.payload_bytes.float16"])
    assert real_bytes == networked.ledger.upload_wire_bytes
    assert real_bytes == expected_real_bytes(server)
    assert server.board.reclaimed == 0
    assert server.board.duplicates == 0


def test_identity_codec_real_bytes_are_double_the_nominal():
    """identity ships float64 on the wire against float32 nominal accounting."""
    config = serve_config(codec="identity")
    spec = AlgorithmSpec("fedavg")
    server, networked = serve_run(config, spec)
    reference = reference_run(config, spec)
    assert_bit_identical(networked, reference)

    counters = server.metrics.snapshot()["counters"]
    real_bytes = int(counters["serve.payload_bytes.identity"])
    assert real_bytes == 2 * networked.ledger.upload_wire_bytes
    assert real_bytes == expected_real_bytes(server)


def test_networked_run_with_more_workers_than_tasks_is_identical():
    """Worker count is a scheduling detail; four processes, same bits."""
    config = serve_config()
    spec = AlgorithmSpec("fedadmm")
    _, networked = serve_run(config, spec, rounds=2, num_workers=4)
    reference = reference_run(config, spec, rounds=2)
    assert_bit_identical(networked, reference)
