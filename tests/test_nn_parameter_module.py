"""Tests for Parameter and Module flat-packing behaviour."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.parameter import Parameter


class TestParameter:
    def test_grad_initialised_to_zero(self):
        param = Parameter(np.ones((2, 3)))
        assert param.grad.shape == (2, 3)
        assert np.all(param.grad == 0)

    def test_zero_grad(self):
        param = Parameter(np.ones(4))
        param.grad += 1.0
        param.zero_grad()
        assert np.all(param.grad == 0)

    def test_assign_checks_shape(self):
        param = Parameter(np.ones((2, 2)))
        with pytest.raises(ShapeError):
            param.assign(np.ones(3))

    def test_size(self):
        assert Parameter(np.ones((3, 5))).size == 15


class TestModuleFlatPacking:
    def _model(self):
        return Sequential(Linear(4, 3, rng=0), ReLU(), Linear(3, 2, rng=1))

    def test_num_params(self):
        model = self._model()
        assert model.num_params == 4 * 3 + 3 + 3 * 2 + 2

    def test_flat_roundtrip(self):
        model = self._model()
        flat = model.get_flat_params()
        model.set_flat_params(np.zeros_like(flat))
        assert np.all(model.get_flat_params() == 0)
        model.set_flat_params(flat)
        assert np.array_equal(model.get_flat_params(), flat)

    def test_set_flat_params_wrong_size(self):
        model = self._model()
        with pytest.raises(ShapeError):
            model.set_flat_params(np.zeros(model.num_params + 1))

    def test_flat_grad_roundtrip(self):
        model = self._model()
        grad = np.arange(model.num_params, dtype=float)
        model.set_flat_grad(grad)
        assert np.array_equal(model.get_flat_grad(), grad)

    def test_zero_grad_clears_all(self):
        model = self._model()
        model.set_flat_grad(np.ones(model.num_params))
        model.zero_grad()
        assert np.all(model.get_flat_grad() == 0)

    def test_parameters_order_stable(self):
        model = self._model()
        names = [id(p) for p in model.parameters()]
        assert names == [id(p) for p in model.parameters()]

    def test_train_eval_propagates(self):
        model = self._model()
        model.eval()
        assert all(not layer.training for layer in model.layers)
        model.train()
        assert all(layer.training for layer in model.layers)

    def test_set_flat_params_does_not_alias_input(self):
        model = self._model()
        flat = np.zeros(model.num_params)
        model.set_flat_params(flat)
        flat += 5.0
        assert np.all(model.get_flat_params() == 0)
