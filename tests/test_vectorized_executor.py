"""Vectorized executor: cohort grouping, fallback, and seeding equivalence.

The contract under test (see ``repro.systems.executor.VectorizedExecutor``
and ``repro.nn.batched``):

* histories match the serial executor within ``atol=1e-8`` (identical
  evaluated accuracies; stacked matmuls only change reduction order),
  for every batched algorithm, in full-batch and mini-batch mode;
* RNG streams are consumed in task order, so the *seeding* is exactly
  serial's — with the shared sync training stream and with per-task
  integer seeds (async/semisync);
* ragged client datasets land in separate cohorts and still match;
* a cohort of size one runs through the batched kernels and matches;
* opt-out algorithms (SCAFFOLD) and unbatchable models (CNNs) fall back
  to the serial per-task loop bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.algorithms.base import LocalTrainingConfig
from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_blobs
from repro.federated.client import ClientState
from repro.federated.engine import FederatedSimulation
from repro.federated.heterogeneity import UniformRandomEpochs
from repro.federated.local_problem import LocalProblem
from repro.federated.sampler import UniformFractionSampler
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP, SmallCNN
from repro.systems.executor import (
    LocalUpdateTask,
    SerialExecutor,
    VectorizedExecutor,
    build_executor,
)
from repro.systems.network import LogNormalNetwork

ATOL = 1e-8


def make_ragged_clients(sizes, seed=0, num_classes=4, feature_dim=12):
    """Clients with *different* local dataset sizes (forces ragged cohorts)."""
    split = make_blobs(
        n_train=sum(sizes), n_test=80, num_classes=num_classes,
        feature_dim=feature_dim, separation=2.0, noise_std=0.6, rng=seed,
    )
    clients, start = [], 0
    for client_id, size in enumerate(sizes):
        subset = Dataset(
            features=split.train.features[start:start + size],
            labels=split.train.labels[start:start + size],
            name=f"client-{client_id}",
        )
        clients.append(ClientState(client_id=client_id, dataset=subset))
        start += size
    return split, clients


def run_simulation(algorithm_name, executor, sizes, *, batch_size=5,
                   rounds=4, mode_kwargs=None, local_work=None, seed=11,
                   algorithm_kwargs=None):
    split, clients = make_ragged_clients(sizes, seed=3)
    model = MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                rng=np.random.default_rng(5))
    algorithm = build_algorithm(algorithm_name, **(algorithm_kwargs or {}))
    simulation = FederatedSimulation(
        algorithm=algorithm,
        model=model,
        clients=clients,
        test_dataset=split.test,
        sampler=UniformFractionSampler(1.0),
        local_work=local_work,
        batch_size=batch_size,
        learning_rate=0.1,
        seed=seed,
        eval_every=1,
        executor=executor,
        **(mode_kwargs or {}),
    )
    return simulation.run(rounds, target_accuracy=None)


def assert_histories_match(serial, vectorized, atol=ATOL):
    assert [r.test_accuracy for r in vectorized.history.records] == [
        r.test_accuracy for r in serial.history.records
    ]
    np.testing.assert_allclose(
        np.array([r.train_loss for r in vectorized.history.records]),
        np.array([r.train_loss for r in serial.history.records]),
        atol=atol, rtol=0,
    )
    np.testing.assert_allclose(
        vectorized.final_params, serial.final_params, atol=atol, rtol=0
    )


BATCHED_ALGORITHMS = ["fedavg", "fedprox", "fedsgd", "fedadmm"]
ALGO_KWARGS = {"fedprox": {"rho": 0.1}, "fedadmm": {"rho": 0.3}}


class TestSerialEquivalence:
    @pytest.mark.parametrize("name", BATCHED_ALGORITHMS)
    @pytest.mark.parametrize("batch_size", [5, None])
    def test_uniform_cohort_matches_serial(self, name, batch_size):
        sizes = [20] * 6  # one cohort per round
        serial = run_simulation(name, SerialExecutor(), sizes,
                                batch_size=batch_size,
                                algorithm_kwargs=ALGO_KWARGS.get(name))
        vectorized = run_simulation(name, VectorizedExecutor(), sizes,
                                    batch_size=batch_size,
                                    algorithm_kwargs=ALGO_KWARGS.get(name))
        assert_histories_match(serial, vectorized)

    @pytest.mark.parametrize("name", BATCHED_ALGORITHMS)
    def test_ragged_datasets_match_serial(self, name):
        # Four distinct dataset sizes -> at least four cohorts per round,
        # with the shared training RNG threading through all of them in
        # task order.
        sizes = [8, 8, 13, 21, 21, 34, 5, 13]
        serial = run_simulation(name, SerialExecutor(), sizes,
                                algorithm_kwargs=ALGO_KWARGS.get(name))
        vectorized = run_simulation(name, VectorizedExecutor(), sizes,
                                    algorithm_kwargs=ALGO_KWARGS.get(name))
        assert_histories_match(serial, vectorized)

    def test_cohort_of_size_one(self):
        sizes = [25]  # a single client: leading axis of 1 end to end
        serial = run_simulation("fedadmm", SerialExecutor(), sizes,
                                algorithm_kwargs={"rho": 0.3})
        vectorized = run_simulation("fedadmm", VectorizedExecutor(), sizes,
                                    algorithm_kwargs={"rho": 0.3})
        assert_histories_match(serial, vectorized)

    def test_variable_epochs_group_into_ragged_cohorts(self):
        # UniformRandomEpochs gives each client its own epoch draw, so a
        # round fragments into one cohort per realised epoch count; the
        # work RNG is shared, so both runs see identical draws.
        sizes = [16] * 8
        work = lambda: UniformRandomEpochs(max_epochs=4)  # noqa: E731
        serial = run_simulation("fedadmm", SerialExecutor(), sizes,
                                local_work=work(),
                                algorithm_kwargs={"rho": 0.3})
        vectorized = run_simulation("fedadmm", VectorizedExecutor(), sizes,
                                    local_work=work(),
                                    algorithm_kwargs={"rho": 0.3})
        assert_histories_match(serial, vectorized)


class TestFallback:
    def test_opt_out_algorithm_is_bit_identical_to_serial(self):
        # SCAFFOLD opts out of batching; the vectorized executor must run
        # its per-task serial loop, making the histories *exactly* equal.
        sizes = [16] * 5
        serial = run_simulation("scaffold", SerialExecutor(), sizes)
        vectorized = run_simulation("scaffold", VectorizedExecutor(), sizes)
        assert serial.history.records == vectorized.history.records
        np.testing.assert_array_equal(
            serial.final_params, vectorized.final_params
        )

    def test_opt_out_algorithm_reports_no_vectorization(self):
        split, clients = make_ragged_clients([10, 10])
        problems = [
            LocalProblem(
                model=MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                          rng=np.random.default_rng(0)),
                loss=CrossEntropyLoss(),
                dataset=client.dataset,
            )
            for client in clients
        ]
        executor = VectorizedExecutor()
        executor.prime(problems, build_algorithm("scaffold"))
        assert not executor.vectorizes
        executor.prime(problems, build_algorithm("fedavg"))
        assert executor.vectorizes

    def test_unbatchable_model_falls_back_bit_identically(self):
        # Convolutions have no stacked kernels: prime() must detect this
        # and the run must equal serial exactly.
        split = make_blobs(n_train=60, n_test=20, num_classes=3,
                           feature_dim=16, rng=0)
        clients = [
            ClientState(
                client_id=i,
                dataset=Dataset(
                    features=split.train.features[i * 20:(i + 1) * 20],
                    labels=split.train.labels[i * 20:(i + 1) * 20],
                ),
            )
            for i in range(3)
        ]

        def run(executor):
            model = SmallCNN(rng=np.random.default_rng(1), channels=1,
                             image_size=4, num_classes=3,
                             conv_channels=(2, 2), hidden=8)
            fresh = [
                ClientState(client_id=c.client_id, dataset=c.dataset)
                for c in clients
            ]
            simulation = FederatedSimulation(
                algorithm=build_algorithm("fedavg"),
                model=model,
                clients=fresh,
                test_dataset=split.test,
                sampler=UniformFractionSampler(1.0),
                batch_size=10,
                learning_rate=0.05,
                seed=7,
                executor=executor,
            )
            return simulation.run(2, target_accuracy=None)

        serial, vectorized = run(SerialExecutor()), run(VectorizedExecutor())
        assert serial.history.records == vectorized.history.records
        np.testing.assert_array_equal(
            serial.final_params, vectorized.final_params
        )


class TestBufferedPlans:
    """Vectorized under async/semisync: per-task integer seeds."""

    def test_async_plan_matches_serial(self):
        sizes = [16] * 6
        from repro.federated.async_engine import AsyncFederatedSimulation

        def run(executor):
            split, clients = make_ragged_clients(sizes, seed=3)
            model = MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                        rng=np.random.default_rng(5))
            simulation = AsyncFederatedSimulation(
                algorithm=build_algorithm("fedavg"),
                model=model,
                clients=clients,
                test_dataset=split.test,
                sampler=UniformFractionSampler(0.5),
                batch_size=5,
                learning_rate=0.1,
                seed=11,
                buffer_size=2,
                max_concurrency=4,
                network=LogNormalNetwork(),
                executor=executor,
            )
            return simulation.run(4, target_accuracy=None)

        serial, vectorized = run(SerialExecutor()), run(VectorizedExecutor())
        assert_histories_match(serial, vectorized)

    def test_semisync_plan_matches_serial(self):
        from repro.federated.plans import SemiSyncPlan

        def run(executor):
            split, clients = make_ragged_clients([16] * 6, seed=3)
            model = MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                        rng=np.random.default_rng(5))
            simulation = FederatedSimulation(
                algorithm=build_algorithm("fedadmm", rho=0.3),
                model=model,
                clients=clients,
                test_dataset=split.test,
                sampler=UniformFractionSampler(0.5),
                batch_size=5,
                learning_rate=0.1,
                seed=11,
                network=LogNormalNetwork(),
                plan=SemiSyncPlan(round_deadline_s=5.0),
                executor=executor,
            )
            return simulation.run(4, target_accuracy=None)

        serial, vectorized = run(SerialExecutor()), run(VectorizedExecutor())
        assert_histories_match(serial, vectorized)


class TestCohortMechanics:
    def _prime(self, sizes, algorithm_name="fedavg", seed=0):
        split, clients = make_ragged_clients(sizes, seed=seed)
        model = MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                    rng=np.random.default_rng(2))
        problems = [
            LocalProblem(model=model, loss=CrossEntropyLoss(),
                         dataset=client.dataset)
            for client in clients
        ]
        executor = VectorizedExecutor()
        algorithm = build_algorithm(algorithm_name)
        executor.prime(problems, algorithm)
        params = model.get_flat_params()
        return executor, clients, params

    def _task(self, clients, params, index, epochs, rng, batch_size=5):
        return LocalUpdateTask(
            client_index=index,
            client=clients[index],
            global_params=params,
            server_state={},
            config=LocalTrainingConfig(
                epochs=epochs, batch_size=batch_size, learning_rate=0.1
            ),
            round_index=0,
            rng=rng,
        )

    def test_outcomes_preserve_task_order_across_cohorts(self):
        # Interleave two dataset sizes and two epoch counts: four cohorts,
        # but the outcome list must still line up with the task list.
        sizes = [10, 20, 10, 20, 10, 20]
        executor, clients, params = self._prime(sizes)
        tasks = [
            self._task(clients, params, i, epochs=1 + (i % 2), rng=100 + i)
            for i in range(len(sizes))
        ]
        outcomes = executor.run_tasks(tasks)
        assert [o.message.client_id for o in outcomes] == [
            t.client.client_id for t in tasks
        ]
        assert [o.message.local_epochs for o in outcomes] == [
            t.config.epochs for t in tasks
        ]
        assert [o.message.num_samples for o in outcomes] == sizes

    def test_mixed_cohorts_match_per_task_serial_execution(self):
        # The same interleaved task list through a serial executor, with
        # identical per-task seeds: grouping must not change results.
        sizes = [10, 20, 10, 20, 10, 20]
        vec, clients_v, params = self._prime(sizes)
        ser, clients_s, params_s = self._prime(sizes)
        np.testing.assert_array_equal(params, params_s)
        serial = SerialExecutor()
        serial.prime(ser._problems, ser._algorithm)
        tasks_v = [
            self._task(clients_v, params, i, epochs=1 + (i % 2), rng=100 + i)
            for i in range(len(sizes))
        ]
        tasks_s = [
            self._task(clients_s, params, i, epochs=1 + (i % 2), rng=100 + i)
            for i in range(len(sizes))
        ]
        for out_v, out_s in zip(vec.run_tasks(tasks_v), serial.run_tasks(tasks_s)):
            np.testing.assert_allclose(
                out_v.message.payload["params"],
                out_s.message.payload["params"],
                atol=ATOL, rtol=0,
            )

    def test_build_executor_registry_entry(self):
        assert isinstance(build_executor("vectorized"), VectorizedExecutor)
        # max_workers is meaningless for the in-process stacked executor
        # but must not crash the shared CLI flag path.
        assert isinstance(
            build_executor("vectorized", max_workers=4), VectorizedExecutor
        )
