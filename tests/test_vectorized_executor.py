"""Vectorized executor: cohort grouping, fallback, and seeding equivalence.

The contract under test (see ``repro.systems.executor.VectorizedExecutor``
and ``repro.nn.batched``):

* histories match the serial executor within ``atol=1e-8`` (identical
  evaluated accuracies; stacked matmuls only change reduction order),
  for every batched algorithm, in full-batch and mini-batch mode;
* RNG streams are consumed in task order, so the *seeding* is exactly
  serial's — with the shared sync training stream and with per-task
  integer seeds (async/semisync);
* ragged client datasets land in separate cohorts and still match;
* a cohort of size one runs through the batched kernels and matches;
* results are identical regardless of ``max_workers`` (parallel cohort
  dispatch reassembles in task order, with every draw made pre-dispatch);
* opt-out algorithms and genuinely unbatchable pieces (subclassed losses,
  custom layers) fall back to the serial per-task loop bit for bit, with
  the reason recorded in the labelled fallback counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import FedAvg, build_algorithm
from repro.algorithms.base import LocalTrainingConfig
from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_blobs
from repro.federated.client import ClientState
from repro.federated.engine import FederatedSimulation
from repro.federated.heterogeneity import UniformRandomEpochs
from repro.federated.local_problem import LocalProblem
from repro.federated.sampler import UniformFractionSampler
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP, SmallCNN
from repro.obs import MetricsRegistry, observe
from repro.systems.executor import (
    LocalUpdateTask,
    SerialExecutor,
    VectorizedExecutor,
    build_executor,
)
from repro.systems.network import LogNormalNetwork

ATOL = 1e-8


def make_ragged_clients(sizes, seed=0, num_classes=4, feature_dim=12):
    """Clients with *different* local dataset sizes (forces ragged cohorts)."""
    split = make_blobs(
        n_train=sum(sizes), n_test=80, num_classes=num_classes,
        feature_dim=feature_dim, separation=2.0, noise_std=0.6, rng=seed,
    )
    clients, start = [], 0
    for client_id, size in enumerate(sizes):
        subset = Dataset(
            features=split.train.features[start:start + size],
            labels=split.train.labels[start:start + size],
            name=f"client-{client_id}",
        )
        clients.append(ClientState(client_id=client_id, dataset=subset))
        start += size
    return split, clients


def run_simulation(algorithm_name, executor, sizes, *, batch_size=5,
                   rounds=4, mode_kwargs=None, local_work=None, seed=11,
                   algorithm_kwargs=None):
    split, clients = make_ragged_clients(sizes, seed=3)
    model = MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                rng=np.random.default_rng(5))
    if isinstance(algorithm_name, str):
        algorithm = build_algorithm(algorithm_name, **(algorithm_kwargs or {}))
    else:
        algorithm = algorithm_name  # a pre-built instance
    simulation = FederatedSimulation(
        algorithm=algorithm,
        model=model,
        clients=clients,
        test_dataset=split.test,
        sampler=UniformFractionSampler(1.0),
        local_work=local_work,
        batch_size=batch_size,
        learning_rate=0.1,
        seed=seed,
        eval_every=1,
        executor=executor,
        **(mode_kwargs or {}),
    )
    return simulation.run(rounds, target_accuracy=None)


def assert_histories_match(serial, vectorized, atol=ATOL):
    assert [r.test_accuracy for r in vectorized.history.records] == [
        r.test_accuracy for r in serial.history.records
    ]
    np.testing.assert_allclose(
        np.array([r.train_loss for r in vectorized.history.records]),
        np.array([r.train_loss for r in serial.history.records]),
        atol=atol, rtol=0,
    )
    np.testing.assert_allclose(
        vectorized.final_params, serial.final_params, atol=atol, rtol=0
    )


BATCHED_ALGORITHMS = ["fedavg", "fedprox", "fedsgd", "fedadmm", "scaffold",
                      "fedpd"]
ALGO_KWARGS = {"fedprox": {"rho": 0.1}, "fedadmm": {"rho": 0.3},
               "fedpd": {"rho": 0.1}}


class OptOutFedAvg(FedAvg):
    """FedAvg with batching explicitly disabled (exercises the opt-out path)."""

    supports_batched = False


class TweakedCrossEntropy(CrossEntropyLoss):
    """A loss *subclass*: unbatchable by the exact-type compilation rule."""

    def value_and_grad(self, predictions, targets):
        return super().value_and_grad(predictions, targets)


class TestSerialEquivalence:
    @pytest.mark.parametrize("name", BATCHED_ALGORITHMS)
    @pytest.mark.parametrize("batch_size", [5, None])
    def test_uniform_cohort_matches_serial(self, name, batch_size):
        sizes = [20] * 6  # one cohort per round
        serial = run_simulation(name, SerialExecutor(), sizes,
                                batch_size=batch_size,
                                algorithm_kwargs=ALGO_KWARGS.get(name))
        vectorized = run_simulation(name, VectorizedExecutor(), sizes,
                                    batch_size=batch_size,
                                    algorithm_kwargs=ALGO_KWARGS.get(name))
        assert_histories_match(serial, vectorized)

    @pytest.mark.parametrize("name", BATCHED_ALGORITHMS)
    def test_ragged_datasets_match_serial(self, name):
        # Four distinct dataset sizes -> at least four cohorts per round,
        # with the shared training RNG threading through all of them in
        # task order.
        sizes = [8, 8, 13, 21, 21, 34, 5, 13]
        serial = run_simulation(name, SerialExecutor(), sizes,
                                algorithm_kwargs=ALGO_KWARGS.get(name))
        vectorized = run_simulation(name, VectorizedExecutor(), sizes,
                                    algorithm_kwargs=ALGO_KWARGS.get(name))
        assert_histories_match(serial, vectorized)

    def test_cohort_of_size_one(self):
        sizes = [25]  # a single client: leading axis of 1 end to end
        serial = run_simulation("fedadmm", SerialExecutor(), sizes,
                                algorithm_kwargs={"rho": 0.3})
        vectorized = run_simulation("fedadmm", VectorizedExecutor(), sizes,
                                    algorithm_kwargs={"rho": 0.3})
        assert_histories_match(serial, vectorized)

    def test_variable_epochs_group_into_ragged_cohorts(self):
        # UniformRandomEpochs gives each client its own epoch draw, so a
        # round fragments into one cohort per realised epoch count; the
        # work RNG is shared, so both runs see identical draws.
        sizes = [16] * 8
        work = lambda: UniformRandomEpochs(max_epochs=4)  # noqa: E731
        serial = run_simulation("fedadmm", SerialExecutor(), sizes,
                                local_work=work(),
                                algorithm_kwargs={"rho": 0.3})
        vectorized = run_simulation("fedadmm", VectorizedExecutor(), sizes,
                                    local_work=work(),
                                    algorithm_kwargs={"rho": 0.3})
        assert_histories_match(serial, vectorized)


class TestFallback:
    def test_opt_out_algorithm_is_bit_identical_to_serial(self):
        # An algorithm that opts out of batching must run the per-task
        # serial loop, making the histories *exactly* equal.
        sizes = [16] * 5
        serial = run_simulation(OptOutFedAvg(), SerialExecutor(), sizes)
        vectorized = run_simulation(OptOutFedAvg(), VectorizedExecutor(), sizes)
        assert serial.history.records == vectorized.history.records
        np.testing.assert_array_equal(
            serial.final_params, vectorized.final_params
        )

    def test_opt_out_algorithm_reports_no_vectorization(self):
        split, clients = make_ragged_clients([10, 10])
        problems = [
            LocalProblem(
                model=MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                          rng=np.random.default_rng(0)),
                loss=CrossEntropyLoss(),
                dataset=client.dataset,
            )
            for client in clients
        ]
        executor = VectorizedExecutor()
        executor.prime(problems, OptOutFedAvg())
        assert not executor.vectorizes
        assert executor.fallback_reason == "algorithm_opt_out"
        executor.prime(problems, build_algorithm("fedavg"))
        assert executor.vectorizes
        assert executor.fallback_reason is None

    def test_formerly_opted_out_algorithms_now_vectorize(self):
        split, clients = make_ragged_clients([10, 10])
        problems = [
            LocalProblem(
                model=MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                          rng=np.random.default_rng(0)),
                loss=CrossEntropyLoss(),
                dataset=client.dataset,
            )
            for client in clients
        ]
        executor = VectorizedExecutor()
        for name in ("scaffold", "fedpd"):
            executor.prime(problems, build_algorithm(name))
            assert executor.vectorizes, name
            assert executor.fallback_reason is None

    def test_unbatchable_loss_falls_back_bit_identically(self):
        # A subclassed loss has no stacked counterpart (exact-type rule):
        # prime() must detect this and the run must equal serial exactly.
        split = make_blobs(n_train=60, n_test=20, num_classes=3,
                           feature_dim=16, rng=0)
        clients = [
            ClientState(
                client_id=i,
                dataset=Dataset(
                    features=split.train.features[i * 20:(i + 1) * 20],
                    labels=split.train.labels[i * 20:(i + 1) * 20],
                ),
            )
            for i in range(3)
        ]

        def run(executor):
            model = MLP(input_dim=16, hidden_dims=(8,), num_classes=3,
                        rng=np.random.default_rng(1))
            fresh = [
                ClientState(client_id=c.client_id, dataset=c.dataset)
                for c in clients
            ]
            simulation = FederatedSimulation(
                algorithm=build_algorithm("fedavg"),
                model=model,
                loss=TweakedCrossEntropy(),
                clients=fresh,
                test_dataset=split.test,
                sampler=UniformFractionSampler(1.0),
                batch_size=10,
                learning_rate=0.05,
                seed=7,
                executor=executor,
            )
            return simulation.run(2, target_accuracy=None)

        serial, vectorized = run(SerialExecutor()), run(VectorizedExecutor())
        assert serial.history.records == vectorized.history.records
        np.testing.assert_array_equal(
            serial.final_params, vectorized.final_params
        )

    def test_fallback_counters_are_labelled_by_reason(self):
        split, clients = make_ragged_clients([10, 10])
        mlp_problems = [
            LocalProblem(
                model=MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                          rng=np.random.default_rng(0)),
                loss=CrossEntropyLoss(),
                dataset=client.dataset,
            )
            for client in clients
        ]
        unbatchable_problems = [
            LocalProblem(
                model=MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                          rng=np.random.default_rng(0)),
                loss=TweakedCrossEntropy(),
                dataset=client.dataset,
            )
            for client in clients
        ]
        params = mlp_problems[0].model.get_flat_params()

        def tasks_for(problems):
            return [
                LocalUpdateTask(
                    client_index=i,
                    client=clients[i],
                    global_params=params,
                    server_state={},
                    config=LocalTrainingConfig(
                        epochs=1, batch_size=5, learning_rate=0.1
                    ),
                    round_index=0,
                    rng=100 + i,
                )
                for i in range(len(problems))
            ]

        metrics = MetricsRegistry()
        with observe(metrics=metrics):
            executor = VectorizedExecutor()
            executor.prime(mlp_problems, OptOutFedAvg())
            executor.run_tasks(tasks_for(mlp_problems))
            executor.prime(unbatchable_problems, build_algorithm("fedavg"))
            executor.run_tasks(tasks_for(unbatchable_problems))
        counters = metrics.snapshot()["counters"]
        assert counters["executor.fallback.algorithm_opt_out"] == 2
        assert counters["executor.fallback.unbatchable_model"] == 2

    def test_batched_run_increments_no_fallback_counters(self):
        # SCAFFOLD end to end under the vectorized executor: every task
        # must run batched, with zero fallback counter increments.
        metrics = MetricsRegistry()
        with observe(metrics=metrics):
            run_simulation("scaffold", VectorizedExecutor(), [16] * 5)
        counters = metrics.snapshot()["counters"]
        assert not any(name.startswith("executor.fallback.")
                       for name in counters)
        assert counters["executor.batched_tasks"] > 0


class TestBufferedPlans:
    """Vectorized under async/semisync: per-task integer seeds."""

    def test_async_plan_matches_serial(self):
        sizes = [16] * 6
        from repro.federated.async_engine import AsyncFederatedSimulation

        def run(executor):
            split, clients = make_ragged_clients(sizes, seed=3)
            model = MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                        rng=np.random.default_rng(5))
            simulation = AsyncFederatedSimulation(
                algorithm=build_algorithm("fedavg"),
                model=model,
                clients=clients,
                test_dataset=split.test,
                sampler=UniformFractionSampler(0.5),
                batch_size=5,
                learning_rate=0.1,
                seed=11,
                buffer_size=2,
                max_concurrency=4,
                network=LogNormalNetwork(),
                executor=executor,
            )
            return simulation.run(4, target_accuracy=None)

        serial, vectorized = run(SerialExecutor()), run(VectorizedExecutor())
        assert_histories_match(serial, vectorized)

    def test_semisync_plan_matches_serial(self):
        from repro.federated.plans import SemiSyncPlan

        def run(executor):
            split, clients = make_ragged_clients([16] * 6, seed=3)
            model = MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                        rng=np.random.default_rng(5))
            simulation = FederatedSimulation(
                algorithm=build_algorithm("fedadmm", rho=0.3),
                model=model,
                clients=clients,
                test_dataset=split.test,
                sampler=UniformFractionSampler(0.5),
                batch_size=5,
                learning_rate=0.1,
                seed=11,
                network=LogNormalNetwork(),
                plan=SemiSyncPlan(round_deadline_s=5.0),
                executor=executor,
            )
            return simulation.run(4, target_accuracy=None)

        serial, vectorized = run(SerialExecutor()), run(VectorizedExecutor())
        assert_histories_match(serial, vectorized)


class TestCohortMechanics:
    def _prime(self, sizes, algorithm_name="fedavg", seed=0):
        split, clients = make_ragged_clients(sizes, seed=seed)
        model = MLP(input_dim=12, hidden_dims=(8,), num_classes=4,
                    rng=np.random.default_rng(2))
        problems = [
            LocalProblem(model=model, loss=CrossEntropyLoss(),
                         dataset=client.dataset)
            for client in clients
        ]
        executor = VectorizedExecutor()
        algorithm = build_algorithm(algorithm_name)
        executor.prime(problems, algorithm)
        params = model.get_flat_params()
        return executor, clients, params

    def _task(self, clients, params, index, epochs, rng, batch_size=5):
        return LocalUpdateTask(
            client_index=index,
            client=clients[index],
            global_params=params,
            server_state={},
            config=LocalTrainingConfig(
                epochs=epochs, batch_size=batch_size, learning_rate=0.1
            ),
            round_index=0,
            rng=rng,
        )

    def test_outcomes_preserve_task_order_across_cohorts(self):
        # Interleave two dataset sizes and two epoch counts: four cohorts,
        # but the outcome list must still line up with the task list.
        sizes = [10, 20, 10, 20, 10, 20]
        executor, clients, params = self._prime(sizes)
        tasks = [
            self._task(clients, params, i, epochs=1 + (i % 2), rng=100 + i)
            for i in range(len(sizes))
        ]
        outcomes = executor.run_tasks(tasks)
        assert [o.message.client_id for o in outcomes] == [
            t.client.client_id for t in tasks
        ]
        assert [o.message.local_epochs for o in outcomes] == [
            t.config.epochs for t in tasks
        ]
        assert [o.message.num_samples for o in outcomes] == sizes

    def test_mixed_cohorts_match_per_task_serial_execution(self):
        # The same interleaved task list through a serial executor, with
        # identical per-task seeds: grouping must not change results.
        sizes = [10, 20, 10, 20, 10, 20]
        vec, clients_v, params = self._prime(sizes)
        ser, clients_s, params_s = self._prime(sizes)
        np.testing.assert_array_equal(params, params_s)
        serial = SerialExecutor()
        serial.prime(ser._problems, ser._algorithm)
        tasks_v = [
            self._task(clients_v, params, i, epochs=1 + (i % 2), rng=100 + i)
            for i in range(len(sizes))
        ]
        tasks_s = [
            self._task(clients_s, params, i, epochs=1 + (i % 2), rng=100 + i)
            for i in range(len(sizes))
        ]
        for out_v, out_s in zip(vec.run_tasks(tasks_v), serial.run_tasks(tasks_s)):
            np.testing.assert_allclose(
                out_v.message.payload["params"],
                out_s.message.payload["params"],
                atol=ATOL, rtol=0,
            )

    def test_build_executor_registry_entry(self):
        assert isinstance(build_executor("vectorized"), VectorizedExecutor)
        executor = build_executor("vectorized", max_workers=4, backend="numpy")
        assert isinstance(executor, VectorizedExecutor)
        assert executor.max_workers == 4
        assert executor.backend == "numpy"
        # Per-task executors ignore the backend (they run serial model code).
        assert build_executor("thread", max_workers=2, backend="numpy") is not None

    def test_invalid_max_workers_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            VectorizedExecutor(max_workers=0)

    def test_stacked_data_is_cached_across_rounds(self):
        # Client datasets are immutable for a simulation, so a recurring
        # cohort composition must reuse its (C, n, d) stack rather than
        # re-stacking every round — and the cached arrays must be the
        # exact bytes a fresh stack would produce.
        sizes = [10, 10, 10]
        executor, clients, params = self._prime(sizes)
        problems = executor._problems
        key = (0, 1, 2)
        features_a, labels_a = executor._stacked_data(key, problems)
        features_b, labels_b = executor._stacked_data(key, problems)
        assert features_b is features_a and labels_b is labels_a
        np.testing.assert_array_equal(
            features_a, np.stack([p.dataset.features for p in problems])
        )
        np.testing.assert_array_equal(
            labels_a, np.stack([p.dataset.labels for p in problems])
        )
        # A different composition is a different cache entry.
        reordered, _ = executor._stacked_data((2, 1, 0), problems[::-1])
        assert reordered is not features_a
        np.testing.assert_array_equal(reordered, features_a[::-1])
        # Repriming (new problem objects, fresh arrays) must never serve
        # a stale stack: the entry is validated by source-array identity.
        executor.prime(
            [
                LocalProblem(
                    model=p.model,
                    loss=p.loss,
                    dataset=Dataset(
                        features=p.dataset.features.copy(),
                        labels=p.dataset.labels.copy(),
                        name=p.dataset.name,
                    ),
                )
                for p in problems
            ],
            executor._algorithm,
        )
        features_c, _ = executor._stacked_data(key, executor._problems)
        assert features_c is not features_a
        np.testing.assert_array_equal(features_c, features_a)


class TestParallelDispatch:
    """Cohorts dispatched across worker threads: same results, any schedule."""

    @pytest.mark.parametrize("name", ["fedadmm", "scaffold"])
    def test_parallel_cohorts_match_serial(self, name):
        # Ragged sizes + variable seeds -> several cohorts per round, run
        # concurrently; results must still match serial within tolerance.
        sizes = [8, 8, 13, 21, 21, 34, 5, 13]
        serial = run_simulation(name, SerialExecutor(), sizes,
                                algorithm_kwargs=ALGO_KWARGS.get(name))
        parallel = run_simulation(
            name, VectorizedExecutor(max_workers=4), sizes,
            algorithm_kwargs=ALGO_KWARGS.get(name),
        )
        assert_histories_match(serial, parallel)

    def test_parallel_equals_inline_bitwise(self):
        # max_workers=1 (inline) and max_workers=4 (threaded) must produce
        # bit-identical results: every random draw happens pre-dispatch.
        sizes = [10, 20, 10, 20, 10, 20]
        inline = run_simulation("fedavg", VectorizedExecutor(max_workers=1),
                                sizes)
        threaded = run_simulation("fedavg", VectorizedExecutor(max_workers=4),
                                  sizes)
        assert inline.history.records == threaded.history.records
        np.testing.assert_array_equal(
            inline.final_params, threaded.final_params
        )

    def test_explicit_numpy_backend_is_bit_identical(self):
        sizes = [16] * 4
        default = run_simulation("fedadmm", VectorizedExecutor(), sizes,
                                 algorithm_kwargs={"rho": 0.3})
        explicit = run_simulation(
            "fedadmm", VectorizedExecutor(backend="numpy"), sizes,
            algorithm_kwargs={"rho": 0.3},
        )
        assert default.history.records == explicit.history.records
        np.testing.assert_array_equal(
            default.final_params, explicit.final_params
        )


class TestConvModels:
    """The CNN zoo now vectorizes (im2col conv/pool stacked kernels)."""

    def test_small_cnn_vectorizes_and_matches_serial(self):
        split = make_blobs(n_train=48, n_test=24, num_classes=3,
                           feature_dim=16, rng=0)
        clients = [
            ClientState(
                client_id=i,
                dataset=Dataset(
                    features=split.train.features[i * 16:(i + 1) * 16],
                    labels=split.train.labels[i * 16:(i + 1) * 16],
                ),
            )
            for i in range(3)
        ]

        def run(executor):
            model = SmallCNN(rng=np.random.default_rng(1), channels=1,
                             image_size=4, num_classes=3,
                             conv_channels=(2, 2), hidden=8)
            fresh = [
                ClientState(client_id=c.client_id, dataset=c.dataset)
                for c in clients
            ]
            simulation = FederatedSimulation(
                algorithm=build_algorithm("fedavg"),
                model=model,
                clients=fresh,
                test_dataset=split.test,
                sampler=UniformFractionSampler(1.0),
                batch_size=8,
                learning_rate=0.05,
                seed=7,
                executor=executor,
            )
            return simulation.run(2, target_accuracy=None)

        metrics = MetricsRegistry()
        with observe(metrics=metrics):
            vectorized = run(VectorizedExecutor())
        counters = metrics.snapshot()["counters"]
        assert counters.get("executor.batched_tasks", 0) > 0
        assert not any(name.startswith("executor.fallback.")
                       for name in counters)
        serial = run(SerialExecutor())
        assert_histories_match(serial, vectorized)
