"""Tests for the federated algorithms' local updates and aggregation rules."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHM_REGISTRY,
    FedADMM,
    FedAvg,
    FedPD,
    FedProx,
    FedSGD,
    Scaffold,
    build_algorithm,
)
from repro.algorithms.base import LocalTrainingConfig, run_local_sgd
from repro.core.rho import PiecewiseRho
from repro.core.stepsize import ParticipationScaledStepSize
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.nn.losses import CrossEntropyLoss
from tests.conftest import make_model


@pytest.fixture()
def problem_and_client(blobs_split, iid_partition):
    dataset = iid_partition.client_dataset(blobs_split.train, 0)
    model = make_model(seed=0)
    problem = LocalProblem(model=model, loss=CrossEntropyLoss(), dataset=dataset)
    client = ClientState(client_id=0, dataset=dataset)
    return problem, client


def _message(payload, client_id=0):
    return ClientMessage(
        client_id=client_id,
        payload=payload,
        num_samples=10,
        local_epochs=1,
        train_loss=0.1,
    )


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        assert set(ALGORITHM_REGISTRY) == {
            "fedsgd",
            "fedavg",
            "fedprox",
            "scaffold",
            "fedadmm",
            "fedpd",
            "feddropoutavg",
        }

    def test_build_algorithm(self):
        assert isinstance(build_algorithm("fedadmm", rho=0.5), FedADMM)
        with pytest.raises(ConfigurationError):
            build_algorithm("fedrandom")


class TestLocalTrainingConfig:
    def test_valid(self):
        config = LocalTrainingConfig(epochs=3, batch_size=None, learning_rate=0.1)
        assert config.epochs == 3

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            LocalTrainingConfig(epochs=0, batch_size=8, learning_rate=0.1)
        with pytest.raises(ConfigurationError):
            LocalTrainingConfig(epochs=1, batch_size=0, learning_rate=0.1)
        with pytest.raises(ConfigurationError):
            LocalTrainingConfig(epochs=1, batch_size=8, learning_rate=0.0)


class TestRunLocalSgd:
    def test_reduces_local_loss(self, problem_and_client, training_config):
        problem, _ = problem_and_client
        start = problem.model.get_flat_params()
        params, _ = run_local_sgd(problem, start, training_config, rng=0)
        assert problem.full_loss(params) < problem.full_loss(start)

    def test_does_not_mutate_start(self, problem_and_client, training_config):
        problem, _ = problem_and_client
        start = problem.model.get_flat_params()
        original = start.copy()
        run_local_sgd(problem, start, training_config, rng=0)
        assert np.array_equal(start, original)

    def test_extra_grad_changes_result(self, problem_and_client, training_config):
        problem, _ = problem_and_client
        start = problem.model.get_flat_params()
        plain, _ = run_local_sgd(problem, start, training_config, rng=0)
        pulled, _ = run_local_sgd(
            problem, start, training_config, rng=0, extra_grad=lambda w: 10.0 * (w - start)
        )
        assert not np.allclose(plain, pulled)
        # The strong pull keeps the iterate closer to the start.
        assert np.linalg.norm(pulled - start) < np.linalg.norm(plain - start)


class TestFedSGD:
    def test_message_is_full_gradient(self, problem_and_client, training_config):
        problem, client = problem_and_client
        algorithm = FedSGD(server_learning_rate=0.5)
        theta = problem.model.get_flat_params()
        message = algorithm.local_update(problem, client, theta, {}, training_config, rng=0)
        _, expected = problem.full_loss_and_grad(theta)
        assert np.allclose(message.payload["gradient"], expected)

    def test_aggregate_applies_mean_gradient_step(self):
        algorithm = FedSGD(server_learning_rate=0.1)
        theta = np.zeros(3)
        messages = [
            _message({"gradient": np.array([1.0, 0.0, 0.0])}),
            _message({"gradient": np.array([0.0, 1.0, 0.0])}, client_id=1),
        ]
        new_theta = algorithm.aggregate(theta, {}, messages, 10, 0)
        assert np.allclose(new_theta, [-0.05, -0.05, 0.0])

    def test_invalid_lr(self):
        with pytest.raises(ConfigurationError):
            FedSGD(server_learning_rate=0.0)


class TestFedAvgAndFedProx:
    def test_fedavg_aggregate_is_plain_average(self):
        algorithm = FedAvg()
        messages = [
            _message({"params": np.array([0.0, 0.0])}),
            _message({"params": np.array([2.0, 4.0])}, client_id=1),
        ]
        assert np.allclose(algorithm.aggregate(np.zeros(2), {}, messages, 10, 0), [1.0, 2.0])

    def test_fedavg_sample_weighting(self):
        algorithm = FedAvg(weighting="samples")
        messages = [
            ClientMessage(0, {"params": np.array([0.0])}, num_samples=30, local_epochs=1, train_loss=0.0),
            ClientMessage(1, {"params": np.array([4.0])}, num_samples=10, local_epochs=1, train_loss=0.0),
        ]
        assert np.allclose(algorithm.aggregate(np.zeros(1), {}, messages, 10, 0), [1.0])

    def test_fedprox_stays_closer_to_global_model(self, problem_and_client, training_config):
        """The proximal pull keeps FedProx's local model nearer theta than FedAvg's."""
        problem, client = problem_and_client
        theta = problem.model.get_flat_params()
        fedavg_msg = FedAvg().local_update(problem, client, theta, {}, training_config, rng=0)
        fedprox_msg = FedProx(rho=10.0).local_update(
            problem, ClientState(client_id=0, dataset=client.dataset), theta, {}, training_config, rng=0
        )
        drift_avg = np.linalg.norm(fedavg_msg.payload["params"] - theta)
        drift_prox = np.linalg.norm(fedprox_msg.payload["params"] - theta)
        assert drift_prox < drift_avg

    def test_fedprox_rho_zero_matches_fedavg(self, problem_and_client, training_config):
        """Section III-B: FedProx with rho=0 is exactly FedAvg's local problem."""
        problem, client = problem_and_client
        theta = problem.model.get_flat_params()
        avg = FedAvg().local_update(problem, client, theta, {}, training_config, rng=123)
        prox = FedProx(rho=0.0).local_update(
            problem, ClientState(client_id=0, dataset=client.dataset), theta, {}, training_config, rng=123
        )
        assert np.allclose(avg.payload["params"], prox.payload["params"])

    def test_invalid_weighting(self):
        with pytest.raises(ConfigurationError):
            FedAvg(weighting="volume")
        with pytest.raises(ConfigurationError):
            FedProx(rho=-1.0)

    def test_upload_cost_is_one_model(self, problem_and_client, training_config):
        problem, client = problem_and_client
        theta = problem.model.get_flat_params()
        message = FedAvg().local_update(problem, client, theta, {}, training_config, rng=0)
        assert message.upload_floats == theta.size


class TestScaffold:
    def test_control_variates_initialised_to_zero(self, problem_and_client):
        _, client = problem_and_client
        algorithm = Scaffold()
        algorithm.init_client_state(client, np.zeros(5))
        assert np.array_equal(client.get("control"), np.zeros(5))
        state = algorithm.init_server_state(np.zeros(5), 10)
        assert np.array_equal(state["control"], np.zeros(5))

    def test_upload_and_download_are_doubled(self):
        algorithm = Scaffold()
        assert algorithm.upload_floats(100) == 200
        assert algorithm.download_floats(100) == 200

    def test_message_contains_two_vectors(self, problem_and_client, training_config):
        problem, client = problem_and_client
        algorithm = Scaffold()
        theta = problem.model.get_flat_params()
        state = algorithm.init_server_state(theta, 8)
        message = algorithm.local_update(problem, client, theta, state, training_config, rng=0)
        assert set(message.payload) == {"delta_params", "delta_control"}
        assert message.upload_floats == 2 * theta.size

    def test_aggregate_updates_server_control(self, problem_and_client, training_config):
        problem, client = problem_and_client
        algorithm = Scaffold()
        theta = problem.model.get_flat_params()
        state = algorithm.init_server_state(theta, 8)
        message = algorithm.local_update(problem, client, theta, state, training_config, rng=0)
        new_theta = algorithm.aggregate(theta, state, [message], 8, 0)
        assert not np.allclose(new_theta, theta)
        assert np.linalg.norm(state["control"]) > 0

    def test_control_refresh_option_two_identity(self, problem_and_client, training_config):
        """Option II: c_i+ = c_i - c + (theta - w)/(K*lr)."""
        problem, client = problem_and_client
        algorithm = Scaffold()
        theta = problem.model.get_flat_params()
        state = algorithm.init_server_state(theta, 8)
        message = algorithm.local_update(problem, client, theta, state, training_config, rng=0)
        new_params = theta + message.payload["delta_params"]
        steps = int(np.ceil(client.num_samples / training_config.batch_size)) * training_config.epochs
        expected_control = (theta - new_params) / (steps * training_config.learning_rate)
        assert np.allclose(client.get("control"), expected_control)


class TestFedPD:
    def test_holds_primal_dual_pair(self, problem_and_client, training_config):
        problem, client = problem_and_client
        algorithm = FedPD(rho=0.1)
        theta = problem.model.get_flat_params()
        algorithm.local_update(problem, client, theta, {}, training_config, rng=0)
        assert client.has("w") and client.has("y")

    def test_aggregate_averages_augmented_models(self):
        algorithm = FedPD(rho=0.5, communication_probability=1.0)
        messages = [
            _message({"augmented_model": np.array([1.0, 1.0])}),
            _message({"augmented_model": np.array([3.0, 5.0])}, client_id=1),
        ]
        assert np.allclose(algorithm.aggregate(np.zeros(2), {}, messages, 2, 0), [2.0, 3.0])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FedPD(rho=0.0)
        with pytest.raises(ConfigurationError):
            FedPD(communication_probability=0.0)


class TestFedADMM:
    def test_client_state_initialised_per_paper(self, problem_and_client):
        _, client = problem_and_client
        algorithm = FedADMM(rho=0.1)
        theta = np.arange(4, dtype=float)
        algorithm.init_client_state(client, theta)
        assert np.array_equal(client.get("w"), theta)
        assert np.array_equal(client.get("y"), np.zeros(4))

    def test_local_update_stores_new_state_and_uploads_one_vector(
        self, problem_and_client, training_config
    ):
        problem, client = problem_and_client
        algorithm = FedADMM(rho=0.1)
        theta = problem.model.get_flat_params()
        message = algorithm.local_update(problem, client, theta, {}, training_config, rng=0)
        assert set(message.payload) == {"delta"}
        assert message.upload_floats == theta.size  # same cost as FedAvg/Prox
        assert np.allclose(
            client.get("y"), 0 + 0.1 * (client.get("w") - theta)
        )

    def test_duals_accumulate_across_participations(self, problem_and_client, training_config):
        problem, client = problem_and_client
        algorithm = FedADMM(rho=0.5)
        theta = problem.model.get_flat_params()
        algorithm.local_update(problem, client, theta, {}, training_config, round_index=0, rng=0)
        y_after_first = client.get("y").copy()
        algorithm.local_update(problem, client, theta, {}, training_config, round_index=1, rng=1)
        assert not np.allclose(client.get("y"), y_after_first)

    def test_aggregate_tracking_update(self):
        algorithm = FedADMM(rho=0.1, server_step_size=1.0)
        theta = np.zeros(2)
        messages = [
            _message({"delta": np.array([2.0, 0.0])}),
            _message({"delta": np.array([0.0, 4.0])}, client_id=1),
        ]
        assert np.allclose(algorithm.aggregate(theta, {}, messages, 20, 0), [1.0, 2.0])

    def test_participation_scaled_step_size(self):
        algorithm = FedADMM(rho=0.1, server_step_size="participation")
        assert isinstance(algorithm.step_size_policy, ParticipationScaledStepSize)
        theta = np.zeros(1)
        messages = [_message({"delta": np.array([10.0])})]
        # eta = |S|/m = 1/10 -> update is mean(delta) * 0.1 = 1.0
        assert np.allclose(algorithm.aggregate(theta, {}, messages, 10, 0), [1.0])

    def test_rho_schedule_is_used(self, problem_and_client, training_config):
        problem, client = problem_and_client
        schedule = PiecewiseRho(values=[0.01, 1.0], boundaries=[5])
        algorithm = FedADMM(rho=schedule)
        theta = problem.model.get_flat_params()
        early = algorithm.local_update(
            problem, client, theta, {}, training_config, round_index=0, rng=0
        )
        late = algorithm.local_update(
            problem, client, theta, {}, training_config, round_index=7, rng=0
        )
        assert early.metadata["rho"] == 0.01
        assert late.metadata["rho"] == 1.0

    def test_disable_duals_matches_fedprox_local_training(
        self, problem_and_client, training_config
    ):
        """Section III-B: with y == 0, FedADMM's local problem is FedProx's."""
        problem, client = problem_and_client
        theta = problem.model.get_flat_params()
        rho = 0.37
        admm = FedADMM(rho=rho, use_duals=False, warm_start=False)
        admm_msg = admm.local_update(problem, client, theta, {}, training_config, rng=999)
        prox = FedProx(rho=rho)
        prox_msg = prox.local_update(
            problem, ClientState(client_id=0, dataset=client.dataset), theta, {}, training_config, rng=999
        )
        assert np.allclose(client.get("w"), prox_msg.payload["params"])

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            FedADMM(rho="large")
        with pytest.raises(ConfigurationError):
            FedADMM(server_step_size="huge")
        with pytest.raises(ConfigurationError):
            FedADMM(rho=0.1).aggregate(np.zeros(2), {}, [], 10, 0)
