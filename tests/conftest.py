"""Shared fixtures: small, fast datasets, partitions, and models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import LocalTrainingConfig
from repro.datasets.synthetic import make_blobs
from repro.federated.client import build_clients
from repro.federated.local_problem import LocalProblem
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP, LogisticRegression
from repro.partition.iid import IidPartitioner
from repro.partition.shard import ShardPartitioner

NUM_CLASSES = 4
FEATURE_DIM = 12


@pytest.fixture(scope="session")
def blobs_split():
    """A small, well-separated 4-class Gaussian-mixture train/test split."""
    return make_blobs(
        n_train=480,
        n_test=160,
        num_classes=NUM_CLASSES,
        feature_dim=FEATURE_DIM,
        separation=2.5,
        noise_std=0.8,
        rng=0,
    )


@pytest.fixture(scope="session")
def iid_partition(blobs_split):
    """IID partition of the blobs training set across 8 clients."""
    return IidPartitioner().partition(blobs_split.train, num_clients=8, rng=0)


@pytest.fixture(scope="session")
def shard_partition(blobs_split):
    """Two-shard non-IID partition of the blobs training set across 8 clients."""
    return ShardPartitioner(shards_per_client=2).partition(
        blobs_split.train, num_clients=8, rng=0
    )


@pytest.fixture()
def iid_clients(blobs_split, iid_partition):
    """Fresh client states (no persisted variables) for the IID partition."""
    return build_clients(blobs_split.train, iid_partition)


@pytest.fixture()
def shard_clients(blobs_split, shard_partition):
    """Fresh client states for the shard (non-IID) partition."""
    return build_clients(blobs_split.train, shard_partition)


def make_model(seed: int = 0) -> MLP:
    """A small MLP matched to the blobs fixture."""
    return MLP(
        input_dim=FEATURE_DIM,
        hidden_dims=(16,),
        num_classes=NUM_CLASSES,
        rng=np.random.default_rng(seed),
    )


def make_linear_model(seed: int = 0) -> LogisticRegression:
    """A logistic-regression model matched to the blobs fixture."""
    return LogisticRegression(
        input_dim=FEATURE_DIM, num_classes=NUM_CLASSES, rng=np.random.default_rng(seed)
    )


@pytest.fixture()
def small_model():
    """Fresh small MLP per test."""
    return make_model(seed=0)


@pytest.fixture()
def local_problem(blobs_split, iid_partition, small_model):
    """A LocalProblem for client 0 of the IID partition."""
    dataset = iid_partition.client_dataset(blobs_split.train, 0)
    return LocalProblem(model=small_model, loss=CrossEntropyLoss(), dataset=dataset)


@pytest.fixture()
def training_config():
    """A small local-training configuration shared by algorithm tests."""
    return LocalTrainingConfig(epochs=2, batch_size=16, learning_rate=0.1)
