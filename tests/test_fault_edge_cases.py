"""Edge cases of the fault path: fully-abandoned rounds and extreme knobs.

A round where *every* sampled client crashes or misses the deadline must:

* leave the global parameters bit-identical (no aggregation happened),
* still charge the download bytes (the model was shipped before the
  faults struck),
* record an abandoned round — all selected clients listed as dropped,
  ``num_aggregated == 0``, NaN train loss — without dividing by zero.

The extreme knob values are legal configurations: ``dropout_rate=1.0``
(certain crash) and ``deadline_s=0.0`` (nobody can make an instant
deadline) both produce an endless sequence of abandoned rounds in the
synchronous engine rather than an error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentConfig
from repro.federated.engine import FederatedSimulation
from repro.federated.messages import BYTES_PER_FLOAT
from repro.systems.faults import FaultInjector
from repro.systems.network import HomogeneousNetwork

from conftest import make_model


def make_sim(clients, test_dataset, faults, *, network=None, algorithm="fedavg"):
    kwargs = {"rho": 0.3} if algorithm in ("fedadmm", "fedprox") else {}
    return FederatedSimulation(
        algorithm=build_algorithm(algorithm, **kwargs),
        model=make_model(seed=0),
        clients=clients,
        test_dataset=test_dataset,
        batch_size=16,
        learning_rate=0.1,
        seed=5,
        faults=faults,
        network=network,
    )


class TestFullyAbandonedRounds:
    @pytest.mark.parametrize("algorithm", ["fedavg", "fedadmm"])
    def test_certain_dropout_leaves_parameters_unchanged(
        self, iid_clients, blobs_split, algorithm
    ):
        sim = make_sim(
            iid_clients, blobs_split.test,
            FaultInjector(dropout_rate=1.0),
            algorithm=algorithm,
        )
        before = np.array(sim.global_params, copy=True)
        record = sim.run_round()
        np.testing.assert_array_equal(sim.global_params, before)
        assert record.num_dropped == record.num_selected > 0
        assert record.num_aggregated == 0
        assert np.isnan(record.train_loss)

    def test_abandoned_round_still_charges_downloads(
        self, iid_clients, blobs_split
    ):
        sim = make_sim(
            iid_clients, blobs_split.test, FaultInjector(dropout_rate=1.0)
        )
        record = sim.run_round()
        dim = sim.global_params.size
        assert record.download_floats == record.num_selected * dim
        assert record.download_wire_bytes == record.download_floats * BYTES_PER_FLOAT
        assert record.upload_floats == 0
        assert record.upload_wire_bytes == 0
        assert sim.ledger.download_floats == record.download_floats

    def test_zero_deadline_abandons_every_round(self, iid_clients, blobs_split):
        sim = make_sim(
            iid_clients, blobs_split.test,
            FaultInjector(deadline_s=0.0),
            network=HomogeneousNetwork(),
        )
        before = np.array(sim.global_params, copy=True)
        result = sim.run(3)
        np.testing.assert_array_equal(result.final_params, before)
        assert result.history.total_dropped() == sum(
            rec.num_selected for rec in result.history.records
        )
        # The server closes each round exactly at the (zero) deadline.
        assert (result.history.simulated_seconds == 0.0).all()

    def test_certain_dropout_full_run_records_all_rounds(
        self, iid_clients, blobs_split
    ):
        sim = make_sim(
            iid_clients, blobs_split.test, FaultInjector(dropout_rate=1.0)
        )
        result = sim.run(4)
        assert result.rounds_run == 4
        assert len(result.history) == 4
        # Evaluation still runs on the (unchanged) model: accuracy is defined.
        assert result.final_evaluation is not None
        assert not np.isnan(result.history.final_accuracy())

    def test_client_state_never_advances_when_all_crash(
        self, iid_clients, blobs_split
    ):
        sim = make_sim(
            iid_clients, blobs_split.test,
            FaultInjector(dropout_rate=1.0),
            algorithm="fedadmm",
        )
        sim.run(2)
        for client in sim.clients:
            assert client.rounds_participated == 0


class TestExtremeKnobValidation:
    def test_dropout_one_is_a_legal_config(self):
        config = ExperimentConfig(name="edge", dropout=1.0)
        assert config.dropout == 1.0

    def test_deadline_zero_is_a_legal_config(self):
        config = ExperimentConfig(name="edge", deadline_s=0.0, network="homogeneous")
        assert config.deadline_s == 0.0

    def test_out_of_range_still_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(name="edge", dropout=1.01)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(name="edge", dropout=-0.01)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(name="edge", deadline_s=-0.5)

    def test_injector_extremes_no_division(self):
        injector = FaultInjector(dropout_rate=1.0, deadline_s=0.0)
        assert injector.crashes(10, rng=0).all()
        assert injector.stragglers(np.full(10, 1e-9)).all()
        # Zero round times meet a zero deadline (> comparison, not >=).
        assert not injector.stragglers(np.zeros(3)).any()
        assert injector.active
