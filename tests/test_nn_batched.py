"""Direct unit tests for the stacked kernels in ``repro.nn.batched``.

The executor-level tests (``test_vectorized_executor.py``) cover the MLP +
cross-entropy path end to end; these exercise each kernel against its
serial counterpart — Tanh, Flatten, MSE, nested containers — and pin the
compilation rules (what :func:`build_batched_model` accepts and rejects).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.batched import (
    BatchedCohort,
    BatchedMSE,
    batched_run_local_sgd,
    build_batched_model,
)
from repro.nn.layers import Conv2D, Dropout, Flatten, Linear, Sequential, Tanh
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.models import MLP, LogisticRegression


def make_template(rng):
    """A model using every supported layer type, with a nested container."""
    return Sequential(
        Flatten(),
        Linear(6, 5, rng=rng),
        Tanh(),
        Sequential(Linear(5, 4, rng=rng), Tanh()),
        Linear(4, 3, rng=rng),
    )


def serial_loss_and_grad(model, loss, params, features, labels):
    model.set_flat_params(params)
    model.zero_grad()
    predictions = model.forward(features)
    value, grad_predictions = loss.value_and_grad(predictions, labels)
    model.backward(grad_predictions)
    return value, model.get_flat_grad()


class TestBatchedModelKernels:
    def test_stacked_loss_and_grad_matches_serial_per_client(self):
        rng = np.random.default_rng(0)
        model = make_template(rng)
        loss = CrossEntropyLoss()
        batched = build_batched_model(model, loss)
        assert batched is not None
        assert batched.dim == model.num_params

        cohort_size, n = 4, 9
        features = rng.normal(size=(cohort_size, n, 6))
        labels = rng.integers(0, 3, size=(cohort_size, n))
        params = rng.normal(size=(cohort_size, model.num_params))

        losses, grads = batched.loss_and_grad(params, features, labels)
        for c in range(cohort_size):
            value, grad = serial_loss_and_grad(
                model, loss, params[c], features[c], labels[c]
            )
            assert abs(losses[c] - value) < 1e-10
            np.testing.assert_allclose(grads[c], grad, atol=1e-10, rtol=0)

    def test_full_loss_and_grad_matches_chunked_serial(self):
        rng = np.random.default_rng(1)
        model = MLP(input_dim=6, hidden_dims=(5,), num_classes=3, rng=rng)
        loss = CrossEntropyLoss()
        batched = build_batched_model(model, loss)
        features = rng.normal(size=(3, 10, 6))
        labels = rng.integers(0, 3, size=(3, 10))
        shared = rng.normal(size=model.num_params)

        cohort = BatchedCohort(model=batched, features=features, labels=labels)
        losses, grads = cohort.full_loss_and_grad(shared, batch_size=4)
        for c in range(3):
            # Serial reference with the same chunk-weighted accumulation.
            total_loss, total_grad, count = 0.0, np.zeros(model.num_params), 0
            for start in range(0, 10, 4):
                x, y = features[c, start:start + 4], labels[c, start:start + 4]
                value, grad = serial_loss_and_grad(model, loss, shared, x, y)
                total_loss += value * len(y)
                total_grad += grad * len(y)
                count += len(y)
            assert abs(losses[c] - total_loss / count) < 1e-10
            np.testing.assert_allclose(
                grads[c], total_grad / count, atol=1e-10, rtol=0
            )

    def test_batched_mse_matches_serial(self):
        rng = np.random.default_rng(2)
        predictions = rng.normal(size=(3, 7, 2))
        targets = rng.normal(size=(3, 7, 2))
        batched = BatchedMSE()
        serial = MSELoss()
        losses, grads = batched.value_and_grad(predictions, targets)
        for c in range(3):
            value, grad = serial.value_and_grad(predictions[c], targets[c])
            assert abs(losses[c] - value) < 1e-12
            np.testing.assert_allclose(grads[c], grad, atol=1e-12, rtol=0)

    def test_sgd_with_extra_grad_matches_serial_updates(self):
        rng = np.random.default_rng(3)
        model = MLP(input_dim=6, hidden_dims=(5,), num_classes=3, rng=rng)
        batched = build_batched_model(model, CrossEntropyLoss())
        features = rng.normal(size=(2, 8, 6))
        labels = rng.integers(0, 3, size=(2, 8))
        start = rng.normal(size=(2, model.num_params))
        anchor = rng.normal(size=model.num_params)

        class Config:
            epochs = 2
            batch_size = None  # full batch: no orders needed
            learning_rate = 0.1

        cohort = BatchedCohort(model=batched, features=features, labels=labels)
        params, losses = batched_run_local_sgd(
            cohort, start, Config,
            extra_grad=lambda p: 0.5 * (p - anchor[None, :]),
        )
        # Serial reference: the same two full-batch steps per client.
        for c in range(2):
            w = start[c].copy()
            batch_losses = []
            for _ in range(2):
                value, grad = serial_loss_and_grad(
                    model, CrossEntropyLoss(), w, features[c], labels[c]
                )
                batch_losses.append(value)
                w -= 0.1 * (grad + 0.5 * (w - anchor))
            np.testing.assert_allclose(params[c], w, atol=1e-10, rtol=0)
            assert abs(losses[c] - np.mean(batch_losses)) < 1e-10


class TestCompilationRules:
    def test_supported_models_compile(self):
        rng = np.random.default_rng(0)
        for model in (
            MLP(input_dim=4, hidden_dims=(3,), num_classes=2, rng=rng),
            LogisticRegression(input_dim=4, num_classes=2, rng=rng),
            make_template(rng),
        ):
            assert build_batched_model(model, CrossEntropyLoss()) is not None

    def test_non_sequential_module_is_rejected(self):
        assert build_batched_model(Linear(3, 2), CrossEntropyLoss()) is None

    def test_convolutional_model_is_rejected(self):
        model = Sequential(Conv2D(1, 2, kernel_size=3), Flatten())
        assert build_batched_model(model, CrossEntropyLoss()) is None

    def test_dropout_is_rejected(self):
        model = Sequential(Linear(4, 3), Dropout(0.5), Linear(3, 2))
        assert build_batched_model(model, CrossEntropyLoss()) is None

    def test_loss_subclass_is_rejected(self):
        class TweakedLoss(CrossEntropyLoss):
            def value_and_grad(self, predictions, targets):  # pragma: no cover
                return super().value_and_grad(predictions, targets)

        model = MLP(input_dim=4, hidden_dims=(3,), num_classes=2,
                    rng=np.random.default_rng(0))
        assert build_batched_model(model, TweakedLoss()) is None

    def test_mse_loss_is_supported(self):
        model = LogisticRegression(input_dim=4, num_classes=2,
                                   rng=np.random.default_rng(0))
        assert build_batched_model(model, MSELoss()) is not None

    def test_shape_errors_on_mismatched_input(self):
        from repro.exceptions import ShapeError

        model = MLP(input_dim=4, hidden_dims=(3,), num_classes=2,
                    rng=np.random.default_rng(0))
        batched = build_batched_model(model, CrossEntropyLoss())
        params = np.zeros((2, model.num_params))
        with pytest.raises(ShapeError):
            batched.loss_and_grad(
                params, np.zeros((2, 5, 7)), np.zeros((2, 5), dtype=np.int64)
            )
