"""Direct unit tests for the stacked kernels in ``repro.nn.batched``.

The executor-level tests (``test_vectorized_executor.py``) cover the MLP +
cross-entropy path end to end; these exercise each kernel against its
serial counterpart — Tanh, Flatten, MSE, nested containers — and pin the
compilation rules (what :func:`build_batched_model` accepts and rejects).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.batched import (
    BatchedCohort,
    BatchedMSE,
    batched_run_local_sgd,
    build_batched_model,
)
from repro.nn.layers import (
    Conv2D,
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.models import MLP, LogisticRegression, SmallCNN, _ImageReshape
from repro.nn.module import Module


def make_template(rng):
    """A model using every supported layer type, with a nested container."""
    return Sequential(
        Flatten(),
        Linear(6, 5, rng=rng),
        Tanh(),
        Sequential(Linear(5, 4, rng=rng), Tanh()),
        Linear(4, 3, rng=rng),
    )


def serial_loss_and_grad(model, loss, params, features, labels):
    model.set_flat_params(params)
    model.zero_grad()
    predictions = model.forward(features)
    value, grad_predictions = loss.value_and_grad(predictions, labels)
    model.backward(grad_predictions)
    return value, model.get_flat_grad()


class TestBatchedModelKernels:
    def test_stacked_loss_and_grad_matches_serial_per_client(self):
        rng = np.random.default_rng(0)
        model = make_template(rng)
        loss = CrossEntropyLoss()
        batched = build_batched_model(model, loss)
        assert batched is not None
        assert batched.dim == model.num_params

        cohort_size, n = 4, 9
        features = rng.normal(size=(cohort_size, n, 6))
        labels = rng.integers(0, 3, size=(cohort_size, n))
        params = rng.normal(size=(cohort_size, model.num_params))

        losses, grads = batched.loss_and_grad(params, features, labels)
        for c in range(cohort_size):
            value, grad = serial_loss_and_grad(
                model, loss, params[c], features[c], labels[c]
            )
            assert abs(losses[c] - value) < 1e-10
            np.testing.assert_allclose(grads[c], grad, atol=1e-10, rtol=0)

    def test_full_loss_and_grad_matches_chunked_serial(self):
        rng = np.random.default_rng(1)
        model = MLP(input_dim=6, hidden_dims=(5,), num_classes=3, rng=rng)
        loss = CrossEntropyLoss()
        batched = build_batched_model(model, loss)
        features = rng.normal(size=(3, 10, 6))
        labels = rng.integers(0, 3, size=(3, 10))
        shared = rng.normal(size=model.num_params)

        cohort = BatchedCohort(model=batched, features=features, labels=labels)
        losses, grads = cohort.full_loss_and_grad(shared, batch_size=4)
        for c in range(3):
            # Serial reference with the same chunk-weighted accumulation.
            total_loss, total_grad, count = 0.0, np.zeros(model.num_params), 0
            for start in range(0, 10, 4):
                x, y = features[c, start:start + 4], labels[c, start:start + 4]
                value, grad = serial_loss_and_grad(model, loss, shared, x, y)
                total_loss += value * len(y)
                total_grad += grad * len(y)
                count += len(y)
            assert abs(losses[c] - total_loss / count) < 1e-10
            np.testing.assert_allclose(
                grads[c], total_grad / count, atol=1e-10, rtol=0
            )

    def test_batched_mse_matches_serial(self):
        rng = np.random.default_rng(2)
        predictions = rng.normal(size=(3, 7, 2))
        targets = rng.normal(size=(3, 7, 2))
        batched = BatchedMSE()
        serial = MSELoss()
        losses, grads = batched.value_and_grad(predictions, targets)
        for c in range(3):
            value, grad = serial.value_and_grad(predictions[c], targets[c])
            assert abs(losses[c] - value) < 1e-12
            np.testing.assert_allclose(grads[c], grad, atol=1e-12, rtol=0)

    def test_sgd_with_extra_grad_matches_serial_updates(self):
        rng = np.random.default_rng(3)
        model = MLP(input_dim=6, hidden_dims=(5,), num_classes=3, rng=rng)
        batched = build_batched_model(model, CrossEntropyLoss())
        features = rng.normal(size=(2, 8, 6))
        labels = rng.integers(0, 3, size=(2, 8))
        start = rng.normal(size=(2, model.num_params))
        anchor = rng.normal(size=model.num_params)

        class Config:
            epochs = 2
            batch_size = None  # full batch: no orders needed
            learning_rate = 0.1

        cohort = BatchedCohort(model=batched, features=features, labels=labels)
        params, losses = batched_run_local_sgd(
            cohort, start, Config,
            extra_grad=lambda p: 0.5 * (p - anchor[None, :]),
        )
        # Serial reference: the same two full-batch steps per client.
        for c in range(2):
            w = start[c].copy()
            batch_losses = []
            for _ in range(2):
                value, grad = serial_loss_and_grad(
                    model, CrossEntropyLoss(), w, features[c], labels[c]
                )
                batch_losses.append(value)
                w -= 0.1 * (grad + 0.5 * (w - anchor))
            np.testing.assert_allclose(params[c], w, atol=1e-10, rtol=0)
            assert abs(losses[c] - np.mean(batch_losses)) < 1e-10


class TestCompilationRules:
    def test_supported_models_compile(self):
        rng = np.random.default_rng(0)
        for model in (
            MLP(input_dim=4, hidden_dims=(3,), num_classes=2, rng=rng),
            LogisticRegression(input_dim=4, num_classes=2, rng=rng),
            make_template(rng),
        ):
            assert build_batched_model(model, CrossEntropyLoss()) is not None

    def test_non_sequential_module_is_rejected(self):
        assert build_batched_model(Linear(3, 2), CrossEntropyLoss()) is None

    def test_convolutional_model_compiles(self):
        rng = np.random.default_rng(0)
        model = SmallCNN(rng=rng, channels=1, image_size=8,
                         conv_channels=(2, 3), hidden=5, num_classes=2)
        batched = build_batched_model(model, CrossEntropyLoss())
        assert batched is not None
        assert batched.dim == model.num_params

    def test_dropout_model_compiles(self):
        model = Sequential(Linear(4, 3), Dropout(0.5), Linear(3, 2))
        batched = build_batched_model(model, CrossEntropyLoss())
        assert batched is not None
        assert batched.has_dropout

    def test_custom_layer_is_rejected(self):
        class Scaler(Module):
            def forward(self, x):  # pragma: no cover - never run
                return 2.0 * x

        model = Sequential(Linear(4, 3), Scaler(), Linear(3, 2))
        assert build_batched_model(model, CrossEntropyLoss()) is None

    def test_loss_subclass_is_rejected(self):
        class TweakedLoss(CrossEntropyLoss):
            def value_and_grad(self, predictions, targets):  # pragma: no cover
                return super().value_and_grad(predictions, targets)

        model = MLP(input_dim=4, hidden_dims=(3,), num_classes=2,
                    rng=np.random.default_rng(0))
        assert build_batched_model(model, TweakedLoss()) is None

    def test_mse_loss_is_supported(self):
        model = LogisticRegression(input_dim=4, num_classes=2,
                                   rng=np.random.default_rng(0))
        assert build_batched_model(model, MSELoss()) is not None

    def test_shape_errors_on_mismatched_input(self):
        from repro.exceptions import ShapeError

        model = MLP(input_dim=4, hidden_dims=(3,), num_classes=2,
                    rng=np.random.default_rng(0))
        batched = build_batched_model(model, CrossEntropyLoss())
        params = np.zeros((2, model.num_params))
        with pytest.raises(ShapeError):
            batched.loss_and_grad(
                params, np.zeros((2, 5, 7)), np.zeros((2, 5), dtype=np.int64)
            )


class TestConvKernels:
    """The im2col conv/pool stack against the serial layers, per client."""

    def test_conv_pool_stack_matches_serial_per_client(self):
        rng = np.random.default_rng(4)
        model = Sequential(
            _ImageReshape(1, 6, 6),
            Conv2D(1, 2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Linear(2 * 3 * 3, 3, rng=rng),
        )
        loss = CrossEntropyLoss()
        batched = build_batched_model(model, loss)
        assert batched is not None and batched.dim == model.num_params

        cohort_size, n = 3, 5
        features = rng.normal(size=(cohort_size, n, 36))
        labels = rng.integers(0, 3, size=(cohort_size, n))
        params = 0.3 * rng.normal(size=(cohort_size, model.num_params))

        losses, grads = batched.loss_and_grad(params, features, labels)
        for c in range(cohort_size):
            value, grad = serial_loss_and_grad(
                model, loss, params[c], features[c], labels[c]
            )
            assert abs(losses[c] - value) < 1e-10
            np.testing.assert_allclose(grads[c], grad, atol=1e-10, rtol=0)

    def test_small_cnn_matches_serial_per_client(self):
        rng = np.random.default_rng(5)
        model = SmallCNN(rng=rng, channels=1, image_size=8,
                         conv_channels=(2, 3), hidden=6, num_classes=3)
        loss = CrossEntropyLoss()
        batched = build_batched_model(model, loss)
        assert batched is not None

        cohort_size, n = 2, 4
        features = rng.normal(size=(cohort_size, n, 64))
        labels = rng.integers(0, 3, size=(cohort_size, n))
        params = 0.3 * rng.normal(size=(cohort_size, model.num_params))

        losses, grads = batched.loss_and_grad(params, features, labels)
        for c in range(cohort_size):
            value, grad = serial_loss_and_grad(
                model, loss, params[c], features[c], labels[c]
            )
            assert abs(losses[c] - value) < 1e-10
            np.testing.assert_allclose(grads[c], grad, atol=1e-10, rtol=0)

    def test_strided_unpadded_conv_matches_serial(self):
        rng = np.random.default_rng(6)
        model = Sequential(
            _ImageReshape(2, 5, 5),
            Conv2D(2, 3, kernel_size=3, stride=2, padding=0, rng=rng),
            Flatten(),
            Linear(3 * 2 * 2, 2, rng=rng),
        )
        loss = MSELoss()
        batched = build_batched_model(model, loss)
        assert batched is not None

        features = rng.normal(size=(2, 3, 50))
        targets = rng.normal(size=(2, 3, 2))
        params = 0.3 * rng.normal(size=(2, model.num_params))
        losses, grads = batched.loss_and_grad(params, features, targets)
        for c in range(2):
            value, grad = serial_loss_and_grad(
                model, loss, params[c], features[c], targets[c]
            )
            assert abs(losses[c] - value) < 1e-10
            np.testing.assert_allclose(grads[c], grad, atol=1e-10, rtol=0)


class TestBatchedDropout:
    def _template(self, rate=0.5):
        rng = np.random.default_rng(7)
        return Sequential(
            Linear(6, 5, rng=rng), Dropout(rate), Linear(5, 3, rng=rng)
        )

    def test_reseeded_clones_are_deterministic(self):
        batched = build_batched_model(self._template(), CrossEntropyLoss())
        rng = np.random.default_rng(8)
        features = rng.normal(size=(3, 9, 6))
        labels = rng.integers(0, 3, size=(3, 9))
        params = rng.normal(size=(3, batched.dim))

        a, b = batched.clone(), batched.clone()
        a.reseed_dropout(123)
        b.reseed_dropout(123)
        losses_a, grads_a = a.loss_and_grad(params, features, labels)
        losses_b, grads_b = b.loss_and_grad(params, features, labels)
        np.testing.assert_array_equal(losses_a, losses_b)
        np.testing.assert_array_equal(grads_a, grads_b)

        # A different seed draws different masks.
        c = batched.clone()
        c.reseed_dropout(124)
        losses_c, _ = c.loss_and_grad(params, features, labels)
        assert not np.array_equal(losses_a, losses_c)

    def test_masks_differ_per_client(self):
        batched = build_batched_model(self._template(), CrossEntropyLoss())
        batched.reseed_dropout(0)
        rng = np.random.default_rng(9)
        # Identical params/features for every client: any per-client output
        # difference can only come from per-client dropout masks.
        features = np.broadcast_to(rng.normal(size=(1, 8, 6)), (4, 8, 6)).copy()
        labels = np.broadcast_to(rng.integers(0, 3, size=(1, 8)), (4, 8)).copy()
        params = np.broadcast_to(rng.normal(size=batched.dim), (4, batched.dim)).copy()
        losses, _ = batched.loss_and_grad(params, features, labels)
        assert len(np.unique(losses)) > 1

    def test_eval_mode_matches_serial_model(self):
        template = self._template()
        batched = build_batched_model(template, CrossEntropyLoss()).eval()
        template.eval()
        rng = np.random.default_rng(10)
        features = rng.normal(size=(2, 7, 6))
        labels = rng.integers(0, 3, size=(2, 7))
        params = rng.normal(size=(2, batched.dim))
        losses, grads = batched.loss_and_grad(params, features, labels)
        for c in range(2):
            value, grad = serial_loss_and_grad(
                template, CrossEntropyLoss(), params[c], features[c], labels[c]
            )
            assert abs(losses[c] - value) < 1e-10
            np.testing.assert_allclose(grads[c], grad, atol=1e-10, rtol=0)


class TestWorkspaceReuse:
    """The reused (C, dim) gradient buffer must never corrupt results."""

    def _setup(self):
        rng = np.random.default_rng(11)
        model = MLP(input_dim=6, hidden_dims=(5,), num_classes=3, rng=rng)
        batched = build_batched_model(model, CrossEntropyLoss())
        make = lambda seed: (  # noqa: E731 - tiny local factory
            np.random.default_rng(seed).normal(size=(3, 8, 6)),
            np.random.default_rng(seed + 1).integers(0, 3, size=(3, 8)),
            np.random.default_rng(seed + 2).normal(size=(3, model.num_params)),
        )
        return batched, make

    def test_sequential_cohorts_share_the_buffer_without_corruption(self):
        batched, make = self._setup()
        xa, ya, pa = make(0)
        xb, yb, pb = make(100)

        _, grads_a = batched.loss_and_grad(pa, xa, ya)
        saved_a = grads_a.copy()
        _, grads_b = batched.loss_and_grad(pb, xb, yb)

        # Same cohort size -> the very same workspace buffer, now holding
        # cohort B's gradients (the documented ownership contract).
        assert grads_b is grads_a

        fresh = batched.clone()
        _, ref_a = fresh.loss_and_grad(pa, xa, ya)
        np.testing.assert_allclose(saved_a, ref_a, atol=0, rtol=0)
        fresh_b = batched.clone()
        _, ref_b = fresh_b.loss_and_grad(pb, xb, yb)
        # B computed into A's dirty (unzeroed) buffer must equal B computed
        # into a fresh buffer: every backward assigns its full slice.
        np.testing.assert_allclose(grads_b, ref_b, atol=0, rtol=0)

    def test_clones_have_independent_workspaces(self):
        batched, make = self._setup()
        a, b = batched.clone(), batched.clone()
        xa, ya, pa = make(0)
        xb, yb, pb = make(100)
        _, grads_a = a.loss_and_grad(pa, xa, ya)
        _, grads_b = b.loss_and_grad(pb, xb, yb)
        assert grads_a is not grads_b
        # a's buffer still holds a's result after b ran.
        _, ref_a = batched.clone().loss_and_grad(pa, xa, ya)
        np.testing.assert_allclose(grads_a, ref_a, atol=0, rtol=0)

    def test_distinct_cohort_sizes_get_distinct_buffers(self):
        batched, make = self._setup()
        xa, ya, pa = make(0)
        _, grads_small = batched.loss_and_grad(pa[:2], xa[:2], ya[:2])
        _, grads_full = batched.loss_and_grad(pa, xa, ya)
        assert grads_small.shape == (2, batched.dim)
        assert grads_full.shape == (3, batched.dim)
        assert grads_small is not grads_full
