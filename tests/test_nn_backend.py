"""The pluggable array-backend seam (``repro.nn.backend``).

Covers the selection chain (explicit name > ``REPRO_BACKEND`` env var >
numpy default), registry hygiene, the import guard on optional backends,
and that a custom backend really is what the compiled batched model calls
through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.backend import (
    BACKEND_ENV_VAR,
    BACKEND_REGISTRY,
    Backend,
    NumpyBackend,
    available_backends,
    build_backend,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.nn.batched import build_batched_model
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLP


class TestSelectionChain:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend_name() == "numpy"
        assert isinstance(build_backend(), NumpyBackend)

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "torch")
        assert resolve_backend_name() == "torch"

    def test_explicit_name_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "torch")
        assert resolve_backend_name("numpy") == "numpy"
        assert isinstance(build_backend("numpy"), NumpyBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            build_backend("no-such-backend")

    def test_get_backend_is_build_backend(self):
        assert type(get_backend("numpy")) is type(build_backend("numpy"))


class TestRegistry:
    def test_registry_always_lists_optional_backends(self):
        # torch is registered whether or not it is importable, so
        # `--backend torch` parses everywhere; building it without the
        # library raises the guard error instead.
        assert "numpy" in BACKEND_REGISTRY
        assert "torch" in BACKEND_REGISTRY

    def test_torch_backend_import_guard(self):
        try:
            import torch  # noqa: F401
        except ImportError:
            with pytest.raises(ConfigurationError, match="torch"):
                build_backend("torch")
        else:  # pragma: no cover - only on machines with torch
            backend = build_backend("torch")
            a = np.arange(6.0).reshape(2, 3)
            b = np.arange(12.0).reshape(3, 4)
            np.testing.assert_allclose(backend.matmul(a, b), a @ b)

    def test_available_backends_probes_factories(self):
        names = available_backends()
        assert "numpy" in names
        try:
            import torch  # noqa: F401
        except ImportError:
            assert "torch" not in names

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_register_backend_adds_buildable_entry(self):
        class Doubling(NumpyBackend):
            name = "doubling-test"

        register_backend("doubling-test", Doubling)
        try:
            assert isinstance(build_backend("doubling-test"), Doubling)
            assert "doubling-test" in available_backends()
        finally:
            del BACKEND_REGISTRY["doubling-test"]


class CountingBackend(NumpyBackend):
    """Numpy semantics plus call counting: proves the seam is exercised."""

    name = "counting"

    def __init__(self) -> None:
        self.calls: dict[str, int] = {}

    def _count(self, op: str) -> None:
        self.calls[op] = self.calls.get(op, 0) + 1

    def matmul(self, a, b):
        self._count("matmul")
        return super().matmul(a, b)

    def tanh(self, x):
        self._count("tanh")
        return super().tanh(x)

    def softmax(self, logits):
        self._count("softmax")
        return super().softmax(logits)

    def log_softmax(self, logits):
        self._count("log_softmax")
        return super().log_softmax(logits)


class TestKernelsCallThroughTheSeam:
    def test_batched_model_routes_math_through_backend(self):
        backend = CountingBackend()
        model = MLP(input_dim=6, hidden_dims=(5,), num_classes=3,
                    rng=np.random.default_rng(0))
        batched = build_batched_model(model, CrossEntropyLoss(), backend=backend)
        assert batched is not None
        assert batched.backend is backend

        rng = np.random.default_rng(1)
        params = rng.normal(size=(2, model.num_params))
        features = rng.normal(size=(2, 8, 6))
        labels = rng.integers(0, 3, size=(2, 8))
        batched.loss_and_grad(params, features, labels)
        # Forward (2 linear) + backward (4: two weight-grad, two input-grad)
        # matmuls, plus the fused softmax pair from the loss.
        assert backend.calls["matmul"] >= 4
        assert backend.calls["softmax"] == 1
        assert backend.calls["log_softmax"] == 1

    def test_counting_backend_is_bit_identical_to_numpy(self):
        model = MLP(input_dim=6, hidden_dims=(5,), num_classes=3,
                    rng=np.random.default_rng(0))
        default = build_batched_model(model, CrossEntropyLoss())
        counted = build_batched_model(
            model, CrossEntropyLoss(), backend=CountingBackend()
        )
        rng = np.random.default_rng(2)
        params = rng.normal(size=(3, model.num_params))
        features = rng.normal(size=(3, 7, 6))
        labels = rng.integers(0, 3, size=(3, 7))
        losses_a, grads_a = default.loss_and_grad(params, features, labels)
        losses_b, grads_b = counted.loss_and_grad(params, features, labels)
        np.testing.assert_array_equal(losses_a, losses_b)
        np.testing.assert_array_equal(grads_a, grads_b)


class TestBaseContract:
    def test_base_backend_reference_semantics(self):
        backend = Backend()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 4))
        np.testing.assert_array_equal(backend.tanh(x), np.tanh(x))
        np.testing.assert_array_equal(backend.exp(x), np.exp(x))
        np.testing.assert_array_equal(
            backend.where(x > 0, x, 0.0), np.where(x > 0, x, 0.0)
        )
        np.testing.assert_array_equal(backend.multiply(x, x), x * x)
        np.testing.assert_array_equal(backend.sum(x, axis=1), x.sum(axis=1))
        np.testing.assert_array_equal(backend.mean(x, axis=1), x.mean(axis=1))
        np.testing.assert_array_equal(
            backend.einsum("cij,cjk->cik", x, rng.normal(size=(2, 4, 5))).shape,
            (2, 3, 5),
        )
        assert backend.zeros((2, 2)).dtype == np.float64
        assert backend.empty((2, 2)).shape == (2, 2)

    def test_config_rejects_unknown_backend(self):
        from repro.experiments.configs import ExperimentConfig

        with pytest.raises(ConfigurationError, match="unknown backend"):
            ExperimentConfig(name="x", backend="no-such-backend")
        config = ExperimentConfig(name="x", backend="numpy")
        assert config.backend == "numpy"
