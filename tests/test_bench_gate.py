"""The benchmark-regression gate: compare_to_baseline semantics.

These tests pin the behaviour CI relies on (see the ``bench-gate`` job in
``.github/workflows/ci.yml``): a >20% regression on any gated metric
fails, smaller drifts pass, a gated benchmark that silently stops running
fails, and machine-dependent metrics stripped from the baselines are never
compared.  The injected-25%-slowdown case is the committed, rerunnable
form of the one-off verification done when the gate was added.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_utils import compare_to_baseline, metric_direction  # noqa: E402
from refresh_baselines import strip_machine_dependent  # noqa: E402


BASELINE = {
    "bench": "vectorized_clients",
    "num_clients": 64,
    "fedavg": {"speedup": 5.0, "final_accuracy": 0.95},
    "rows": [{"algorithm": "fedavg", "rounds_to_target": 10}],
}


@pytest.fixture
def gate_dirs(tmp_path):
    baselines = tmp_path / "baselines"
    results = tmp_path / "results"
    baselines.mkdir()
    results.mkdir()
    (baselines / "BENCH_vectorized_clients.json").write_text(
        json.dumps(BASELINE)
    )
    return results, baselines


def write_result(results: Path, **changes):
    payload = json.loads(json.dumps(BASELINE))  # deep copy
    for key, value in changes.items():
        node = payload
        *parents, leaf = key.split(".")
        for part in parents:
            node = node[int(part)] if part.isdigit() else node[part]
        node[leaf] = value
    (results / "BENCH_vectorized_clients.json").write_text(json.dumps(payload))


class TestCompareToBaseline:
    def test_identical_results_pass(self, gate_dirs):
        results, baselines = gate_dirs
        write_result(results)
        assert compare_to_baseline(results, baselines) == []

    def test_injected_25_percent_slowdown_fails(self, gate_dirs):
        # The acceptance check for the gate: a 25% hit to the headline
        # speedup metric must fail at the default 20% tolerance.
        results, baselines = gate_dirs
        write_result(results, **{"fedavg.speedup": 5.0 / 1.25})
        failures = compare_to_baseline(results, baselines)
        assert len(failures) == 1
        assert "fedavg.speedup" in failures[0]

    def test_10_percent_drift_passes(self, gate_dirs):
        results, baselines = gate_dirs
        write_result(results, **{"fedavg.speedup": 4.5})
        assert compare_to_baseline(results, baselines) == []

    def test_accuracy_drop_fails_and_gain_passes(self, gate_dirs):
        results, baselines = gate_dirs
        write_result(results, **{"fedavg.final_accuracy": 0.70})
        assert any(
            "final_accuracy" in line
            for line in compare_to_baseline(results, baselines)
        )
        write_result(results, **{"fedavg.final_accuracy": 0.99})
        assert compare_to_baseline(results, baselines) == []

    def test_rounds_to_target_growth_fails_inside_lists(self, gate_dirs):
        results, baselines = gate_dirs
        write_result(results, **{"rows.0.rounds_to_target": 13})
        failures = compare_to_baseline(results, baselines)
        assert any("rows.0.rounds_to_target" in line for line in failures)

    def test_missing_current_result_fails(self, gate_dirs):
        results, baselines = gate_dirs  # nothing written to results/
        failures = compare_to_baseline(results, baselines)
        assert any("no fresh result" in line for line in failures)

    def test_empty_baselines_dir_fails(self, tmp_path):
        (tmp_path / "baselines").mkdir()
        (tmp_path / "results").mkdir()
        failures = compare_to_baseline(
            tmp_path / "results", tmp_path / "baselines"
        )
        assert any("no baselines" in line for line in failures)

    def test_ungated_metrics_never_fail(self, gate_dirs):
        # num_clients is informational; halving it must not trip the gate.
        results, baselines = gate_dirs
        write_result(results, num_clients=32)
        assert compare_to_baseline(results, baselines) == []

    def test_custom_tolerance(self, gate_dirs):
        results, baselines = gate_dirs
        write_result(results, **{"fedavg.speedup": 4.5})  # -10%
        assert compare_to_baseline(results, baselines, tolerance=0.05)

    def test_only_restricts_the_gate_to_named_baselines(self, gate_dirs):
        # The scale-smoke job runs a single benchmark: with --only, other
        # baselines lacking fresh results must not fail the gate.
        results, baselines = gate_dirs
        (baselines / "BENCH_scale.json").write_text(
            json.dumps({"bench": "scale", "points": [{"clients": 10_000}]})
        )
        (results / "BENCH_scale.json").write_text(
            json.dumps({"bench": "scale", "points": [{"clients": 10_000}]})
        )
        # Full gate fails: no fresh vectorized_clients result.
        assert compare_to_baseline(results, baselines) != []
        assert compare_to_baseline(
            results, baselines, only=["BENCH_scale.json"]
        ) == []

    def test_only_with_unknown_baseline_name_fails(self, gate_dirs):
        results, baselines = gate_dirs
        failures = compare_to_baseline(
            results, baselines, only=["BENCH_typo.json"]
        )
        assert any("BENCH_typo.json" in line for line in failures)


class TestMetricDirection:
    def test_directions(self):
        assert metric_direction("fedavg.speedup") == "higher"
        assert metric_direction("fedavg.final_accuracy") == "higher"
        assert metric_direction("wall_seconds") == "lower"
        assert metric_direction("fedavg.serial_seconds") == "lower"
        assert metric_direction("rows.0.rounds_to_target") == "lower"
        assert metric_direction("num_clients") is None
        assert metric_direction("jobs") is None

    def test_serve_load_metrics_are_gated(self):
        # The serve load report: latencies may not grow, sustained
        # throughput may not drop, byte counts are informational (the
        # bench asserts their exact relations itself).
        assert metric_direction("p99_round_latency_seconds") == "lower"
        assert metric_direction("mean_round_latency_seconds") == "lower"
        assert metric_direction("rounds_per_sec") == "higher"
        assert metric_direction("ingest_throughput") == "higher"
        assert metric_direction("real_upload_payload_bytes") is None
        assert metric_direction("duplicate_submissions") is None

    def test_nested_per_algorithm_metrics_are_gated(self):
        # Summaries routinely nest the headline metric over per-algorithm
        # dicts; the classifier must match the whole path, not the leaf.
        assert metric_direction("rounds_to_target.fedprox(rho=0.1)") == "lower"
        assert metric_direction("final_accuracies.fedavg") == "higher"
        assert metric_direction("speedup_vs_fedsgd.scaffold") == "higher"
        assert metric_direction("rows.1.seconds_to_target") == "lower"

    def test_nested_rounds_regression_fails(self, gate_dirs):
        results, baselines = gate_dirs
        (baselines / "BENCH_table.json").write_text(
            json.dumps({"rounds_to_target": {"fedavg": 5, "fedprox": 4}})
        )
        (results / "BENCH_table.json").write_text(
            json.dumps({"rounds_to_target": {"fedavg": 9, "fedprox": 4}})
        )
        write_result(results)
        failures = compare_to_baseline(results, baselines)
        assert any("rounds_to_target.fedavg" in line for line in failures)

    def test_rounds_to_target_gets_one_round_absolute_slack(self, gate_dirs):
        # Discrete round counts: a baseline of 1 must tolerate 2 (any
        # shift is >=100% relative) but still fail on 3.
        results, baselines = gate_dirs
        (baselines / "BENCH_small.json").write_text(
            json.dumps({"rounds_to_target": {"fedavg": 1}})
        )
        write_result(results)
        (results / "BENCH_small.json").write_text(
            json.dumps({"rounds_to_target": {"fedavg": 2}})
        )
        assert compare_to_baseline(results, baselines) == []
        (results / "BENCH_small.json").write_text(
            json.dumps({"rounds_to_target": {"fedavg": 3}})
        )
        assert any(
            "rounds_to_target.fedavg" in line
            for line in compare_to_baseline(results, baselines)
        )

    def test_missing_gated_metric_fails(self, gate_dirs):
        # Renaming/nulling a gated metric must not silently disable its
        # own gate.
        results, baselines = gate_dirs
        write_result(results)
        payload = json.loads(
            (results / "BENCH_vectorized_clients.json").read_text()
        )
        del payload["fedavg"]["speedup"]
        (results / "BENCH_vectorized_clients.json").write_text(
            json.dumps(payload)
        )
        failures = compare_to_baseline(results, baselines)
        assert any(
            "fedavg.speedup missing" in line for line in failures
        )


class TestBaselineRefreshStripping:
    def test_machine_dependent_keys_are_stripped(self):
        payload = {
            "bench": "x",
            "wall_seconds": 1.0,
            "cpu_count": 4,
            "resume_seconds_for_remaining": 0.7,  # substring, not suffix
            "nested": {"serial_seconds": 2.0, "speedup": 3.0},
            "rows": [{"vectorized_seconds": 0.5, "rounds_to_target": 7}],
        }
        stripped = strip_machine_dependent(payload)
        assert stripped == {
            "bench": "x",
            "nested": {"speedup": 3.0},
            "rows": [{"rounds_to_target": 7}],
        }

    def test_every_committed_baseline_is_free_of_wall_clock(self):
        baselines = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
        checked = 0
        for path in baselines.glob("BENCH_*.json"):
            payload = json.loads(path.read_text())
            if payload.get("conservative"):
                # Hand-maintained bound baselines may carry timing keys on
                # purpose: deliberately loose ceilings (p99 latency, min
                # rounds/sec) that gate order-of-magnitude regressions.
                # refresh_baselines.py refuses to overwrite these.
                continue
            assert payload == strip_machine_dependent(payload), path.name
            checked += 1
        assert checked > 0
