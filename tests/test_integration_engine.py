"""Integration tests: the full simulation engine across all algorithms."""

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.exceptions import ConfigurationError
from repro.federated.engine import FederatedSimulation
from repro.federated.heterogeneity import FixedEpochs, UniformRandomEpochs
from repro.federated.sampler import FixedScheduleSampler, UniformFractionSampler
from repro.nn.losses import CrossEntropyLoss
from tests.conftest import NUM_CLASSES, make_model


def _simulation(algorithm_name, clients, test_dataset, seed=0, fraction=0.5, **kwargs):
    return FederatedSimulation(
        algorithm=build_algorithm(algorithm_name, **kwargs),
        model=make_model(seed=seed),
        clients=clients,
        test_dataset=test_dataset,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(fraction),
        local_work=FixedEpochs(2),
        batch_size=16,
        learning_rate=0.2,
        seed=seed,
    )


ALL_ALGORITHMS = ["fedadmm", "fedavg", "fedprox", "scaffold", "fedsgd"]


class TestEndToEndTraining:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_learns_above_chance_iid(self, algorithm, iid_clients, blobs_split):
        sim = _simulation(algorithm, iid_clients, blobs_split.test)
        result = sim.run(10)
        chance = 1.0 / NUM_CLASSES
        assert result.final_evaluation.accuracy > chance + 0.2
        assert result.rounds_run == 10
        assert len(result.history) == 10

    @pytest.mark.parametrize("algorithm", ["fedadmm", "fedavg", "scaffold"])
    def test_learns_above_chance_non_iid(self, algorithm, shard_clients, blobs_split):
        kwargs = {"rho": 0.3} if algorithm == "fedadmm" else {}
        sim = _simulation(algorithm, shard_clients, blobs_split.test, **kwargs)
        result = sim.run(12)
        assert result.final_evaluation.accuracy > 1.0 / NUM_CLASSES + 0.15

    def test_fedpd_with_full_participation(self, iid_clients, blobs_split):
        sim = _simulation("fedpd", iid_clients, blobs_split.test, fraction=1.0, rho=0.1)
        result = sim.run(10)
        assert result.final_evaluation.accuracy > 1.0 / NUM_CLASSES + 0.2


class TestDeterminism:
    def test_same_seed_same_result(self, blobs_split, iid_partition):
        from repro.federated.client import build_clients

        results = []
        for _ in range(2):
            clients = build_clients(blobs_split.train, iid_partition)
            sim = _simulation("fedadmm", clients, blobs_split.test, seed=5, rho=0.3)
            results.append(sim.run(4))
        assert np.allclose(results[0].final_params, results[1].final_params)
        assert results[0].history.accuracies.tolist() == results[1].history.accuracies.tolist()

    def test_different_seed_different_result(self, blobs_split, iid_partition):
        from repro.federated.client import build_clients

        finals = []
        for seed in (1, 2):
            clients = build_clients(blobs_split.train, iid_partition)
            sim = _simulation("fedavg", clients, blobs_split.test, seed=seed)
            finals.append(sim.run(3).final_params)
        assert not np.allclose(finals[0], finals[1])


class TestCommunicationAccounting:
    def test_fedadmm_upload_equals_fedavg_and_half_scaffold(self, iid_clients, blobs_split):
        """The paper's headline communication claim, measured end to end."""
        uploads = {}
        for name in ("fedadmm", "fedavg", "scaffold"):
            from repro.federated.client import build_clients

            sim = _simulation(name, list(iid_clients), blobs_split.test)
            result = sim.run(3)
            uploads[name] = result.ledger.upload_floats
        assert uploads["fedadmm"] == uploads["fedavg"]
        assert uploads["scaffold"] == 2 * uploads["fedavg"]

    def test_ledger_matches_history(self, iid_clients, blobs_split):
        sim = _simulation("fedavg", iid_clients, blobs_split.test)
        result = sim.run(4)
        assert result.ledger.rounds == 4
        assert result.ledger.upload_floats == result.history.total_upload_floats()


class TestEngineBehaviour:
    def test_stop_at_target(self, iid_clients, blobs_split):
        sim = _simulation("fedavg", iid_clients, blobs_split.test)
        result = sim.run(30, target_accuracy=0.5, stop_at_target=True)
        assert result.rounds_to_target is not None
        assert result.rounds_run == result.rounds_to_target
        assert result.reached_target

    def test_eval_every_skips_evaluations(self, iid_clients, blobs_split):
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedavg"),
            model=make_model(),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            sampler=UniformFractionSampler(0.5),
            local_work=FixedEpochs(1),
            batch_size=16,
            learning_rate=0.1,
            seed=0,
            eval_every=3,
        )
        result = sim.run(6)
        accuracies = result.history.accuracies
        # Rounds 1, 3, 6 evaluated; rounds 2, 4, 5 skipped.
        assert not np.isnan(accuracies[0])
        assert np.isnan(accuracies[1])
        assert not np.isnan(accuracies[2])

    def test_fixed_schedule_sampler_integration(self, iid_clients, blobs_split):
        sampler = FixedScheduleSampler([[0, 1], [2, 3], [4, 5]])
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedadmm", rho=0.3),
            model=make_model(),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            sampler=sampler,
            local_work=FixedEpochs(1),
            batch_size=16,
            learning_rate=0.1,
            seed=0,
        )
        result = sim.run(3)
        assert all(record.num_selected == 2 for record in result.history.records)

    def test_system_heterogeneity_varies_epochs(self, iid_clients, blobs_split):
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedadmm", rho=0.3),
            model=make_model(),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            sampler=UniformFractionSampler(0.5),
            local_work=UniformRandomEpochs(max_epochs=6),
            batch_size=16,
            learning_rate=0.1,
            seed=0,
        )
        result = sim.run(6)
        epochs = [record.mean_local_epochs for record in result.history.records]
        assert len(set(epochs)) > 1  # realised local work varies across rounds

    def test_invalid_construction(self, blobs_split):
        with pytest.raises(ConfigurationError):
            FederatedSimulation(
                algorithm=build_algorithm("fedavg"),
                model=make_model(),
                clients=[],
                test_dataset=blobs_split.test,
            )

    def test_invalid_round_count(self, iid_clients, blobs_split):
        sim = _simulation("fedavg", iid_clients, blobs_split.test)
        with pytest.raises(ConfigurationError):
            sim.run(0)


class TestFedAdmmInvariants:
    def test_theta_tracks_mean_augmented_model_under_analysed_step(
        self, iid_clients, blobs_split
    ):
        """With eta = |S_t|/m and the paper's initialisation, theta_t equals the
        average of all clients' augmented models (the key identity behind
        eq. 20 in the proof)."""
        rho = 0.5
        algorithm = build_algorithm("fedadmm", rho=rho, server_step_size="participation")
        sim = FederatedSimulation(
            algorithm=algorithm,
            model=make_model(seed=3),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            sampler=UniformFractionSampler(0.25),
            local_work=FixedEpochs(2),
            batch_size=16,
            learning_rate=0.1,
            seed=3,
        )
        sim.run(5)
        augmented = [
            client.get("w") + client.get("y") / rho for client in iid_clients
        ]
        assert np.allclose(sim.global_params, np.mean(augmented, axis=0), atol=1e-8)

    def test_dual_variables_sum_stays_balanced_direction(self, iid_clients, blobs_split):
        """Duals are zero-initialised; their mean norm stays finite and the
        per-client dual equals rho times the accumulated consensus gaps."""
        rho = 0.5
        algorithm = build_algorithm("fedadmm", rho=rho)
        sim = FederatedSimulation(
            algorithm=algorithm,
            model=make_model(seed=1),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            sampler=UniformFractionSampler(0.5),
            local_work=FixedEpochs(1),
            batch_size=16,
            learning_rate=0.1,
            seed=1,
        )
        sim.run(6)
        duals = np.stack([client.get("y") for client in iid_clients])
        assert np.isfinite(duals).all()
        assert np.linalg.norm(duals) > 0  # participation actually updated duals
