"""Gradient-correctness tests for every layer (analytic vs finite differences)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.gradcheck import check_gradients
from repro.nn.layers import (
    Conv2D,
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.losses import CrossEntropyLoss

RNG = np.random.default_rng(0)


def _gradcheck(model, x, y, tol=1e-5):
    error = check_gradients(model, CrossEntropyLoss(), x, y, max_params=60)
    assert error < tol, f"max gradient error {error} exceeds {tol}"


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3, rng=0)
        out = layer.forward(RNG.normal(size=(7, 5)))
        assert out.shape == (7, 3)

    def test_gradcheck(self):
        model = Sequential(Linear(6, 5, rng=0), Tanh(), Linear(5, 3, rng=1))
        x = RNG.normal(size=(8, 6))
        y = RNG.integers(0, 3, size=8)
        _gradcheck(model, x, y)

    def test_wrong_input_dim_rejected(self):
        layer = Linear(5, 3, rng=0)
        with pytest.raises(ShapeError):
            layer.forward(RNG.normal(size=(7, 4)))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(ShapeError):
            Linear(5, 3, rng=0).backward(RNG.normal(size=(7, 3)))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            Linear(0, 3)

    def test_glorot_init_available(self):
        layer = Linear(5, 3, rng=0, init="glorot")
        assert layer.weight.shape == (5, 3)


class TestConv2D:
    def test_forward_shape_same_padding(self):
        layer = Conv2D(2, 4, kernel_size=3, padding=1, rng=0)
        out = layer.forward(RNG.normal(size=(3, 2, 8, 8)))
        assert out.shape == (3, 4, 8, 8)

    def test_gradcheck(self):
        model = Sequential(
            Conv2D(1, 2, kernel_size=3, padding=1, rng=0),
            ReLU(),
            Flatten(),
            Linear(2 * 6 * 6, 3, rng=1),
        )
        x = RNG.normal(size=(4, 1, 6, 6))
        y = RNG.integers(0, 3, size=4)
        _gradcheck(model, x, y)

    def test_stride_reduces_size(self):
        layer = Conv2D(1, 2, kernel_size=3, stride=2, padding=1, rng=0)
        out = layer.forward(RNG.normal(size=(1, 1, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_wrong_channels_rejected(self):
        layer = Conv2D(3, 4, kernel_size=3, rng=0)
        with pytest.raises(ShapeError):
            layer.forward(RNG.normal(size=(1, 1, 8, 8)))


class TestMaxPool2D:
    def test_forward_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        assert np.array_equal(out.ravel(), [5, 7, 13, 15])

    def test_backward_routes_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4
        assert grad[0, 0, 1, 1] == 1.0  # position of value 5

    def test_gradcheck_through_pool(self):
        model = Sequential(
            Conv2D(1, 2, kernel_size=3, padding=1, rng=0),
            MaxPool2D(2),
            Flatten(),
            Linear(2 * 3 * 3, 2, rng=1),
        )
        x = RNG.normal(size=(3, 1, 6, 6))
        y = RNG.integers(0, 2, size=3)
        _gradcheck(model, x, y)


class TestActivationsAndShape:
    def test_relu_masks_negative(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])
        grad = relu.backward(np.array([[1.0, 1.0]]))
        assert np.array_equal(grad, [[0.0, 1.0]])

    def test_tanh_range(self):
        out = Tanh().forward(np.array([[-100.0, 0.0, 100.0]]))
        assert np.allclose(out, [[-1.0, 0.0, 1.0]])

    def test_flatten_roundtrip(self):
        flat = Flatten()
        x = RNG.normal(size=(2, 3, 4, 4))
        out = flat.forward(x)
        assert out.shape == (2, 48)
        assert flat.backward(out).shape == x.shape

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = RNG.normal(size=(4, 5))
        assert np.array_equal(drop.forward(x), x)

    def test_dropout_training_scales(self):
        drop = Dropout(0.5, rng=0)
        x = np.ones((1000, 1))
        out = drop.forward(x)
        # Inverted dropout keeps the expectation approximately unchanged.
        assert abs(out.mean() - 1.0) < 0.15

    def test_dropout_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestSequential:
    def test_len_and_indexing(self):
        model = Sequential(Linear(3, 2, rng=0), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_append_returns_self(self):
        model = Sequential(Linear(3, 2, rng=0))
        assert model.append(ReLU()) is model
        assert len(model) == 2
