"""Fault paths for the networked runtime: kills, restarts, stragglers.

Three failure stories, each resolving to the same invariant — the final
history is bit-identical to the uninterrupted in-process simulation:

* a worker process killed mid-round leaves a leased task behind; the
  lease expires, the board reclaims it, and another worker recomputes the
  *identical* update from the task's integer seed;
* a server killed between rounds restarts from its
  :class:`ExperimentStore` checkpoint, fast-forwards its RNG streams, and
  continues byte-for-byte the run an uninterrupted server would have
  produced;
* a real-time straggler under the async plan cannot perturb results:
  staleness weighting runs on the *simulated* clock carried in the round
  records, so the networked async history matches the in-process async
  simulation exactly, however slowly a worker returns its uploads.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.experiments.configs import AlgorithmSpec, serve_config
from repro.experiments.runner import build_simulation
from repro.serve.server import FederationServer
from repro.serve.worker import run_worker

from test_serve_e2e import assert_bit_identical, reference_run


def _stuck_worker(url: str) -> None:
    """A worker that pulls one task and then hangs forever mid-compute."""
    run_worker(url, max_tasks=1, delay_fn=lambda task: 3600.0)


def _wait_until(predicate, timeout: float = 30.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError("condition not reached in time")


def test_worker_killed_mid_round_is_absorbed_by_lease_reclaim():
    """Kill a worker holding a task; the round completes bit-identically."""
    config = serve_config()
    spec = AlgorithmSpec("fedavg")
    server = FederationServer(config, spec, num_rounds=2, lease_s=0.5)
    server.start()
    stuck = multiprocessing.Process(
        target=_stuck_worker, args=(server.url,), daemon=True
    )
    stuck.start()
    try:
        # The stuck worker has pulled a task (the server counted the
        # download) and is now asleep holding its lease.  Kill it.
        _wait_until(
            lambda: server.metrics.snapshot()["counters"].get(
                "serve.download_payload_bytes", 0
            )
            > 0
        )
        stuck.terminate()
        stuck.join(timeout=10)

        # A healthy worker drains the round, including the reclaimed task.
        healthy = threading.Thread(
            target=run_worker,
            kwargs=dict(url=server.url, worker_id="healthy"),
            daemon=True,
        )
        healthy.start()
        networked = server.wait(timeout=120)
        healthy.join(timeout=30)
    finally:
        server.stop()
        if stuck.is_alive():  # pragma: no cover - cleanup only
            stuck.terminate()

    assert server.board.reclaimed >= 1
    reference = reference_run(config, spec, rounds=2)
    assert_bit_identical(networked, reference)


def test_server_restart_resumes_from_store(tmp_path):
    """Stop after 2 rounds, restart with resume=True, finish 4 — same bits."""
    config = serve_config()
    spec = AlgorithmSpec("fedadmm")
    store_dir = str(tmp_path / "serve-store")

    first = FederationServer(
        config, spec, num_rounds=2, store_dir=store_dir
    )
    first.start()
    worker = threading.Thread(
        target=run_worker, kwargs=dict(url=first.url), daemon=True
    )
    worker.start()
    try:
        first.wait(timeout=120)
    finally:
        first.stop()
    worker.join(timeout=30)

    second = FederationServer(
        config, spec, num_rounds=4, store_dir=store_dir, resume=True
    )
    assert second.resumed_from_round == 2
    second.start()
    worker = threading.Thread(
        target=run_worker, kwargs=dict(url=second.url), daemon=True
    )
    worker.start()
    try:
        networked = second.wait(timeout=120)
    finally:
        second.stop()
    worker.join(timeout=30)

    reference = reference_run(config, spec, rounds=4)
    assert_bit_identical(networked, reference)


def test_resume_without_store_dir_is_refused():
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        FederationServer(
            serve_config(), AlgorithmSpec("fedavg"), num_rounds=1, resume=True
        )


@pytest.mark.parametrize("mode", ["semisync", "async"])
def test_real_time_straggler_cannot_perturb_staleness_weighting(mode):
    """A slow worker changes nothing: staleness runs on the simulated clock.

    One worker sleeps on every task for client 0 — a real wall-clock
    straggler — while a fast worker serves the rest.  The async and
    semisync plans weight late/stale arrivals by the *simulated* systems
    clock, so the networked history (staleness columns included) must be
    bit-identical to the in-process plan run that tests/test_plans.py pins.
    """
    config = serve_config(mode=mode)
    spec = AlgorithmSpec("fedavg")
    server = FederationServer(config, spec, num_rounds=3)
    server.start()

    def straggle(task):
        return 0.3 if task["client_index"] == 0 else 0.0

    workers = [
        threading.Thread(
            target=run_worker,
            kwargs=dict(url=server.url, delay_fn=straggle, worker_id="slow"),
            daemon=True,
        ),
        threading.Thread(
            target=run_worker,
            kwargs=dict(url=server.url, worker_id="fast"),
            daemon=True,
        ),
    ]
    for thread in workers:
        thread.start()
    try:
        networked = server.wait(timeout=120)
    finally:
        server.stop()
    for thread in workers:
        thread.join(timeout=30)

    # Semisync/async plans always derive labeled per-task seeds, so the
    # in-process reference uses the config's default executor unchanged.
    reference = build_simulation(config, spec).run(3, target_accuracy=None)
    assert_bit_identical(networked, reference)
    if mode == "async":
        assert any(
            record.max_staleness > 0 for record in networked.history.records
        )
