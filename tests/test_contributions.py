"""Client contribution valuation: subset utilities, LOO, Shapley, caching."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.configs import AlgorithmSpec, robustness_config
from repro.experiments.contributions import (
    ContributionValuer,
    UtilityCache,
    compute_contributions,
    subset_key,
)

SPEC = AlgorithmSpec("fedavg", {})


def tiny_cfg(num_clients=4, num_rounds=2, seed=0):
    return robustness_config(
        "blobs", non_iid=True, seed=seed, adversary=None, adversary_fraction=0.0
    ).with_overrides(
        name="contrib-test",
        num_clients=num_clients,
        n_train=240,
        n_test=80,
        num_rounds=num_rounds,
        client_fraction=1.0,
    )


class TestSubsetKey:
    def test_sorted_deduplicated(self):
        assert subset_key([3, 1, 2, 1]) == "1,2,3"
        assert subset_key([]) == "-"


class TestUtilityCache:
    def test_persists_and_reloads(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = UtilityCache(path)
        cache.put("0,1", 0.5)
        reloaded = UtilityCache(path)
        assert reloaded.get("0,1") == 0.5
        assert reloaded.hits == 1
        assert json.loads(path.read_text()) == {"0,1": 0.5}

    def test_memory_only_without_path(self):
        cache = UtilityCache()
        assert cache.get("0") is None
        cache.put("0", 0.1)
        assert cache.get("0") == 0.1


class TestValuer:
    def test_utility_is_deterministic_and_cached(self):
        valuer = ContributionValuer(tiny_cfg(), SPEC)
        first = valuer.utility([0, 1])
        second = valuer.utility([1, 0])
        assert first == second
        assert valuer.cache.hits == 1
        assert valuer.cache.misses == 1

    def test_empty_coalition_is_the_untrained_model(self):
        valuer = ContributionValuer(tiny_cfg(), SPEC)
        empty = valuer.utility([])
        assert 0.0 <= empty <= 1.0
        # Training on everyone must beat an untrained model on blobs.
        assert valuer.utility(range(valuer.num_clients)) > empty

    def test_out_of_range_subsets_fail(self):
        valuer = ContributionValuer(tiny_cfg(), SPEC)
        with pytest.raises(ConfigurationError, match="out of range"):
            valuer.utility([99])

    def test_coalition_runs_do_not_leak_state(self):
        # Valuing must not mutate the shared client templates: two
        # identical valuations see identical utilities.
        valuer = ContributionValuer(tiny_cfg(), SPEC)
        a = valuer.utility([0, 2])
        fresh = ContributionValuer(tiny_cfg(), SPEC)
        assert fresh.utility([0, 2]) == a


class TestMethods:
    def test_leave_one_out_scores_every_client(self):
        report = compute_contributions(tiny_cfg(), SPEC, method="loo")
        assert report.method == "loo"
        assert sorted(report.scores) == [0, 1, 2, 3]
        # n singleton-complement runs + full + empty
        assert report.runs_executed == 6
        assert report.runs_reused == 0

    def test_shapley_is_seed_deterministic(self):
        a = compute_contributions(
            tiny_cfg(), SPEC, method="shapley", permutations=2
        )
        b = compute_contributions(
            tiny_cfg(), SPEC, method="shapley", permutations=2
        )
        assert a.scores == b.scores
        assert a.permutations == 2

    def test_shapley_efficiency_without_truncation(self):
        # With tolerance 0 no walk truncates, so each permutation's
        # marginals telescope: scores sum to U(N) - U(empty) exactly.
        report = compute_contributions(
            tiny_cfg(), SPEC, method="shapley", permutations=2, tolerance=0.0
        )
        assert report.metadata["truncated_walks"] == 0
        assert sum(report.scores.values()) == pytest.approx(
            report.utility_full - report.utility_empty
        )

    def test_cache_reuse_across_methods(self, tmp_path):
        cache = UtilityCache(tmp_path / "utilities.json")
        first = compute_contributions(tiny_cfg(), SPEC, method="loo", cache=cache)
        assert first.runs_executed == 6
        again = compute_contributions(tiny_cfg(), SPEC, method="loo", cache=cache)
        assert again.runs_executed == 0
        assert again.runs_reused == 6
        assert again.scores == first.scores

    def test_unknown_method_fails(self):
        with pytest.raises(ConfigurationError, match="unknown contribution"):
            compute_contributions(tiny_cfg(), SPEC, method="banzhaf")
        with pytest.raises(ConfigurationError, match="permutations"):
            compute_contributions(tiny_cfg(), SPEC, method="shapley", permutations=0)

    def test_report_payload_roundtrips(self):
        report = compute_contributions(tiny_cfg(), SPEC, method="loo")
        payload = report.to_payload()
        assert payload["method"] == "loo"
        assert set(payload["scores"]) == {"0", "1", "2", "3"}
        ranked = report.ranked()
        assert ranked[0][1] == max(report.scores.values())
