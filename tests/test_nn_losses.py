"""Tests for loss functions."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.functional import softmax
from repro.nn.losses import CrossEntropyLoss, MSELoss


class TestCrossEntropyLoss:
    def test_uniform_logits_loss_is_log_k(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((5, 4))
        labels = np.array([0, 1, 2, 3, 0])
        value = loss.value(logits, labels)
        assert np.isclose(value, np.log(4))

    def test_perfect_prediction_loss_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((3, 3), -50.0)
        labels = np.array([0, 1, 2])
        logits[np.arange(3), labels] = 50.0
        assert loss.value(logits, labels) < 1e-6

    def test_gradient_matches_softmax_minus_onehot(self):
        loss = CrossEntropyLoss()
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(6, 5))
        labels = rng.integers(0, 5, size=6)
        _, grad = loss.value_and_grad(logits, labels)
        expected = softmax(logits).copy()
        expected[np.arange(6), labels] -= 1.0
        expected /= 6
        assert np.allclose(grad, expected)

    def test_gradient_sums_to_zero_per_row(self):
        loss = CrossEntropyLoss()
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        _, grad = loss.value_and_grad(logits, labels)
        assert np.allclose(grad.sum(axis=1), 0.0)

    def test_batch_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            CrossEntropyLoss().value_and_grad(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_non_2d_logits_rejected(self):
        with pytest.raises(ShapeError):
            CrossEntropyLoss().value_and_grad(np.zeros(3), np.zeros(3, dtype=int))


class TestMSELoss:
    def test_zero_for_equal_inputs(self):
        x = np.ones((3, 2))
        assert MSELoss().value(x, x) == 0.0

    def test_value_and_gradient(self):
        loss = MSELoss()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        value, grad = loss.value_and_grad(pred, target)
        assert np.isclose(value, (1 + 4) / 2)
        assert np.allclose(grad, [[1.0, 2.0]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            MSELoss().value_and_grad(np.zeros((2, 2)), np.zeros((2, 3)))
