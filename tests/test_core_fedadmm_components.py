"""Tests for the FedADMM core: augmented Lagrangian, dual mechanics,
client/server updates, step-size and rho schedules."""

import numpy as np
import pytest

from repro.algorithms.base import LocalTrainingConfig
from repro.core.admm_client import admm_client_update
from repro.core.admm_server import admm_server_update, average_aggregate
from repro.core.augmented_lagrangian import AugmentedLagrangian
from repro.core.dual import (
    augmented_model,
    dual_update,
    kkt_residuals,
    update_message,
)
from repro.core.rho import ConstantRho, PiecewiseRho
from repro.core.stepsize import (
    ConstantStepSize,
    ParticipationScaledStepSize,
    PiecewiseStepSize,
)
from repro.exceptions import ConfigurationError


class TestAugmentedLagrangian:
    def test_penalty_value_zero_at_consensus(self):
        lagrangian = AugmentedLagrangian(rho=0.5)
        w = np.ones(4)
        assert lagrangian.penalty_value(w, np.zeros(4), w) == 0.0

    def test_penalty_gradient_formula(self):
        lagrangian = AugmentedLagrangian(rho=2.0)
        w, y, theta = np.array([1.0, 2.0]), np.array([0.5, -0.5]), np.zeros(2)
        grad = lagrangian.penalty_gradient(w, y, theta)
        assert np.allclose(grad, y + 2.0 * w)

    def test_penalty_gradient_is_derivative_of_value(self):
        lagrangian = AugmentedLagrangian(rho=0.7)
        rng = np.random.default_rng(0)
        w, y, theta = rng.normal(size=3), rng.normal(size=3), rng.normal(size=3)
        eps = 1e-6
        numeric = np.zeros(3)
        for i in range(3):
            w_plus, w_minus = w.copy(), w.copy()
            w_plus[i] += eps
            w_minus[i] -= eps
            numeric[i] = (
                lagrangian.penalty_value(w_plus, y, theta)
                - lagrangian.penalty_value(w_minus, y, theta)
            ) / (2 * eps)
        assert np.allclose(numeric, lagrangian.penalty_gradient(w, y, theta), atol=1e-5)

    def test_full_gradient_includes_local_loss(self, local_problem):
        lagrangian = AugmentedLagrangian(rho=0.5)
        params = local_problem.model.get_flat_params()
        y = np.zeros_like(params)
        grad = lagrangian.gradient(local_problem, params, y, params)
        _, grad_f = local_problem.full_loss_and_grad(params)
        assert np.allclose(grad, grad_f)

    def test_inexactness_decreases_with_training(self, local_problem):
        """Running gradient descent on L_i drives eq. (6)'s epsilon down."""
        lagrangian = AugmentedLagrangian(rho=1.0)
        theta = local_problem.model.get_flat_params()
        y = np.zeros_like(theta)
        w = theta.copy()
        initial = lagrangian.inexactness(local_problem, w, y, theta)
        for _ in range(25):
            w = w - 0.1 * lagrangian.gradient(local_problem, w, y, theta)
        assert lagrangian.inexactness(local_problem, w, y, theta) < initial

    def test_strong_convexity_condition(self):
        assert AugmentedLagrangian(rho=2.0).is_strongly_convex(lipschitz_constant=1.0)
        assert not AugmentedLagrangian(rho=0.5).is_strongly_convex(lipschitz_constant=1.0)
        assert AugmentedLagrangian(rho=3.0).strong_convexity_modulus(1.0) == 2.0

    def test_negative_rho_rejected(self):
        with pytest.raises(ConfigurationError):
            AugmentedLagrangian(rho=-0.1)


class TestDualMechanics:
    def test_dual_update_formula(self):
        y = np.array([1.0, -1.0])
        w = np.array([2.0, 0.0])
        theta = np.array([1.0, 1.0])
        assert np.allclose(dual_update(y, w, theta, rho=0.5), y + 0.5 * (w - theta))

    def test_augmented_model_formula(self):
        w, y = np.array([1.0, 2.0]), np.array([0.2, -0.4])
        assert np.allclose(augmented_model(w, y, rho=0.1), w + 10.0 * y)

    def test_update_message_matches_eq4(self):
        rng = np.random.default_rng(0)
        w_old, y_old = rng.normal(size=4), rng.normal(size=4)
        theta = rng.normal(size=4)
        rho = 0.3
        w_new = rng.normal(size=4)
        y_new = dual_update(y_old, w_new, theta, rho)
        delta = update_message(w_new, y_new, w_old, y_old, rho)
        expected = (w_new + y_new / rho) - (w_old + y_old / rho)
        assert np.allclose(delta, expected)
        # Algebraic identity: delta = (w_new - w_old) + (w_new - theta).
        assert np.allclose(delta, (w_new - w_old) + (w_new - theta))

    def test_zero_rho_rejected(self):
        with pytest.raises(ConfigurationError):
            dual_update(np.zeros(2), np.zeros(2), np.zeros(2), rho=0.0)
        with pytest.raises(ConfigurationError):
            augmented_model(np.zeros(2), np.zeros(2), rho=0.0)

    def test_kkt_residuals_zero_at_consensus_optimum(self):
        theta = np.array([1.0, -1.0])
        params = [theta.copy(), theta.copy()]
        duals = [np.array([0.5, 0.0]), np.array([-0.5, 0.0])]
        grads = [-duals[0], -duals[1]]
        residuals = kkt_residuals(params, duals, theta, grads)
        assert residuals.primal == 0.0
        assert residuals.dual_balance == 0.0
        assert residuals.stationarity == 0.0

    def test_kkt_residuals_positive_off_optimum(self):
        theta = np.zeros(2)
        residuals = kkt_residuals([np.ones(2)], [np.ones(2)], theta)
        assert residuals.primal > 0
        assert residuals.dual_balance > 0
        assert residuals.stationarity is None

    def test_kkt_residuals_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            kkt_residuals([np.zeros(2)], [], np.zeros(2))


class TestAdmmClientUpdate:
    def test_dual_and_message_consistency(self, local_problem, training_config):
        theta = local_problem.model.get_flat_params()
        w_old = theta.copy()
        y_old = np.zeros_like(theta)
        rho = 0.5
        result = admm_client_update(
            local_problem, w_old, y_old, theta, rho, training_config, rng=0
        )
        assert np.allclose(result.y_new, y_old + rho * (result.w_new - theta))
        expected_delta = (result.w_new + result.y_new / rho) - (w_old + y_old / rho)
        assert np.allclose(result.delta, expected_delta)
        assert np.isfinite(result.train_loss)

    def test_training_reduces_local_loss(self, local_problem, training_config):
        theta = local_problem.model.get_flat_params()
        result = admm_client_update(
            local_problem,
            theta.copy(),
            np.zeros_like(theta),
            theta,
            rho=0.1,
            config=LocalTrainingConfig(epochs=5, batch_size=16, learning_rate=0.2),
            rng=0,
        )
        assert local_problem.full_loss(result.w_new) < local_problem.full_loss(theta)

    def test_warm_start_vs_restart_differ_for_stale_local_model(
        self, local_problem, training_config
    ):
        theta = local_problem.model.get_flat_params()
        stale_w = theta + 1.0  # pretend the client trained long ago
        y = np.zeros_like(theta)
        warm = admm_client_update(
            local_problem, stale_w, y, theta, 0.5, training_config, rng=0, warm_start=True
        )
        restart = admm_client_update(
            local_problem, stale_w, y, theta, 0.5, training_config, rng=0, warm_start=False
        )
        assert not np.allclose(warm.w_new, restart.w_new)

    def test_invalid_rho_rejected(self, local_problem, training_config):
        theta = local_problem.model.get_flat_params()
        with pytest.raises(ConfigurationError):
            admm_client_update(
                local_problem, theta, np.zeros_like(theta), theta, 0.0, training_config
            )


class TestAdmmServerUpdate:
    def test_tracking_update_formula(self):
        theta = np.zeros(3)
        deltas = [np.array([1.0, 0.0, 0.0]), np.array([0.0, 2.0, 0.0])]
        new_theta = admm_server_update(theta, deltas, eta=1.0)
        assert np.allclose(new_theta, [0.5, 1.0, 0.0])

    def test_eta_scales_update(self):
        theta = np.zeros(2)
        deltas = [np.ones(2)]
        assert np.allclose(admm_server_update(theta, deltas, eta=0.5), 0.5 * np.ones(2))

    def test_empty_messages_rejected(self):
        with pytest.raises(ConfigurationError):
            admm_server_update(np.zeros(2), [], eta=1.0)
        with pytest.raises(ConfigurationError):
            admm_server_update(np.zeros(2), [np.zeros(2)], eta=0.0)

    def test_average_aggregate_uniform_and_weighted(self):
        models = [np.array([0.0, 0.0]), np.array([2.0, 4.0])]
        assert np.allclose(average_aggregate(models), [1.0, 2.0])
        assert np.allclose(average_aggregate(models, weights=[3, 1]), [0.5, 1.0])

    def test_average_aggregate_invalid_weights(self):
        with pytest.raises(ConfigurationError):
            average_aggregate([np.zeros(2)], weights=[1, 2])
        with pytest.raises(ConfigurationError):
            average_aggregate([np.zeros(2)], weights=[0.0])


class TestStepSizePolicies:
    def test_constant(self):
        assert ConstantStepSize(1.5).value(3, 5, 50) == 1.5

    def test_participation_scaled(self):
        assert ParticipationScaledStepSize().value(0, 10, 100) == pytest.approx(0.1)

    def test_piecewise_switches_at_boundaries(self):
        policy = PiecewiseStepSize(values=[1.0, 0.5, 0.25], boundaries=[10, 20])
        assert policy.value(5, 1, 10) == 1.0
        assert policy.value(10, 1, 10) == 0.5
        assert policy.value(25, 1, 10) == 0.25

    def test_invalid_policies(self):
        with pytest.raises(ConfigurationError):
            ConstantStepSize(0.0)
        with pytest.raises(ConfigurationError):
            PiecewiseStepSize(values=[1.0], boundaries=[5])
        with pytest.raises(ConfigurationError):
            PiecewiseStepSize(values=[1.0, -1.0], boundaries=[5])
        with pytest.raises(ConfigurationError):
            PiecewiseStepSize(values=[1.0, 0.5, 0.2], boundaries=[20, 10])

    def test_describe(self):
        assert "eta" in ConstantStepSize(1.0).describe()
        assert "S_t" in ParticipationScaledStepSize().describe()


class TestRhoSchedules:
    def test_constant(self):
        assert ConstantRho(0.01).value(100) == 0.01

    def test_piecewise(self):
        schedule = PiecewiseRho(values=[0.01, 0.1], boundaries=[15])
        assert schedule.value(0) == 0.01
        assert schedule.value(15) == 0.1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ConstantRho(0.0)
        with pytest.raises(ConfigurationError):
            PiecewiseRho(values=[0.1], boundaries=[2])
