"""Property-based tests for the transport-compression codecs.

Hypothesis drives each codec over arbitrary finite float vectors and checks
the contracts the engine relies on:

* every codec round-trips to the original shape and float64 dtype, with the
  advertised wire size,
* top-k keeps exactly ``k`` coordinates (exactly ``k`` nonzeros when the
  input has no zeros) and reconstructs zero off-support,
* QSGD's stochastic rounding is unbiased: averaging decodes over many seeds
  converges to the original vector,
* signSGD reconstructions all share one magnitude — the mean absolute
  value — which never exceeds the largest input magnitude.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.systems.compression import (
    CODEC_REGISTRY,
    Float16Codec,
    IdentityCodec,
    QSGDCodec,
    SignSGDCodec,
    TopKCodec,
    build_codec,
)

#: Bounded, finite, non-degenerate coordinate values.  float16 overflows at
#: |x| > 65504, so the shared strategy stays well inside every codec's range.
finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=64
)

vectors = st.lists(finite_floats, min_size=1, max_size=64).map(
    lambda values: np.array(values, dtype=np.float64)
)

nonzero_vectors = st.lists(
    finite_floats.filter(lambda x: abs(x) > 1e-6), min_size=1, max_size=64
).map(lambda values: np.array(values, dtype=np.float64))


def all_codecs():
    return [
        IdentityCodec(),
        Float16Codec(),
        TopKCodec(fraction=0.25),
        TopKCodec(k=3),
        QSGDCodec(levels=16),
        SignSGDCodec(),
    ]


class TestRoundTripContracts:
    @settings(max_examples=60, deadline=None)
    @given(vector=vectors, seed=st.integers(0, 2**31 - 1))
    def test_shape_dtype_and_wire_bytes(self, vector, seed):
        for codec in all_codecs():
            decoded, wire = codec.roundtrip(vector, rng=seed)
            assert decoded.shape == vector.shape
            assert decoded.dtype == np.float64
            assert wire == codec.wire_bytes(vector.size)
            assert np.isfinite(decoded).all()

    @settings(max_examples=60, deadline=None)
    @given(vector=vectors)
    def test_identity_is_lossless(self, vector):
        decoded, _ = IdentityCodec().roundtrip(vector)
        np.testing.assert_array_equal(decoded, vector)

    @settings(max_examples=60, deadline=None)
    @given(vector=vectors)
    def test_float16_error_bounded_by_half_precision(self, vector):
        decoded, _ = Float16Codec().roundtrip(vector)
        # Relative error of round-to-nearest float16 is 2^-11 per coordinate.
        tolerance = np.maximum(np.abs(vector) * 2**-10, 1e-4)
        assert (np.abs(decoded - vector) <= tolerance).all()


class TestTopK:
    @settings(max_examples=80, deadline=None)
    @given(vector=nonzero_vectors, k=st.integers(1, 8))
    def test_exactly_k_nonzeros(self, vector, k):
        codec = TopKCodec(k=k)
        decoded, _ = codec.roundtrip(vector)
        assert np.count_nonzero(decoded) == min(k, vector.size)

    @settings(max_examples=80, deadline=None)
    @given(vector=vectors, k=st.integers(1, 8))
    def test_keeps_largest_magnitudes_and_zeroes_rest(self, vector, k):
        codec = TopKCodec(k=k)
        encoded = codec.encode(vector)
        kept = encoded.data["indices"].astype(np.int64)
        assert kept.size == codec.num_kept(vector.size)
        decoded = codec.decode(encoded)
        off_support = np.setdiff1d(np.arange(vector.size), kept)
        assert (decoded[off_support] == 0.0).all()
        if off_support.size:
            # No discarded coordinate strictly dominates a kept one.
            assert np.abs(vector[off_support]).max() <= (
                np.abs(vector[kept]).min() + 1e-12
            )

    @settings(max_examples=40, deadline=None)
    @given(vector=vectors, fraction=st.floats(0.01, 1.0))
    def test_fraction_matches_num_kept(self, vector, fraction):
        codec = TopKCodec(fraction=fraction)
        encoded = codec.encode(vector)
        assert encoded.data["indices"].size == codec.num_kept(vector.size)


class TestQSGD:
    @settings(max_examples=15, deadline=None)
    @given(vector=st.lists(finite_floats, min_size=2, max_size=8).map(
        lambda values: np.array(values, dtype=np.float64)
    ))
    def test_unbiased_in_expectation_over_seeds(self, vector):
        codec = QSGDCodec(levels=4)
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            return
        decodes = np.stack(
            [codec.roundtrip(vector, rng=seed)[0] for seed in range(400)]
        )
        mean = decodes.mean(axis=0)
        # Monte-Carlo tolerance: each coordinate's rounding noise is bounded
        # by one quantisation step, norm / levels.
        step = norm / codec.levels
        assert (np.abs(mean - vector) <= 0.15 * step + 1e-9).all()

    @settings(max_examples=60, deadline=None)
    @given(vector=vectors, seed=st.integers(0, 2**31 - 1))
    def test_decode_magnitude_bounded_by_norm(self, vector, seed):
        codec = QSGDCodec(levels=8)
        decoded, _ = codec.roundtrip(vector, rng=seed)
        norm = np.linalg.norm(vector)
        # Each coordinate's level is at most levels + 1 (stochastic rounding
        # can round |v_i|/norm * levels up once).
        bound = norm * (codec.levels + 1) / codec.levels
        assert (np.abs(decoded) <= bound + 1e-9).all()

    def test_zero_vector_stays_zero(self):
        decoded, _ = QSGDCodec().roundtrip(np.zeros(5), rng=0)
        np.testing.assert_array_equal(decoded, np.zeros(5))


class TestSignSGD:
    @settings(max_examples=80, deadline=None)
    @given(vector=vectors)
    def test_magnitude_is_mean_abs_and_bounded(self, vector):
        decoded, _ = SignSGDCodec().roundtrip(vector)
        scale = float(np.mean(np.abs(vector)))
        np.testing.assert_allclose(np.abs(decoded), scale)
        # The shared magnitude never exceeds the largest input coordinate.
        assert scale <= np.abs(vector).max() + 1e-12

    @settings(max_examples=80, deadline=None)
    @given(vector=nonzero_vectors)
    def test_signs_preserved(self, vector):
        decoded, _ = SignSGDCodec().roundtrip(vector)
        if np.abs(vector).sum() > 0:
            assert (np.sign(decoded) == np.where(vector < 0, -1.0, 1.0)).all()


def test_registry_round_trip_consistency():
    """Every registered codec honours the shared encode/decode contract."""
    vector = np.linspace(-2.0, 2.0, 17)
    for name in CODEC_REGISTRY:
        codec = build_codec(name)
        decoded, wire = codec.roundtrip(vector, rng=0)
        assert decoded.shape == vector.shape
        assert wire > 0
        encoded = codec.encode(vector, rng=0)
        assert encoded.codec == name
        assert encoded.dim == vector.size


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
