"""Tests for the metrics package."""

import pytest

from repro.algorithms import FedAvg, Scaffold
from repro.exceptions import ConfigurationError
from repro.federated.history import RoundRecord, TrainingHistory
from repro.metrics.communication import (
    communication_to_target_bytes,
    per_round_upload_floats,
    total_upload_floats,
)
from repro.metrics.rounds_to_target import format_rounds, rounds_to_target
from repro.metrics.speedup import reduction_vs_best_baseline, speedup_vs_reference


def _history(accuracies):
    history = TrainingHistory(algorithm="x")
    for index, accuracy in enumerate(accuracies, start=1):
        history.append(
            RoundRecord(
                round_index=index,
                test_accuracy=accuracy,
                test_loss=0.1,
                train_loss=0.1,
                num_selected=1,
                upload_floats=1,
                download_floats=1,
                mean_local_epochs=1.0,
            )
        )
    return history


class TestRoundsToTarget:
    def test_reached(self):
        result = rounds_to_target(_history([0.3, 0.6, 0.9]), 0.6, budget=10)
        assert result.reached
        assert result.rounds == 2
        assert format_rounds(result) == "2"
        assert result.effective_rounds() == 2

    def test_not_reached_formats_like_paper(self):
        result = rounds_to_target(_history([0.3, 0.4]), 0.9, budget=100)
        assert not result.reached
        assert format_rounds(result) == "100+"
        assert result.effective_rounds() == 100

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            rounds_to_target(_history([0.5]), 0.0)


class TestSpeedup:
    def test_basic_ratio(self):
        assert speedup_vs_reference(10, 297) == pytest.approx(29.7)

    def test_none_propagates(self):
        assert speedup_vs_reference(None, 100) is None
        assert speedup_vs_reference(10, None) is None

    def test_invalid_rounds(self):
        with pytest.raises(ConfigurationError):
            speedup_vs_reference(0, 10)


class TestReduction:
    def test_matches_paper_table3_example(self):
        """MNIST 100-client IID: FedADMM 10 vs best baseline FedAvg 19 -> 47.4%."""
        reduction = reduction_vs_best_baseline(10, {"fedavg": 19, "fedprox": 29, "scaffold": 27})
        assert reduction == pytest.approx(1 - 10 / 19)

    def test_ignores_unfinished_baselines(self):
        reduction = reduction_vs_best_baseline(5, {"fedavg": None, "fedprox": 20})
        assert reduction == pytest.approx(0.75)

    def test_undefined_cases(self):
        assert reduction_vs_best_baseline(None, {"fedavg": 10}) is None
        assert reduction_vs_best_baseline(5, {"fedavg": None}) is None


class TestCommunication:
    def test_per_round_upload(self):
        assert per_round_upload_floats(FedAvg(), dim=1000, num_selected=10) == 10_000
        assert per_round_upload_floats(Scaffold(), dim=1000, num_selected=10) == 20_000

    def test_scaffold_doubles_fedavg(self):
        """The paper's repeated point: SCAFFOLD uploads 2x per round."""
        avg = total_upload_floats(FedAvg(), 500, 10, 7)
        scaffold = total_upload_floats(Scaffold(), 500, 10, 7)
        assert scaffold == 2 * avg

    def test_bytes_to_target(self):
        assert communication_to_target_bytes(FedAvg(), 100, 10, rounds_to_target=3) == 100 * 10 * 3 * 4
        assert communication_to_target_bytes(FedAvg(), 100, 10, rounds_to_target=None) is None

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            per_round_upload_floats(FedAvg(), 0, 10)
        with pytest.raises(ConfigurationError):
            total_upload_floats(FedAvg(), 10, 10, -1)
