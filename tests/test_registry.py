"""Tests for the declarative study registry and its CLI-facing resolution."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentConfig
from repro.experiments.registry import (
    Study,
    StudyFlag,
    StudyRegistry,
    StudyRequest,
)
from repro.experiments.studies import STUDIES


TINY = ExperimentConfig(
    name="tiny-registry",
    dataset="blobs",
    n_train=200,
    n_test=80,
    model="mlp",
    model_kwargs={"input_dim": 32, "hidden_dims": (8,)},
    num_clients=6,
    client_fraction=0.5,
    local_epochs=1,
    batch_size=16,
    num_rounds=2,
    target_accuracy=0.5,
)


def make_study(name="demo", **kwargs) -> Study:
    defaults = dict(
        name=name,
        description="a demo study",
        build_config=lambda request: TINY,
        sweep=lambda config, request: {"config": config, "request": request},
        summarise=lambda raw, request: {"ok": True, "raw": raw},
    )
    defaults.update(kwargs)
    return Study(**defaults)


class TestStudyRegistryResolution:
    def test_add_get_and_order(self):
        registry = StudyRegistry()
        registry.add(make_study("b"))
        registry.add(make_study("a"))
        assert registry.names() == ["b", "a"]  # registration order
        assert registry.get("a").name == "a"
        assert "a" in registry and "missing" not in registry
        assert len(registry) == 2

    def test_duplicate_names_rejected(self):
        registry = StudyRegistry()
        registry.add(make_study("x"))
        with pytest.raises(ConfigurationError):
            registry.add(make_study("x"))

    def test_unknown_name_raises_value_error_with_choices(self):
        registry = StudyRegistry()
        registry.add(make_study("known"))
        with pytest.raises(ValueError, match="known"):
            registry.get("unknown")

    def test_run_applies_overrides_before_sweep(self):
        registry = StudyRegistry()
        registry.add(make_study())
        request = StudyRequest(rounds=7, seed=3, overrides={"dropout": 0.25})
        payload = registry.run("demo", request)
        swept = payload["raw"]["config"]
        assert swept.num_rounds == 7
        assert swept.seed == 3
        assert swept.dropout == 0.25

    def test_run_skips_overrides_for_configless_studies(self):
        registry = StudyRegistry()
        registry.add(
            make_study(
                "closed-form",
                build_config=lambda request: None,
                sweep=lambda config, request: config,
                summarise=lambda raw, request: {"config": raw},
            )
        )
        assert registry.run("closed-form")["config"] is None


class TestStudyRequest:
    def test_from_args_with_sparse_namespace(self):
        class Args:
            dataset = "blobs"
            rho = 0.7

        request = StudyRequest.from_args(Args())
        assert request.dataset == "blobs"
        assert request.rho == 0.7
        assert request.scale == "bench"  # fell back to the default
        assert request.overrides == {}

    def test_from_args_collects_overrides_and_options(self):
        class Args:
            dataset = "mnist"
            codec = "topk"
            mode = "semisync"
            round_deadline_s = 4.0
            etas = [0.5, 1.0]

        request = StudyRequest.from_args(Args(), option_names=("etas",))
        assert request.overrides["codec"] == "topk"
        assert request.overrides["mode"] == "semisync"
        assert request.overrides["round_deadline_s"] == 4.0
        assert request.option("etas") == [0.5, 1.0]
        assert request.option("missing", "fallback") == "fallback"

    def test_legacy_async_flag_maps_to_mode(self):
        class Args:
            async_mode = True

        request = StudyRequest.from_args(Args())
        assert request.overrides["mode"] == "async"

    def test_flag_dest_derivation(self):
        flag = StudyFlag("--dropout-rates", {"nargs": "+", "type": float})
        assert flag.dest == "dropout_rates"


class TestDefaultRegistryContents:
    def test_every_paper_study_is_registered(self):
        expected = {
            "table1", "table3", "table4", "table5", "table6",
            "fig3", "fig5", "fig6", "fig8", "fig9",
            "systems", "async", "semisync",
        }
        assert expected <= set(STUDIES.names())

    def test_descriptions_cover_every_study(self):
        descriptions = STUDIES.descriptions()
        assert set(descriptions) == set(STUDIES.names())
        assert all(descriptions.values())

    def test_table1_runs_without_training(self, capsys):
        payload = STUDIES.run("table1")
        assert payload["rows"]
        assert "fedadmm" in capsys.readouterr().out

    def test_cli_exposes_registry_subcommands(self):
        from repro.cli import EXPERIMENTS, _build_parser

        assert set(EXPERIMENTS) == set(STUDIES.names())
        parser = _build_parser()
        args = parser.parse_args(
            ["fig6", "--dataset", "blobs", "--etas", "0.5", "1.0"]
        )
        assert args.experiment == "fig6"
        assert args.etas == [0.5, 1.0]
        args = parser.parse_args(
            ["semisync", "--round-deadline", "2.0", "--mode", "semisync"]
        )
        assert args.round_deadline_s == 2.0


class TestSupportedModesAndExecutors:
    """Studies surface their supported plans/executors and fail fast."""

    def test_declared_universes_match_the_live_registries(self):
        from repro.experiments.registry import ALL_EXECUTORS, ALL_MODES
        from repro.federated.plans import PLAN_REGISTRY
        from repro.systems import EXECUTOR_REGISTRY

        # The hierarchical plan is a topology variant of the synchronous
        # round selected via --plan/--shards, not a --mode of its own.
        assert set(ALL_MODES) | {"hierarchical"} == set(PLAN_REGISTRY)
        assert set(ALL_EXECUTORS) == set(EXECUTOR_REGISTRY)

    def test_every_study_surfaces_modes_and_executors(self):
        for study in STUDIES:
            assert isinstance(study.modes, tuple)
            assert isinstance(study.executors, tuple)

    def test_closed_form_study_supports_nothing(self):
        table1 = STUDIES.get("table1")
        assert table1.modes == ()
        assert table1.executors == ()

    def test_mode_locked_studies(self):
        assert STUDIES.get("async").modes == ("async",)
        assert STUDIES.get("semisync").modes == ("semisync",)

    def test_unsupported_mode_fails_fast(self):
        from repro.exceptions import ConfigurationError

        request = StudyRequest(overrides={"mode": "sync"})
        with pytest.raises(ConfigurationError, match="does not support --mode"):
            STUDIES.run("async", request)

    def test_unsupported_executor_on_closed_form_fails_fast(self):
        from repro.exceptions import ConfigurationError

        request = StudyRequest(overrides={"executor": "vectorized"})
        with pytest.raises(
            ConfigurationError, match="does not support --executor"
        ):
            STUDIES.run("table1", request)

    def test_supported_executor_is_accepted(self, capsys):
        # Sanity: validation does not reject combinations a study allows.
        study = STUDIES.get("fig5")
        assert "vectorized" in study.executors
        study.check_request(StudyRequest(overrides={"executor": "vectorized"}))

    def test_unknown_declared_mode_is_rejected_at_definition(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown mode"):
            make_study(name="bad-mode", modes=("warp",))

    def test_cli_listing_shows_support(self, capsys):
        from repro.cli import _print_listing

        _print_listing()
        out = capsys.readouterr().out
        assert "executors: serial|thread|process|vectorized" in out
        assert "closed form (no training" in out

    def test_cli_fails_fast_with_clear_error(self, capsys):
        from repro.cli import main

        code = main(["async", "--dataset", "blobs", "--mode", "sync"])
        assert code == 2
        assert "does not support --mode sync" in capsys.readouterr().err
