"""Tests for the client-systems layer: codecs, transport, network model,
fault injection, executors, and their integration into the engine."""

import numpy as np
import pytest

from repro.algorithms import build_algorithm
from repro.exceptions import ConfigurationError
from repro.federated.engine import FederatedSimulation
from repro.federated.heterogeneity import FixedEpochs
from repro.federated.messages import BYTES_PER_FLOAT, ClientMessage
from repro.federated.sampler import UniformFractionSampler
from repro.metrics.communication import compressed_upload_bytes
from repro.nn.losses import CrossEntropyLoss
from repro.systems import (
    CODEC_REGISTRY,
    ClientSystemProfile,
    FaultInjector,
    Float16Codec,
    HomogeneousNetwork,
    IdentityCodec,
    LogNormalNetwork,
    QSGDCodec,
    SignSGDCodec,
    SerialExecutor,
    TopKCodec,
    Transport,
    build_codec,
    build_executor,
    build_network,
)
from tests.conftest import make_model


def _vector(dim=64, seed=0):
    return np.random.default_rng(seed).normal(size=dim)


class TestCodecs:
    def test_identity_roundtrip_is_exact(self):
        vector = _vector()
        decoded, wire = IdentityCodec().roundtrip(vector)
        assert np.array_equal(decoded, vector)
        assert wire == vector.size * BYTES_PER_FLOAT

    def test_float16_roundtrip_close_and_half_size(self):
        vector = _vector()
        decoded, wire = Float16Codec().roundtrip(vector)
        assert np.allclose(decoded, vector, atol=1e-2)
        assert wire == vector.size * 2

    def test_topk_keeps_largest_magnitudes(self):
        vector = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
        codec = TopKCodec(k=2)
        decoded, wire = codec.roundtrip(vector)
        assert decoded[1] == -5.0 and decoded[3] == 3.0
        assert decoded[0] == decoded[2] == decoded[4] == 0.0
        assert wire == 2 * 8

    def test_topk_fraction_counts(self):
        codec = TopKCodec(fraction=0.1)
        assert codec.num_kept(100) == 10
        assert codec.num_kept(3) == 1  # never fewer than one coordinate

    def test_topk_full_fraction_is_lossless_support(self):
        vector = _vector(dim=8)
        decoded, _ = TopKCodec(fraction=1.0).roundtrip(vector)
        assert np.allclose(decoded, vector.astype(np.float32))

    def test_qsgd_deterministic_given_rng_and_unbiased(self):
        vector = _vector(dim=256, seed=3)
        codec = QSGDCodec(levels=8)
        first, _ = codec.roundtrip(vector, rng=7)
        second, _ = codec.roundtrip(vector, rng=7)
        assert np.array_equal(first, second)
        # Stochastic rounding is unbiased: the mean over many draws recovers
        # the input well beyond single-draw quantisation error.
        draws = np.mean(
            [codec.roundtrip(vector, rng=seed)[0] for seed in range(200)], axis=0
        )
        assert np.allclose(draws, vector, atol=0.05 * np.linalg.norm(vector))

    def test_qsgd_zero_vector(self):
        decoded, _ = QSGDCodec().roundtrip(np.zeros(10), rng=0)
        assert np.array_equal(decoded, np.zeros(10))

    def test_signsgd_reconstruction(self):
        vector = np.array([2.0, -4.0, 6.0])
        decoded, wire = SignSGDCodec().roundtrip(vector)
        assert np.array_equal(np.sign(decoded), np.sign(vector))
        assert np.allclose(np.abs(decoded), 4.0)  # mean magnitude scale
        assert wire == 1 + 4  # ceil(3/8) sign bytes + one scale float

    @pytest.mark.parametrize("name", ["float16", "topk", "qsgd", "signsgd"])
    def test_compressive_codecs_beat_raw_float32(self, name):
        dim = 1000
        codec = build_codec(name)
        assert codec.wire_bytes(dim) < dim * BYTES_PER_FLOAT

    def test_registry_contents_and_unknown_name(self):
        assert set(CODEC_REGISTRY) == {"identity", "float16", "topk", "qsgd", "signsgd"}
        with pytest.raises(ConfigurationError):
            build_codec("gzip")

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            TopKCodec(fraction=0.0)
        with pytest.raises(ConfigurationError):
            TopKCodec(k=0)
        with pytest.raises(ConfigurationError):
            QSGDCodec(levels=0)


class TestTransport:
    def test_compress_message_roundtrips_every_payload_entry(self):
        message = ClientMessage(
            client_id=0,
            payload={"a": _vector(40, seed=1), "b": _vector(30, seed=2)},
            num_samples=5,
            local_epochs=1,
            train_loss=0.3,
        )
        transport = Transport(Float16Codec())
        compressed, wire = transport.compress_message(message)
        assert wire == 40 * 2 + 30 * 2
        assert compressed.metadata["codec"] == "float16"
        assert compressed.metadata["wire_bytes"] == wire
        assert compressed.payload["a"].size == 40
        # The original message is untouched (float64 payload preserved).
        assert message.payload["a"].dtype == np.float64
        assert "codec" not in message.metadata

    def test_non_flat_payloads_keep_their_shape(self):
        matrix = np.arange(12, dtype=np.float64).reshape(3, 4)
        message = ClientMessage(
            client_id=0,
            payload={"m": matrix},
            num_samples=5,
            local_epochs=1,
            train_loss=0.3,
        )
        for name in ("identity", "float16", "topk", "qsgd", "signsgd"):
            compressed, wire = Transport(build_codec(name)).compress_message(
                message, rng=0
            )
            assert compressed.payload["m"].shape == (3, 4)
            assert wire == build_codec(name).wire_bytes(12)

    def test_default_codec_is_identity(self):
        transport = Transport()
        assert transport.codec.name == "identity"
        assert transport.upload_wire_bytes(10) == 10 * BYTES_PER_FLOAT
        assert transport.download_wire_bytes(10) == 10 * BYTES_PER_FLOAT


class TestNetworkModel:
    def test_profile_round_seconds_components(self):
        profile = ClientSystemProfile(
            downlink_bytes_per_s=100.0,
            uplink_bytes_per_s=50.0,
            latency_s=1.0,
            seconds_per_sample_epoch=0.5,
        )
        seconds = profile.round_seconds(
            download_bytes=200, upload_bytes=100, num_samples=4, epochs=2
        )
        assert seconds == pytest.approx(2.0 + 2.0 + 4.0 + 2.0)

    def test_invalid_profile(self):
        with pytest.raises(ConfigurationError):
            ClientSystemProfile(uplink_bytes_per_s=0.0)
        with pytest.raises(ConfigurationError):
            ClientSystemProfile(latency_s=-1.0)

    def test_homogeneous_profiles_identical(self):
        profiles = HomogeneousNetwork().profiles(5, rng=0)
        assert len(profiles) == 5
        assert len(set(profiles)) == 1

    def test_lognormal_profiles_heterogeneous_and_deterministic(self):
        network = LogNormalNetwork(compute_sigma=0.5, bandwidth_sigma=0.5)
        first = network.profiles(20, rng=3)
        second = network.profiles(20, rng=3)
        assert first == second
        speeds = {p.seconds_per_sample_epoch for p in first}
        assert len(speeds) == 20  # continuous draws: all distinct

    def test_network_registry(self):
        assert isinstance(build_network("homogeneous"), HomogeneousNetwork)
        assert isinstance(build_network("lognormal"), LogNormalNetwork)
        with pytest.raises(ConfigurationError):
            build_network("5g")


class TestFaultInjector:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(dropout_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultInjector(dropout_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultInjector(deadline_s=-1.0)
        # The extremes are legal: certain dropout and an instant deadline.
        assert FaultInjector(dropout_rate=1.0).crashes(5, rng=0).all()
        assert FaultInjector(deadline_s=0.0).stragglers(np.array([0.1])).all()

    def test_zero_rate_never_crashes(self):
        injector = FaultInjector(dropout_rate=0.0)
        assert not injector.crashes(100, rng=0).any()
        assert not injector.active

    def test_crash_rate_is_calibrated(self):
        injector = FaultInjector(dropout_rate=0.3)
        crashed = injector.crashes(20_000, rng=0)
        assert crashed.mean() == pytest.approx(0.3, abs=0.02)
        assert injector.active

    def test_stragglers_against_deadline(self):
        injector = FaultInjector(deadline_s=10.0)
        mask = injector.stragglers(np.array([5.0, 10.0, 15.0]))
        assert mask.tolist() == [False, False, True]
        assert not FaultInjector().stragglers(np.array([1e9])).any()


class TestExecutors:
    def test_registry(self):
        assert isinstance(build_executor("serial"), SerialExecutor)
        assert build_executor("thread", max_workers=2).isolated
        assert build_executor("process", max_workers=2).isolated
        with pytest.raises(ConfigurationError):
            build_executor("gpu")
        with pytest.raises(ConfigurationError):
            build_executor("thread", max_workers=0)

    @pytest.mark.parametrize("executor_name", ["thread", "process"])
    def test_isolated_executors_match_each_other(
        self, executor_name, iid_clients, blobs_split
    ):
        """Thread and process pools share the per-task seeding scheme, so a
        fixed engine seed gives identical models on either executor."""
        finals = {}
        for name in ("thread", executor_name):
            sim = FederatedSimulation(
                algorithm=build_algorithm("fedadmm", rho=0.3),
                model=make_model(seed=0),
                clients=[
                    type(c)(client_id=c.client_id, dataset=c.dataset)
                    for c in iid_clients
                ],
                test_dataset=blobs_split.test,
                loss=CrossEntropyLoss(),
                sampler=UniformFractionSampler(0.5),
                local_work=FixedEpochs(1),
                batch_size=16,
                learning_rate=0.1,
                seed=4,
                executor=build_executor(name, max_workers=2),
            )
            finals[name] = sim.run(3).final_params
        assert np.allclose(finals["thread"], finals[executor_name])

    def test_process_executor_merges_client_state(self, iid_clients, blobs_split):
        """Persistent FedADMM variables mutated in worker processes must be
        visible in the parent's client states afterwards."""
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedadmm", rho=0.3),
            model=make_model(seed=0),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            loss=CrossEntropyLoss(),
            sampler=UniformFractionSampler(1.0),
            local_work=FixedEpochs(1),
            batch_size=16,
            learning_rate=0.1,
            seed=0,
            executor=build_executor("process", max_workers=2),
        )
        sim.run(2)
        assert all(client.rounds_participated == 2 for client in iid_clients)
        assert all(np.linalg.norm(client.get("y")) > 0 for client in iid_clients)


def _systems_simulation(
    algorithm_name,
    clients,
    test_dataset,
    seed=0,
    codec="topk",
    dropout=0.2,
    executor="serial",
    deadline_s=None,
    **algorithm_kwargs,
):
    return FederatedSimulation(
        algorithm=build_algorithm(algorithm_name, **algorithm_kwargs),
        model=make_model(seed=seed),
        clients=clients,
        test_dataset=test_dataset,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(0.5),
        local_work=FixedEpochs(2),
        batch_size=16,
        learning_rate=0.2,
        seed=seed,
        transport=Transport(build_codec(codec)) if codec else None,
        network=build_network("lognormal"),
        faults=FaultInjector(dropout_rate=dropout, deadline_s=deadline_s),
        executor=build_executor(executor, max_workers=2),
    )


class TestEngineIntegration:
    def test_dropout_recorded_and_costs_still_paid(self, iid_clients, blobs_split):
        sim = _systems_simulation(
            "fedavg", iid_clients, blobs_split.test, dropout=0.5, seed=1
        )
        result = sim.run(8)
        dropped = result.history.total_dropped()
        assert dropped > 0
        # Dropped clients never upload but did download the global model.
        dim = result.final_params.size
        selected_per_round = 4  # 8 clients at fraction 0.5
        assert result.ledger.download_floats == 8 * selected_per_round * dim
        assert result.ledger.upload_floats == (8 * selected_per_round - dropped) * dim
        # Per-record invariant: num_selected is |S_t|, so the download charge
        # for every sampled client divides through exactly.
        for rec in result.history.records:
            assert rec.num_selected == selected_per_round
            assert rec.download_floats == rec.num_selected * dim
            assert rec.upload_floats == rec.num_aggregated * dim

    def test_round_with_no_survivors_is_abandoned(self, iid_clients, blobs_split):
        sim = _systems_simulation(
            "fedavg", iid_clients, blobs_split.test, dropout=0.9, seed=0
        )
        result = sim.run(6)
        abandoned = [rec for rec in result.history.records if rec.num_aggregated == 0]
        assert abandoned, "expected at least one fully-dropped round at 90% dropout"
        assert all(rec.num_selected > 0 for rec in abandoned)  # |S_t| is kept
        assert all(np.isnan(rec.train_loss) for rec in abandoned)
        assert all(rec.upload_floats == 0 for rec in abandoned)
        assert all(rec.download_floats > 0 for rec in abandoned)

    def test_deadline_drops_stragglers(self, iid_clients, blobs_split):
        # A deadline below any client's possible round time drops everyone as
        # a straggler and the round closes exactly at the deadline.
        sim = _systems_simulation(
            "fedavg", iid_clients, blobs_split.test, dropout=0.0, deadline_s=1e-6
        )
        record = sim.run_round()
        assert record.num_selected == 4
        assert record.num_aggregated == 0
        assert record.num_dropped == 4
        assert record.simulated_seconds == pytest.approx(1e-6)

    def test_deadline_without_network_rejected(self, iid_clients, blobs_split):
        """A deadline is meaningless without a clock: constructing the engine
        with faults.deadline_s but no network model must fail loudly instead
        of silently never dropping a straggler."""
        with pytest.raises(ConfigurationError):
            FederatedSimulation(
                algorithm=build_algorithm("fedavg"),
                model=make_model(),
                clients=iid_clients,
                test_dataset=blobs_split.test,
                sampler=UniformFractionSampler(0.5),
                local_work=FixedEpochs(1),
                batch_size=16,
                learning_rate=0.1,
                seed=0,
                faults=FaultInjector(deadline_s=0.001),
            )

    def test_scaffold_straggler_estimate_matches_per_vector_ledger(
        self, iid_clients, blobs_split
    ):
        """The time model costs SCAFFOLD's two payload vectors separately, so
        its nominal upload bytes agree with what the transport later records."""
        transport = Transport(build_codec("signsgd"))
        sim = FederatedSimulation(
            algorithm=build_algorithm("scaffold"),
            model=make_model(),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            sampler=UniformFractionSampler(0.5),
            local_work=FixedEpochs(1),
            batch_size=16,
            learning_rate=0.1,
            seed=0,
            transport=transport,
            network=build_network("homogeneous"),
        )
        record = sim.run_round()
        dim = sim.global_params.size
        per_client = sum(
            transport.upload_wire_bytes(d)
            for d in sim.algorithm.upload_vector_dims(dim)
        )
        assert record.upload_wire_bytes == per_client * record.num_aggregated

    def test_wire_bytes_default_to_raw_without_transport(
        self, iid_clients, blobs_split
    ):
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedavg"),
            model=make_model(),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            sampler=UniformFractionSampler(0.5),
            local_work=FixedEpochs(1),
            batch_size=16,
            learning_rate=0.1,
            seed=0,
        )
        result = sim.run(2)
        assert result.ledger.upload_wire_bytes == result.ledger.upload_bytes
        assert result.ledger.download_wire_bytes == result.ledger.download_bytes
        assert result.simulated_seconds == 0.0

    def test_final_evaluation_reuses_last_round_evaluation(
        self, iid_clients, blobs_split, monkeypatch
    ):
        """With eval_every=1 the final evaluation must not re-run
        evaluate_model on the identical parameters."""
        import repro.federated.engine as engine_module

        calls = []
        real_evaluate = engine_module.evaluate_model

        def counting_evaluate(*args, **kwargs):
            calls.append(1)
            return real_evaluate(*args, **kwargs)

        monkeypatch.setattr(engine_module, "evaluate_model", counting_evaluate)
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedavg"),
            model=make_model(),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            sampler=UniformFractionSampler(0.5),
            local_work=FixedEpochs(1),
            batch_size=16,
            learning_rate=0.1,
            seed=0,
        )
        result = sim.run(3)
        assert len(calls) == 3  # one per round, none at the end
        assert result.final_evaluation is not None
        assert result.final_evaluation.accuracy == result.history.final_accuracy()

    def test_final_evaluation_runs_when_last_round_skipped(
        self, iid_clients, blobs_split
    ):
        sim = FederatedSimulation(
            algorithm=build_algorithm("fedavg"),
            model=make_model(),
            clients=iid_clients,
            test_dataset=blobs_split.test,
            sampler=UniformFractionSampler(0.5),
            local_work=FixedEpochs(1),
            batch_size=16,
            learning_rate=0.1,
            seed=0,
            eval_every=2,
        )
        result = sim.run(3)  # rounds 1 and 2 evaluate; round 3 does not
        assert result.history.records[-1].test_accuracy is None
        assert result.final_evaluation is not None


class TestEndToEndScenario:
    """The acceptance scenario: FedADMM + compression + dropout + process pool."""

    @pytest.mark.parametrize("codec", ["topk", "qsgd"])
    def test_full_stack_deterministic_with_wire_savings(
        self, codec, blobs_split, iid_partition
    ):
        from repro.federated.client import build_clients

        results = []
        for _ in range(2):
            clients = build_clients(blobs_split.train, iid_partition)
            sim = _systems_simulation(
                "fedadmm",
                clients,
                blobs_split.test,
                seed=11,
                codec=codec,
                dropout=0.2,
                executor="process",
                rho=0.3,
            )
            results.append(sim.run(5))
        first, second = results
        assert np.allclose(first.final_params, second.final_params)
        assert first.history.accuracies.tolist() == second.history.accuracies.tolist()
        assert [r.dropped_clients for r in first.history.records] == [
            r.dropped_clients for r in second.history.records
        ]
        # Post-compression wire bytes are strictly below the raw ledger total.
        assert 0 < first.ledger.upload_wire_bytes < first.ledger.upload_bytes
        # Every round has a positive simulated wall-clock duration.
        assert (first.history.simulated_seconds > 0).all()
        # And training still works through the lossy transport.
        assert first.final_evaluation.accuracy > 0.5


class TestCommunicationMetrics:
    def test_compressed_upload_bytes(self):
        codec = build_codec("float16")
        assert compressed_upload_bytes(codec, dim=100, num_selected=3, num_rounds=2) == (
            100 * 2 * 3 * 2
        )
        assert compressed_upload_bytes(
            codec, dim=100, num_selected=3, num_rounds=2, vectors_per_upload=2
        ) == 100 * 2 * 3 * 2 * 2
        with pytest.raises(ConfigurationError):
            compressed_upload_bytes(codec, dim=0, num_selected=3, num_rounds=2)
