"""Observability woven through the federation runtime.

The contract under test: with a tracer attached, every run produces a
span tree (``run`` → ``round`` → ``client_task`` → ``local_sgd``, plus
``compress``/``aggregate`` per round) whose counts reconcile *exactly*
with the run's own :class:`TrainingHistory` — no matter which executor
physically ran the client work or which execution plan scheduled it —
and with the metrics registry's counters.  Also pins the AsyncScheduler
ordering invariants (span log totally ordered by virtual time then FIFO
seq) and that observability never changes training results.
"""

from __future__ import annotations

import pytest

from repro.algorithms import build_algorithm
from repro.federated import AsyncPlan, FederatedSimulation, SemiSyncPlan
from repro.federated.scheduler import AsyncScheduler
from repro.obs import MetricsRegistry, Profiler, Tracer, observe
from repro.obs.trace import load_chrome_trace, span_tree
from repro.systems.executor import build_executor
from repro.systems.network import HomogeneousNetwork, LogNormalNetwork

from conftest import make_model

ROUNDS = 3


def make_sim(clients, test_dataset, *, executor=None, plan=None, network=None,
             **obs_kwargs):
    return FederatedSimulation(
        algorithm=build_algorithm("fedadmm", rho=0.3),
        model=make_model(seed=0),
        clients=clients,
        test_dataset=test_dataset,
        batch_size=16,
        learning_rate=0.1,
        seed=0,
        executor=executor,
        plan=plan,
        network=network,
        **obs_kwargs,
    )


def reconcile(tracer, result, expected_tasks=None):
    """Assert the span tree matches the run's own accounting.

    ``expected_tasks`` is the independently derived task count (history
    for the sync plan, the ``tasks_executed`` counter otherwise — the
    async/semi-sync plans run more tasks than the aggregated rounds
    record, since in-flight work spans round boundaries).
    """
    records = tracer.sorted_records()
    by_name = {}
    for record in records:
        by_name.setdefault(record.name, []).append(record)
    assert len(by_name["run"]) == 1
    assert len(by_name["round"]) == result.rounds_run
    if expected_tasks is not None:
        assert len(by_name["client_task"]) == expected_tasks
    assert len(by_name["local_sgd"]) == len(by_name["client_task"])

    spans = {record.span_id: record for record in records}
    assert len(spans) == len(records), "span ids must be unique"
    for record in by_name["round"]:
        assert spans[record.parent_id].name == "run"
    for name in ("client_task", "compress", "aggregate"):
        for record in by_name.get(name, []):
            assert spans[record.parent_id].name == "round"
    for record in by_name["local_sgd"]:
        assert spans[record.parent_id].name == "client_task"

    keys = [record.sort_key() for record in records]
    assert keys == sorted(keys)
    return by_name


class TestSpanReconciliation:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process", "vectorized"])
    def test_sync_plan_span_tree_counts(self, executor, iid_clients, blobs_split):
        tracer, metrics = Tracer(), MetricsRegistry()
        sim = make_sim(
            iid_clients, blobs_split.test,
            executor=build_executor(executor, max_workers=2),
            tracer=tracer, metrics=metrics,
        )
        result = sim.run(ROUNDS)
        by_name = reconcile(
            tracer, result,
            expected_tasks=sum(r.num_selected for r in result.history.records),
        )
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["rounds_completed"] == result.rounds_run
        assert snapshot["counters"]["tasks_executed"] == len(by_name["client_task"])
        # The traced run reports its metrics snapshot in the metadata.
        assert result.metadata["metrics"] == snapshot

    def test_async_plan_spans_follow_virtual_clock(self, iid_clients, blobs_split):
        tracer = Tracer()
        sim = make_sim(
            iid_clients, blobs_split.test,
            plan=AsyncPlan(buffer_size=2, max_concurrency=4),
            network=LogNormalNetwork(),
            tracer=tracer, metrics=MetricsRegistry(),
        )
        result = sim.run(ROUNDS)
        tasks = sim.metrics.snapshot()["counters"]["tasks_executed"]
        by_name = reconcile(tracer, result, expected_tasks=tasks)
        # The tracer's virtual clock is the scheduler's: flight spans exist
        # and every round closes at a non-decreasing virtual time.
        assert by_name["client_flight"]
        round_ends = [r.virtual_end_s for r in by_name["round"]]
        assert all(end is not None for end in round_ends)
        assert round_ends == sorted(round_ends)
        for flight in by_name["client_flight"]:
            assert flight.virtual_end_s >= flight.virtual_start_s
        depth = sim.metrics.snapshot()["gauges"]["async.buffer_depth"]
        assert depth["max"] >= 1

    def test_semisync_plan_records_staleness(self, iid_clients, blobs_split):
        tracer, metrics = Tracer(), MetricsRegistry()
        sim = make_sim(
            iid_clients, blobs_split.test,
            plan=SemiSyncPlan(deadline_factor=0.5),
            network=HomogeneousNetwork(),
            tracer=tracer, metrics=metrics,
        )
        result = sim.run(ROUNDS)
        snapshot = metrics.snapshot()
        reconcile(
            tracer, result, expected_tasks=snapshot["counters"]["tasks_executed"]
        )
        assert snapshot["counters"]["rounds_completed"] == result.rounds_run

    def test_obs_context_reaches_engine_without_kwargs(
        self, iid_clients, blobs_split
    ):
        tracer = Tracer()
        with observe(tracer=tracer, metrics=MetricsRegistry()):
            sim = make_sim(iid_clients, blobs_split.test)
        assert sim.tracer is tracer
        result = sim.run(2)
        reconcile(tracer, result)

    def test_chrome_export_round_trips_the_run(
        self, tmp_path, iid_clients, blobs_split
    ):
        tracer = Tracer()
        sim = make_sim(iid_clients, blobs_split.test, tracer=tracer)
        sim.run(2)
        path = tracer.write_chrome_trace(tmp_path / "run.trace.json")
        loaded = load_chrome_trace(path)
        originals = tracer.sorted_records()
        assert [(r.name, r.span_id, r.parent_id) for r in loaded] == [
            (r.name, r.span_id, r.parent_id) for r in originals
        ]
        tree = span_tree(loaded)
        run = [r for r in tree[None] if r.name == "run"]
        assert len(run) == 1


class TestObservabilityIsInert:
    def test_traced_run_matches_untraced_run(self, blobs_split, iid_partition):
        from repro.federated.client import build_clients

        plain = make_sim(
            build_clients(blobs_split.train, iid_partition), blobs_split.test
        )
        plain_result = plain.run(ROUNDS)
        traced = make_sim(
            build_clients(blobs_split.train, iid_partition), blobs_split.test,
            tracer=Tracer(), metrics=MetricsRegistry(), profiler=Profiler(),
        )
        traced_result = traced.run(ROUNDS)
        assert (
            traced_result.final_params == plain_result.final_params
        ).all()
        assert [r.test_accuracy for r in traced_result.history.records] == [
            r.test_accuracy for r in plain_result.history.records
        ]
        # Without sinks, the result metadata carries no metrics key at all.
        assert "metrics" not in plain_result.metadata
        assert "metrics" in traced_result.metadata

    def test_profiler_collects_pipeline_phases(self, iid_clients, blobs_split):
        profiler = Profiler()
        sim = make_sim(iid_clients, blobs_split.test, profiler=profiler)
        sim.run(2)
        snap = profiler.snapshot()
        assert "pipeline.local_updates" in snap
        assert "pipeline.simulate_systems" in snap
        assert snap["pipeline.local_updates"]["calls"] == 2

    def test_vectorized_kernels_profiled(self, iid_clients, blobs_split):
        profiler = Profiler()
        sim = make_sim(
            iid_clients, blobs_split.test,
            executor=build_executor("vectorized"), profiler=profiler,
        )
        sim.run(2)
        assert any(key.startswith("kernel.") for key in profiler.snapshot())


class TestSchedulerObservability:
    def test_flight_spans_cover_dispatch_to_completion(self):
        tracer = Tracer()
        scheduler = AsyncScheduler(num_clients=4, tracer=tracer)
        scheduler.dispatch(0, duration_s=5.0)
        scheduler.dispatch(1, duration_s=2.0)
        first = scheduler.next_completion()
        second = scheduler.next_completion()
        assert (first.client_id, second.client_id) == (1, 0)
        flights = {r.attrs["client"]: r for r in tracer.records}
        assert flights[1].virtual_start_s == 0.0
        assert flights[1].virtual_end_s == 2.0
        assert flights[0].virtual_end_s == 5.0

    def test_simultaneous_completions_keep_fifo_order(self):
        tracer = Tracer()
        scheduler = AsyncScheduler(num_clients=4, tracer=tracer)
        for client in range(3):
            scheduler.dispatch(client, duration_s=1.0)
        completions = [scheduler.next_completion().client_id for _ in range(3)]
        assert completions == [0, 1, 2]
        records = tracer.sorted_records()
        # Identical virtual end-times: FIFO seq breaks the tie, so the
        # span order matches the completion order exactly.
        assert [r.attrs["client"] for r in records] == [0, 1, 2]
        keys = [r.sort_key() for r in records]
        assert keys == sorted(keys)

    def test_untraced_scheduler_records_nothing(self):
        scheduler = AsyncScheduler(num_clients=2)
        scheduler.dispatch(0, duration_s=1.0)
        scheduler.next_completion()
        assert not scheduler.tracer.enabled
