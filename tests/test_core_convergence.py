"""Tests for the convergence-theory helpers (Theorem 1, V_t, Table I)."""

import math

import numpy as np
import pytest

from repro.core.convergence import (
    COMPLEXITY_TABLE,
    Theorem1Constants,
    expected_rounds_bound,
    minimum_rho,
    optimality_gap,
    round_complexity,
    theorem1_constants,
)
from repro.exceptions import ConfigurationError, ConvergenceError


class TestMinimumRho:
    def test_value(self):
        assert minimum_rho(1.0) == pytest.approx(1.0 + math.sqrt(5.0))

    def test_scales_linearly(self):
        assert minimum_rho(2.0) == pytest.approx(2 * minimum_rho(1.0))

    def test_negative_lipschitz_rejected(self):
        with pytest.raises(ConfigurationError):
            minimum_rho(-1.0)


class TestTheorem1Constants:
    def test_c1_positive_above_threshold(self):
        lipschitz = 1.0
        constants = theorem1_constants(rho=minimum_rho(lipschitz) * 1.01, lipschitz=lipschitz, p_min=0.1)
        assert constants.is_valid()
        assert constants.c1 > 0
        assert constants.c2 > 0
        assert constants.c3 > 0

    def test_c1_non_positive_below_threshold(self):
        constants = theorem1_constants(rho=1.0, lipschitz=1.0, p_min=0.1)
        assert not constants.is_valid()
        assert math.isnan(constants.c3)

    def test_c1_formula(self):
        rho, lipschitz, p_min = 10.0, 1.0, 0.2
        constants = theorem1_constants(rho, lipschitz, p_min)
        expected = p_min * ((rho - 2 * lipschitz) / 2 - 2 * lipschitz**2 / rho)
        assert constants.c1 == pytest.approx(expected)

    def test_c1_scales_with_pmin(self):
        a = theorem1_constants(10.0, 1.0, 0.1)
        b = theorem1_constants(10.0, 1.0, 0.2)
        assert b.c1 == pytest.approx(2 * a.c1)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            theorem1_constants(rho=0.0, lipschitz=1.0, p_min=0.1)
        with pytest.raises(ConfigurationError):
            theorem1_constants(rho=1.0, lipschitz=0.0, p_min=0.1)
        with pytest.raises(ConfigurationError):
            theorem1_constants(rho=1.0, lipschitz=1.0, p_min=0.0)


class TestExpectedRoundsBound:
    def _constants(self, p_min=0.1):
        return theorem1_constants(rho=10.0, lipschitz=1.0, p_min=p_min)

    def test_bound_decreases_with_looser_target(self):
        constants = self._constants()
        tight = expected_rounds_bound(0.01, 10.0, 0.0, 10, constants)
        loose = expected_rounds_bound(0.1, 10.0, 0.0, 10, constants)
        assert tight > loose

    def test_bound_scales_inversely_with_pmin(self):
        """The O(1/(eps * p_min)) dependence of Remark 1."""
        low = expected_rounds_bound(0.01, 10.0, 0.0, 10, self._constants(p_min=0.05))
        high = expected_rounds_bound(0.01, 10.0, 0.0, 10, self._constants(p_min=0.5))
        assert low > high
        assert low / high == pytest.approx(10.0, rel=1e-6)

    def test_invalid_constants_rejected(self):
        bad = theorem1_constants(rho=1.0, lipschitz=1.0, p_min=0.1)
        with pytest.raises(ConvergenceError):
            expected_rounds_bound(0.01, 10.0, 0.0, 10, bad)

    def test_inexactness_floor(self):
        constants = self._constants()
        with pytest.raises(ConvergenceError):
            expected_rounds_bound(
                1e-9, 10.0, 0.0, 10, constants, epsilon_max=1.0
            )

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            expected_rounds_bound(0.0, 10.0, 0.0, 10, self._constants())


class TestOptimalityGap:
    def test_zero_at_stationary_consensus(self):
        theta = np.array([1.0, 2.0])
        assert optimality_gap([theta.copy()], [np.zeros(2)], theta) == 0.0

    def test_positive_off_consensus(self):
        theta = np.zeros(2)
        gap = optimality_gap([np.ones(2)], [np.ones(2)], theta)
        assert gap == pytest.approx(2.0 + 2.0)

    def test_includes_theta_grad_when_given(self):
        theta = np.zeros(2)
        base = optimality_gap([theta], [np.zeros(2)], theta)
        with_grad = optimality_gap([theta], [np.zeros(2)], theta, theta_grad=np.ones(2))
        assert with_grad == pytest.approx(base + 2.0)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            optimality_gap([np.zeros(2)], [], np.zeros(2))


class TestTableIComplexity:
    def test_all_methods_present(self):
        assert set(COMPLEXITY_TABLE) == {"fedavg", "fedprox", "scaffold", "fedpd", "fedadmm"}

    def test_fedadmm_scaling(self):
        """FedADMM: O((1/eps) * (m/S)) — linear in 1/eps and in m/S."""
        base = round_complexity("fedadmm", 0.01, 1000, 100)
        assert round_complexity("fedadmm", 0.005, 1000, 100) == pytest.approx(2 * base)
        assert round_complexity("fedadmm", 0.01, 1000, 50) == pytest.approx(2 * base)

    def test_fedavg_worse_than_fedadmm_for_small_epsilon(self):
        """The 1/eps^2 term dominates FedAvg at high accuracy (Table I)."""
        eps = 1e-4
        assert round_complexity("fedavg", eps, 1000, 100) > round_complexity(
            "fedadmm", eps, 1000, 100
        )

    def test_scaffold_worse_than_fedadmm_for_small_epsilon(self):
        eps = 1e-5
        assert round_complexity("scaffold", eps, 1000, 100) > round_complexity(
            "fedadmm", eps, 1000, 100
        )

    def test_fedprox_depends_on_dissimilarity(self):
        small_b = round_complexity("fedprox", 0.01, 100, 10, dissimilarity_b=1.0)
        large_b = round_complexity("fedprox", 0.01, 100, 10, dissimilarity_b=10.0)
        assert large_b == pytest.approx(100 * small_b)

    def test_fedpd_matches_full_participation_fedadmm(self):
        """With S = m, FedADMM's predicted complexity equals FedPD's O(1/eps)."""
        eps = 0.01
        assert round_complexity("fedadmm", eps, 100, 100) == pytest.approx(
            round_complexity("fedpd", eps, 100, 100)
        )

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            round_complexity("fedavg2", 0.1, 10, 1)

    def test_invalid_epsilon_and_counts(self):
        with pytest.raises(ConfigurationError):
            round_complexity("fedavg", 0.0, 10, 1)
        with pytest.raises(ConfigurationError):
            round_complexity("fedavg", 0.1, 10, 20)
