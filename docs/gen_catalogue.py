#!/usr/bin/env python
"""Generate ``docs/studies.md`` from the live :data:`STUDIES` registry.

The catalogue page is *derived*, never hand-edited: CI regenerates it
before every ``mkdocs build --strict``, so the documentation cannot drift
from the registry — a study added via ``STUDIES.add(...)`` appears here
on the next build, with its flags, sweep size, and the paper artefact it
reproduces.

Usage::

    python docs/gen_catalogue.py            # writes docs/studies.md
    python docs/gen_catalogue.py --stdout   # print instead of writing
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.registry import StudyRequest  # noqa: E402
from repro.experiments.studies import STUDIES  # noqa: E402

HEADER = """\
# Study catalogue

*This page is generated from the live study registry by
`docs/gen_catalogue.py` — do not edit it by hand.*

Every entry below is one `Study` in `repro.experiments.studies.STUDIES`:
runnable as `python -m repro.cli <name>`, from the library via
`run_study("<name>", StudyRequest(...))`, and — when it expands into
independent sweep points — in parallel/resumably via `--jobs`,
`--resume`, and `--store-dir` (see the
[large-sweeps tutorial](tutorials/large-sweeps.md)).

Shared flags (`--dataset`, `--scale`, `--clients`, `--rounds`, `--rho`,
`--seed`, the systems layer, the execution plan, and orchestration) are
available on every study; the *extra flags* column lists each study's own
knobs.  The *sweep points* column is the number of independent training
runs the study's default request expands into.
"""


def _artefact(description: str) -> str:
    """The paper table/figure a study reproduces, from its description."""
    prefix = description.split("—")[0].strip()
    return prefix if prefix else "—"


def _sweep_points(study) -> str:
    if not study.orchestrable:
        return "closed form"
    request = StudyRequest()
    config = study.build_config(request)
    if config is not None:
        config = request.apply_overrides(config)
    return str(len(study.specs(config, request)))


def _flags(study) -> str:
    if not study.flags:
        return "—"
    return "<br>".join(
        f"`{flag.name}` — {flag.kwargs.get('help', '')}".rstrip(" —")
        for flag in study.flags
    )


def _support(study) -> str:
    """Supported modes, executors, and adversaries, from the registry."""
    if not study.modes and not study.executors:
        return "— (no training)"
    adversaries = (
        ", ".join(f"`{a}`" for a in study.adversaries)
        if study.adversaries
        else "none"
    )
    return (
        f"modes: {', '.join(f'`{m}`' for m in study.modes)}"
        f"<br>executors: {', '.join(f'`{e}`' for e in study.executors)}"
        f"<br>adversaries: {adversaries}"
    )


def generate() -> str:
    lines = [HEADER]
    lines.append(
        "| Study | Reproduces | Description | Sweep points | Supports | Extra flags |"
    )
    lines.append("|---|---|---|---|---|---|")
    for study in STUDIES:
        summary = study.description.split("—", 1)[-1].strip()
        lines.append(
            f"| `{study.name}` "
            f"| {_artefact(study.description)} "
            f"| {summary} "
            f"| {_sweep_points(study)} "
            f"| {_support(study)} "
            f"| {_flags(study)} |"
        )
    lines.append("")
    lines.append(
        f"{len(STUDIES)} studies registered; "
        f"{sum(1 for s in STUDIES if s.orchestrable)} orchestrable "
        "(parallel + resumable), the rest closed-form.\n"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stdout", action="store_true",
                        help="print the page instead of writing docs/studies.md")
    parser.add_argument("--output", default=str(REPO_ROOT / "docs" / "studies.md"),
                        help="output path (default: docs/studies.md)")
    args = parser.parse_args(argv)
    page = generate()
    if args.stdout:
        print(page)
        return 0
    target = Path(args.output)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(page, encoding="utf-8")
    print(f"wrote {target} ({len(STUDIES)} studies)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
