#!/usr/bin/env python
"""Check internal links and anchors in ``docs/**/*.md`` — stdlib only.

``mkdocs build --strict`` already fails on links to missing *pages*, but
only for pages in the nav, and it does not validate ``#anchor`` fragments
against the target page's actual headings.  This checker closes both
gaps without needing the docs toolchain installed: CI runs it as the
``docs-linkcheck`` step before the mkdocs build.

Checked:

- relative links resolve to an existing file under ``docs/``,
- ``page.md#fragment`` (and same-page ``#fragment``) fragments match a
  heading slug in the target page,
- reference-style definitions (``[label]: target``) get the same
  treatment.

External links (``http://``, ``https://``, ``mailto:``) are skipped —
this gate must not flake on network weather.

Usage::

    python docs/check_links.py            # check docs/**/*.md
    python docs/check_links.py README.md  # extra files to include
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DOCS_ROOT = Path(__file__).resolve().parent
REPO_ROOT = DOCS_ROOT.parent

FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF_RE = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)")
HEADING_RE = re.compile(r"^\s{0,3}(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def strip_code(text: str) -> list[str]:
    """Markdown lines with fenced code blocks and inline code removed."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else re.sub(r"`[^`]*`", "``", line))
    return lines


def slugify(heading: str) -> str:
    """Approximate the python-markdown ``toc`` slug for a heading."""
    text = re.sub(r"[*_`]", "", heading)          # inline emphasis markers
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"[\s]+", "-", text)


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        slugs: set[str] = set()
        for line in strip_code(path.read_text(encoding="utf-8")):
            match = HEADING_RE.match(line)
            if match:
                base = slugify(match.group(2))
                slug, n = base, 1
                while slug in slugs:  # duplicate headings get _1, _2, ...
                    slug, n = f"{base}_{n}", n + 1
                slugs.add(slug)
        cache[path] = slugs
    return cache[path]


def iter_links(lines: list[str]):
    for lineno, line in enumerate(lines, start=1):
        for match in INLINE_LINK_RE.finditer(line):
            yield lineno, match.group(1)
        ref = REF_DEF_RE.match(line)
        if ref:
            yield lineno, ref.group(1)


def check_file(path: Path, cache: dict[Path, set[str]]) -> list[str]:
    errors = []
    lines = strip_code(path.read_text(encoding="utf-8"))
    for lineno, raw in iter_links(lines):
        target = raw.strip("<>")
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        target, _, fragment = target.partition("#")
        where = f"{path.relative_to(REPO_ROOT)}:{lineno}"
        if not target:  # same-page anchor
            resolved = path
        else:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{where}: broken link -> {raw}")
                continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved, cache):
                errors.append(f"{where}: missing anchor -> {raw}")
    return errors


def main(argv: list[str]) -> int:
    files = sorted(DOCS_ROOT.rglob("*.md"))
    files += [REPO_ROOT / arg for arg in argv]
    cache: dict[Path, set[str]] = {}
    errors = []
    for path in files:
        if not path.exists():
            errors.append(f"{path}: no such file")
            continue
        errors.extend(check_file(path, cache))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} files: "
          f"{'FAILED' if errors else 'ok'} ({len(errors)} broken link(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
