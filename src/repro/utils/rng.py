"""Deterministic random-number management.

Every stochastic component in the library (data synthesis, partitioning,
client sampling, SGD batching, weight initialisation) receives an explicit
``numpy.random.Generator``.  This module centralises how those generators are
created so that a single integer seed reproduces a full experiment.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a non-deterministic generator, an ``int`` produces a
    seeded one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class RngFactory:
    """Produces named, reproducible random generators from a root seed.

    The factory derives a child seed from the root seed and a string label so
    that adding a new consumer of randomness does not perturb the streams of
    existing consumers.

    Example
    -------
    >>> factory = RngFactory(seed=7)
    >>> rng_a = factory.make("client-sampling")
    >>> rng_b = factory.make("client-sampling")
    >>> float(rng_a.random()) == float(rng_b.random())
    True
    """

    def __init__(self, seed: int | None = 0):
        self._seed = seed

    @property
    def seed(self) -> int | None:
        """The root seed this factory derives every stream from."""
        return self._seed

    def make(self, label: str) -> np.random.Generator:
        """Return a generator uniquely determined by ``(seed, label)``."""
        entropy = [self._seed if self._seed is not None else 0]
        entropy.extend(ord(ch) for ch in label)
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def make_many(self, label: str, count: int) -> list[np.random.Generator]:
        """Return ``count`` independent generators for the stream ``label``."""
        entropy = [self._seed if self._seed is not None else 0]
        entropy.extend(ord(ch) for ch in label)
        seq = np.random.SeedSequence(entropy)
        return [np.random.default_rng(child) for child in seq.spawn(count)]

    def child(self, label: str) -> "RngFactory":
        """Derive a sub-factory, useful for per-run seeding in sweeps."""
        derived = int(self.make(label).integers(0, 2**31 - 1))
        return RngFactory(seed=derived)


def permutation_chunks(
    rng: np.random.Generator, n_items: int, n_chunks: int
) -> list[np.ndarray]:
    """Randomly permute ``range(n_items)`` and split into ``n_chunks`` chunks.

    The chunk sizes differ by at most one; every index appears exactly once.
    """
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    order = rng.permutation(n_items)
    return [np.sort(part) for part in np.array_split(order, n_chunks)]
