"""Small argument-validation helpers used across the library.

They raise :class:`repro.exceptions.ConfigurationError` (or ``ShapeError``)
with informative messages so that a bad experiment configuration fails fast
rather than deep inside a training loop.
"""

from __future__ import annotations

from typing import Sized

from repro.exceptions import ConfigurationError, ShapeError


def check_positive(value: float, name: str) -> float:
    """Ensure ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Ensure ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Ensure ``0 < value <= 1``; return it for chaining."""
    if not 0 < value <= 1:
        raise ConfigurationError(f"{name} must lie in (0, 1], got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Ensure ``0 <= value <= 1``; return it for chaining."""
    if not 0 <= value <= 1:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_same_length(a: Sized, b: Sized, name_a: str, name_b: str) -> None:
    """Ensure two sized collections have equal lengths."""
    if len(a) != len(b):
        raise ShapeError(
            f"{name_a} and {name_b} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )
