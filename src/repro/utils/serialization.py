"""JSON-friendly serialization helpers for experiment results and configs.

Everything persisted by the repo goes through :func:`to_jsonable` /
:func:`dumps_strict`, which map non-finite floats (NaN from abandoned
rounds and empty evaluations, ±Inf) to ``null`` and serialize with
``allow_nan=False``.  Python's ``json`` would otherwise emit the literal
tokens ``NaN`` / ``Infinity``, which are not JSON: strict parsers
(``jq``, ``JSON.parse``) reject the whole document.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into something ``json.dumps`` accepts.

    Handles numpy scalars and arrays, dataclasses, dictionaries, and
    sequences; non-finite floats become ``None``.  Unknown objects are
    converted with ``str``.
    """
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        value = float(obj)
        return value if math.isfinite(value) else None
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(item) for item in obj]
    return str(obj)


def dumps_strict(obj: Any, **kwargs) -> str:
    """``json.dumps`` producing standard JSON only.

    ``obj`` is passed through :func:`to_jsonable` (non-finite floats →
    ``null``) and serialized with ``allow_nan=False``, so a NaN that
    slips past the sanitiser through a new code path raises instead of
    silently emitting a non-JSON token.
    """
    return json.dumps(to_jsonable(obj), allow_nan=False, **kwargs)


def save_json(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialize ``obj`` to JSON at ``path`` (parent directories are created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        handle.write(dumps_strict(obj, indent=indent))
    return target


def load_json(path: str | Path) -> Any:
    """Load a JSON document written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
