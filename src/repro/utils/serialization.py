"""JSON-friendly serialization helpers for experiment results and configs."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into something ``json.dumps`` accepts.

    Handles numpy scalars and arrays, dataclasses, dictionaries, and
    sequences.  Unknown objects are converted with ``str``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(item) for item in obj]
    return str(obj)


def save_json(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialize ``obj`` to JSON at ``path`` (parent directories are created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent)
    return target


def load_json(path: str | Path) -> Any:
    """Load a JSON document written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
