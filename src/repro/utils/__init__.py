"""Shared utilities: seeded randomness, validation helpers, serialization."""

from repro.utils.rng import RngFactory, as_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_non_negative,
    check_probability,
    check_same_length,
)
from repro.utils.serialization import to_jsonable, save_json, load_json

__all__ = [
    "RngFactory",
    "as_rng",
    "spawn_rngs",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_same_length",
    "to_jsonable",
    "save_json",
    "load_json",
]
