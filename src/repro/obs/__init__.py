"""Observability: structured tracing, metrics, and profiling.

Three zero-dependency pillars, each usable on its own:

* :mod:`repro.obs.trace` — a :class:`Tracer` producing nested spans
  (``round`` → ``client_task`` → ``local_sgd`` / ``compress`` /
  ``aggregate``) that carry both wall-clock and the simulator's virtual
  clock, with Chrome ``trace_event`` JSON export (loadable in
  ``chrome://tracing`` / Perfetto) and a JSON-lines span log.  The
  :class:`NullTracer` compiles to no-ops when tracing is disabled.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms with a snapshot API and text/JSON dumps.
* :mod:`repro.obs.profile` — a :class:`Profiler` accumulating per-phase
  and per-kernel wall-clock into a hot-spot table
  (``repro profile <study>``).

The federation runtime resolves its observability sinks from the
process-wide :func:`active context <repro.obs.runtime.get_obs>` at engine
construction, so enabling tracing for a CLI run is one
:func:`~repro.obs.runtime.observe` block around the study — no engine or
plan signature changes.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.runtime import ObsContext, get_obs, observe, set_obs
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    load_chrome_trace,
    read_span_log,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "NULL_TRACER",
    "ObsContext",
    "Profiler",
    "SpanRecord",
    "Tracer",
    "get_obs",
    "load_chrome_trace",
    "observe",
    "read_span_log",
    "set_obs",
]
