"""Profiling hooks: per-phase and per-kernel wall-clock accumulation.

A :class:`Profiler` is a lock-protected ``key → (total seconds, calls)``
accumulator with a context-manager timer::

    with profiler.time("pipeline.local_updates"):
        ...

The federation runtime feeds it from two levels:

* **per-phase** — :class:`~repro.federated.rounds.ClientWorkPipeline`
  times its systems simulation, local updates, and codec round-trips;
* **per-kernel** — :class:`~repro.nn.batched.BatchedModel` times each
  stacked op's forward/backward (only when a profiler is attached; the
  hot loop pays a single ``None`` check otherwise).

``hotspot_table()`` renders the classic profile view — keys sorted by
total time with call counts, means, and share of profiled time — which
``repro profile <study>`` prints after running a study.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator


class Profiler:
    """Accumulates wall-clock per key; cheap enough for per-kernel use."""

    def __init__(self):
        self._lock = threading.Lock()
        self._totals: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    def add(self, key: str, seconds: float, calls: int = 1) -> None:
        """Fold ``seconds`` of measured time into ``key``."""
        with self._lock:
            self._totals[key] = self._totals.get(key, 0.0) + seconds
            self._calls[key] = self._calls.get(key, 0) + calls

    @contextmanager
    def time(self, key: str) -> Iterator[None]:
        """Time the enclosed block under ``key``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(key, time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """``key → {seconds, calls, mean_ms}`` in total-time order."""
        with self._lock:
            items = sorted(
                self._totals.items(), key=lambda item: item[1], reverse=True
            )
            return {
                key: {
                    "seconds": total,
                    "calls": self._calls[key],
                    "mean_ms": 1e3 * total / self._calls[key],
                }
                for key, total in items
            }

    def hotspot_table(self, top: int | None = None) -> str:
        """The hot-spot table: one row per key, hottest first."""
        rows = self.snapshot()
        if not rows:
            return "(no profile samples recorded)"
        grand_total = sum(entry["seconds"] for entry in rows.values())
        width = max(len(key) for key in rows)
        lines = [
            f"{'hotspot':<{width}}  {'calls':>8}  {'total s':>9}  "
            f"{'mean ms':>9}  {'share':>6}"
        ]
        for index, (key, entry) in enumerate(rows.items()):
            if top is not None and index >= top:
                lines.append(f"... ({len(rows) - top} more)")
                break
            share = entry["seconds"] / grand_total if grand_total > 0 else 0.0
            lines.append(
                f"{key:<{width}}  {entry['calls']:>8d}  "
                f"{entry['seconds']:>9.3f}  {entry['mean_ms']:>9.3f}  "
                f"{share:>6.1%}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._totals.clear()
            self._calls.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._totals)
