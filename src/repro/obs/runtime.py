"""Process-wide observability context.

The federation runtime never threads tracer/metrics/profiler handles
through every constructor.  Instead, a single module-level
:class:`ObsContext` holds the active sinks, and engines resolve them at
construction time via :func:`get_obs`.  Enabling observability for a run
is therefore one ``with`` block::

    from repro.obs import MetricsRegistry, Tracer, observe

    tracer, metrics = Tracer(), MetricsRegistry()
    with observe(tracer=tracer, metrics=metrics):
        result = run_single(config, algorithm)
    tracer.write_chrome_trace("run.trace.json")

The default context carries the :data:`~repro.obs.trace.NULL_TRACER`
and no metrics/profiler, so code paths that consult the context in the
common (disabled) case cost one attribute read.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class ObsContext:
    """The three observability sinks an engine resolves at construction."""

    tracer: Tracer = NULL_TRACER
    metrics: Optional[MetricsRegistry] = None
    profiler: Optional[Profiler] = None

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled


_DEFAULT = ObsContext()
_active = _DEFAULT


def get_obs() -> ObsContext:
    """The currently active observability context (never ``None``)."""
    return _active


def set_obs(context: Optional[ObsContext]) -> ObsContext:
    """Install ``context`` (or the inert default) and return the previous one."""
    global _active
    previous = _active
    _active = context if context is not None else _DEFAULT
    return previous


_UNSET = object()


@contextmanager
def observe(
    tracer: object = _UNSET,
    metrics: object = _UNSET,
    profiler: object = _UNSET,
) -> Iterator[ObsContext]:
    """Activate sinks for the enclosed block, restoring the previous context.

    Only the sinks passed explicitly are replaced; the rest are inherited
    from the context active at entry, so nested ``observe`` blocks compose.
    """
    updates = {}
    if tracer is not _UNSET:
        updates["tracer"] = tracer if tracer is not None else NULL_TRACER
    if metrics is not _UNSET:
        updates["metrics"] = metrics
    if profiler is not _UNSET:
        updates["profiler"] = profiler
    context = replace(get_obs(), **updates)
    previous = set_obs(context)
    try:
        yield context
    finally:
        set_obs(previous)
