"""Runtime metrics: counters, gauges, and histograms in one registry.

A :class:`MetricsRegistry` is a flat, lock-protected name → instrument
mapping with get-or-create semantics::

    registry.counter("rounds_completed").inc()
    registry.gauge("async.buffer_depth").set(len(buffer))
    registry.histogram("staleness").observe(update.staleness)

The federation runtime records rounds completed, tasks executed, wire
bytes by codec, aggregation-buffer depth and the staleness distribution,
cohort sizes and batched-vs-fallback task counts, and store hits on
resume (see the metrics reference in ``docs/tutorials/observability.md``).

``snapshot()`` returns a plain JSON-safe dict; ``render_text()`` a
human-readable dump; ``write_json()`` persists the snapshot (the CLI's
``--metrics PATH``).  Everything is stdlib-only and cheap enough to leave
on: instruments are touched per round / per task, never per mini-batch.
"""

from __future__ import annotations

import math
import threading
from pathlib import Path
from typing import Any

from repro.exceptions import ConfigurationError
from repro.utils.serialization import dumps_strict

#: Default histogram bucket upper bounds (the last bucket is +inf).  Tuned
#: for the quantities the runtime observes: staleness (small integers),
#: cohort sizes, and second-scale durations all land in distinct buckets.
DEFAULT_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)


class Counter:
    """Monotonically increasing total.

    Mutation is lock-protected: instruments are shared across the thread
    executor's workers, and an unsynchronised ``self.value += amount`` is
    a read-modify-write that loses increments under contention.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (depths, sizes, in-flight counts)."""

    __slots__ = ("name", "value", "max_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.value = value
            self.max_value = max(self.max_value, value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            self.max_value = max(self.max_value, self.value)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount
            self.max_value = max(self.max_value, self.value)


class Histogram:
    """Bucketed distribution with exact count/sum/min/max.

    Buckets are cumulative-style upper bounds (Prometheus convention):
    ``buckets[i]`` counts observations ``<= bounds[i]``, with one final
    overflow bucket for everything larger.
    """

    __slots__ = (
        "name", "bounds", "buckets", "count", "total", "min", "max", "_lock",
    )

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} bucket bounds must be sorted, got {bounds}"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.buckets[index] += 1
                    return
            self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
            "buckets": {
                **{f"le_{bound:g}": n for bound, n in zip(self.bounds, self.buckets)},
                "inf": self.buckets[-1],
            },
        }


class MetricsRegistry:
    """Process-wide, thread-safe name → instrument mapping."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Get-or-create accessors
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, self._counters)
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, self._histograms)
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    def _check_free(self, name: str, own: dict) -> None:
        """One name, one instrument type — mixed reuse is a bug."""
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a different type"
                )

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        """JSON-safe view of every instrument's current state."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: {"value": gauge.value, "max": gauge.max_value}
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.summary()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def render_text(self) -> str:
        """Human-readable dump, one instrument per line."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"counter   {name} = {value:g}")
        for name, gauge in snap["gauges"].items():
            lines.append(
                f"gauge     {name} = {gauge['value']:g} (max {gauge['max']:g})"
            )
        for name, hist in snap["histograms"].items():
            mean = "nan" if hist["mean"] is None else f"{hist['mean']:.3g}"
            lines.append(
                f"histogram {name}: count={hist['count']} mean={mean} "
                f"min={hist['min']} max={hist['max']}"
            )
        return "\n".join(lines)

    def write_json(self, path: str | Path) -> Path:
        """Persist ``snapshot()`` as JSON; returns the written path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dumps_strict(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return path

    def reset(self) -> None:
        """Drop every instrument (tests and fresh CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
