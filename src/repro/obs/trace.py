"""Structured tracing: nested spans over wall and virtual clocks.

A :class:`Tracer` produces :class:`SpanRecord` s — picklable, plain-data
descriptions of one timed operation.  Spans nest through a per-thread
stack, so ``with tracer.span("round"): with tracer.span("compress"): ...``
records the ``compress`` span as a child of the ``round`` span without any
explicit parent bookkeeping.  Each record carries

* **wall clock** — a Unix-epoch start plus a ``perf_counter``-measured
  duration, and
* **virtual clock** — the simulator's clock at open/close, read from the
  tracer's ``virtual_clock`` callable (the async/semi-sync plans point it
  at their scheduler's ``now``; the sync plan at cumulative simulated
  seconds), or passed explicitly.

Records created *outside* the tracer — by client executors running tasks
in worker threads or processes — are merged back with :meth:`Tracer.adopt`:
orphan roots are re-parented under the caller's open span and every record
gets a fresh position in the tracer's global FIFO sequence, so the final
span log is totally ordered by ``(virtual time, seq)`` no matter where the
work physically ran.

Exports: :meth:`Tracer.chrome_trace` writes the Chrome ``trace_event``
format (open in ``chrome://tracing`` or https://ui.perfetto.dev), and
:meth:`Tracer.write_span_log` a JSON-lines file of raw records.  Both
round-trip: :func:`load_chrome_trace` / :func:`read_span_log` reconstruct
the records, which the tests and ``benchmarks/check_trace.py`` lean on.

:class:`NullTracer` is the disabled mode: ``span()`` returns a shared
inert context manager and ``emit``/``adopt`` do nothing, so a traced code
path costs one attribute lookup and one no-op ``with`` when tracing is
off (measured in ``benchmarks/test_bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.utils.serialization import dumps_strict

#: Span attribute values must stay JSON-serialisable primitives so records
#: pickle cheaply and export losslessly.
AttrValue = Any


@dataclass
class SpanRecord:
    """One finished span: plain data, picklable across process boundaries."""

    name: str
    category: str = "sim"
    span_id: str = ""
    parent_id: str | None = None
    start_s: float = 0.0  #: Unix-epoch wall-clock at open.
    duration_s: float = 0.0  #: ``perf_counter``-measured wall duration.
    virtual_start_s: float | None = None
    virtual_end_s: float | None = None
    pid: int = 0
    tid: int = 0
    seq: int = 0  #: Global FIFO position assigned by the owning tracer.
    attrs: dict[str, AttrValue] = field(default_factory=dict)

    def sort_key(self) -> tuple[float, int]:
        """Total order: virtual time first, FIFO sequence among ties.

        Records without a virtual clock sort by wall-clock start, which for
        single-process traces preserves emission order.
        """
        virtual = (
            self.virtual_end_s
            if self.virtual_end_s is not None
            else (self.virtual_start_s if self.virtual_start_s is not None else -1.0)
        )
        return (virtual, self.seq)

    def to_payload(self) -> dict:
        """JSON-safe dict (the span-log line format)."""
        return {
            "name": self.name,
            "cat": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "virtual_start_s": self.virtual_start_s,
            "virtual_end_s": self.virtual_end_s,
            "pid": self.pid,
            "tid": self.tid,
            "seq": self.seq,
            "attrs": self.attrs,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=payload["name"],
            category=payload.get("cat", "sim"),
            span_id=payload.get("span_id", ""),
            parent_id=payload.get("parent_id"),
            start_s=float(payload.get("start_s", 0.0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            virtual_start_s=payload.get("virtual_start_s"),
            virtual_end_s=payload.get("virtual_end_s"),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            seq=int(payload.get("seq", 0)),
            attrs=dict(payload.get("attrs", {})),
        )


def new_span_id() -> str:
    """A collision-safe span id, unique across processes."""
    return f"{os.getpid():x}-{uuid.uuid4().hex[:12]}"


class _ActiveSpan:
    """Context manager for one open span; ``set`` attaches attributes."""

    __slots__ = ("_tracer", "record", "_start_perf")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record
        self._start_perf = 0.0

    def set(self, key: str, value: AttrValue) -> None:
        """Attach one attribute to the span."""
        self.record.attrs[key] = value

    def __enter__(self) -> "_ActiveSpan":
        self._start_perf = time.perf_counter()
        self.record.start_s = time.time()
        if self._tracer.virtual_clock is not None:
            self.record.virtual_start_s = float(self._tracer.virtual_clock())
        self._tracer._push(self.record)
        return self

    def __exit__(self, *exc_info) -> None:
        self.record.duration_s = time.perf_counter() - self._start_perf
        if self._tracer.virtual_clock is not None:
            self.record.virtual_end_s = float(self._tracer.virtual_clock())
        elif self.record.virtual_start_s is not None:
            self.record.virtual_end_s = self.record.virtual_start_s
        self._tracer._pop(self.record)


class _NullSpan:
    """Shared inert span: the entire cost of tracing when disabled."""

    __slots__ = ()

    def set(self, key: str, value: AttrValue) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects nested :class:`SpanRecord` s with deterministic ordering.

    Thread-safe: the record list and FIFO counter are lock-protected, and
    span parentage follows a *per-thread* stack so concurrent threads each
    nest their own spans correctly.
    """

    enabled = True

    def __init__(self, virtual_clock: Callable[[], float] | None = None):
        #: Read at span open/close to stamp the simulator's virtual clock.
        #: Plans with a scheduler point this at ``scheduler.now``.
        self.virtual_clock = virtual_clock
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._seq = 0
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Span creation
    # ------------------------------------------------------------------ #
    def span(self, name: str, category: str = "sim", virtual: float | None = None,
             **attrs: AttrValue) -> _ActiveSpan:
        """Open a span as a context manager; closes (and records) on exit."""
        record = SpanRecord(
            name=name,
            category=category,
            span_id=new_span_id(),
            parent_id=self.current_span_id(),
            virtual_start_s=virtual,
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFF,
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, record)

    def emit(
        self,
        name: str,
        category: str = "sim",
        duration_s: float = 0.0,
        start_s: float | None = None,
        virtual_start_s: float | None = None,
        virtual_end_s: float | None = None,
        parent_id: str | None = None,
        **attrs: AttrValue,
    ) -> SpanRecord:
        """Record a span directly, without opening a context.

        Used where the operation's extent is known only after the fact —
        scheduler flight times on the virtual clock, orchestrator spec
        durations measured inside worker processes.
        """
        record = SpanRecord(
            name=name,
            category=category,
            span_id=new_span_id(),
            parent_id=parent_id if parent_id is not None else self.current_span_id(),
            start_s=time.time() - duration_s if start_s is None else start_s,
            duration_s=duration_s,
            virtual_start_s=virtual_start_s,
            virtual_end_s=virtual_end_s,
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFF,
            attrs=dict(attrs),
        )
        self._append(record)
        return record

    def adopt(self, records: Iterable[SpanRecord], parent_id: str | None = None) -> None:
        """Merge records produced elsewhere (worker threads/processes).

        Orphan roots (``parent_id is None``) are re-parented under
        ``parent_id`` — by default the caller's currently open span — while
        parent links *within* the batch (e.g. a worker's ``local_sgd``
        under its ``client_task``) are preserved.  Every record is assigned
        a fresh position in this tracer's global FIFO sequence, in batch
        order.
        """
        adopt_under = parent_id if parent_id is not None else self.current_span_id()
        batch = list(records)
        own_ids = {record.span_id for record in batch}
        with self._lock:
            for record in batch:
                if record.parent_id is None or record.parent_id not in own_ids:
                    if record.parent_id is None:
                        record.parent_id = adopt_under
                self._seq += 1
                record.seq = self._seq
                self._records.append(record)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def current_span_id(self) -> str | None:
        """Id of this thread's innermost open span, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    @property
    def records(self) -> list[SpanRecord]:
        """Finished spans in emission (FIFO) order."""
        with self._lock:
            return list(self._records)

    def sorted_records(self) -> list[SpanRecord]:
        """Finished spans totally ordered by ``(virtual time, seq)``."""
        return sorted(self.records, key=SpanRecord.sort_key)

    def clear(self) -> None:
        """Drop every recorded span (the FIFO counter keeps advancing)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------ #
    # Internal stack plumbing
    # ------------------------------------------------------------------ #
    def _push(self, record: SpanRecord) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is record:
            stack.pop()
        self._append(record)

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._seq += 1
            record.seq = self._seq
            self._records.append(record)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` representation of every span.

        One complete (``"ph": "X"``) event per record; virtual-clock
        readings, span ids, and attributes travel in ``args`` so the
        export round-trips through :func:`load_chrome_trace`.
        """
        events = []
        for record in self.sorted_records():
            events.append(
                {
                    "name": record.name,
                    "cat": record.category,
                    "ph": "X",
                    "ts": record.start_s * 1e6,
                    "dur": max(record.duration_s, 0.0) * 1e6,
                    "pid": record.pid,
                    "tid": record.tid,
                    "args": {
                        "span_id": record.span_id,
                        "parent_id": record.parent_id,
                        "seq": record.seq,
                        "virtual_start_s": record.virtual_start_s,
                        "virtual_end_s": record.virtual_end_s,
                        **record.attrs,
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Write the Chrome-trace JSON; returns the written path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dumps_strict(self.chrome_trace(), indent=1) + "\n")
        return path

    def write_span_log(self, path: str | Path) -> Path:
        """Write the JSON-lines span log (one record per line, sorted)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            dumps_strict(record.to_payload(), sort_keys=True)
            for record in self.sorted_records()
        ]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    A single shared instance (:data:`NULL_TRACER`) serves every untraced
    simulation, so "tracing off" costs one truthiness/attribute check per
    traced site.
    """

    enabled = False

    def __init__(self):
        super().__init__()

    def span(self, name: str, category: str = "sim", virtual: float | None = None,
             **attrs: AttrValue) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def emit(self, name: str, **kwargs: AttrValue) -> None:  # type: ignore[override]
        return None

    def adopt(self, records: Iterable[SpanRecord], parent_id: str | None = None) -> None:
        return None

    def current_span_id(self) -> None:
        return None


#: Shared inert tracer used wherever tracing is not explicitly enabled.
NULL_TRACER = NullTracer()


# --------------------------------------------------------------------------- #
# Loaders (round-trip for tests and benchmarks/check_trace.py)
# --------------------------------------------------------------------------- #
def load_chrome_trace(path: str | Path) -> list[SpanRecord]:
    """Reconstruct :class:`SpanRecord` s from a Chrome-trace JSON file."""
    payload = json.loads(Path(path).read_text())
    records = []
    for event in payload.get("traceEvents", []):
        args = dict(event.get("args", {}))
        records.append(
            SpanRecord(
                name=event["name"],
                category=event.get("cat", "sim"),
                span_id=args.pop("span_id", ""),
                parent_id=args.pop("parent_id", None),
                start_s=float(event.get("ts", 0.0)) / 1e6,
                duration_s=float(event.get("dur", 0.0)) / 1e6,
                virtual_start_s=args.pop("virtual_start_s", None),
                virtual_end_s=args.pop("virtual_end_s", None),
                pid=int(event.get("pid", 0)),
                tid=int(event.get("tid", 0)),
                seq=int(args.pop("seq", 0)),
                attrs=args,
            )
        )
    return records


def read_span_log(path: str | Path) -> list[SpanRecord]:
    """Reconstruct :class:`SpanRecord` s from a JSON-lines span log."""
    records = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(SpanRecord.from_payload(json.loads(line)))
    return records


def span_tree(records: Iterable[SpanRecord]) -> dict[str | None, list[SpanRecord]]:
    """Group records by ``parent_id`` (``None`` holds the roots)."""
    children: dict[str | None, list[SpanRecord]] = {}
    for record in records:
        children.setdefault(record.parent_id, []).append(record)
    return children
