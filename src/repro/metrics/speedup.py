"""Speedup and reduction metrics reported alongside Table III.

The paper reports, per experiment,

* the speedup of each method relative to FedSGD (``297/10 = 29.7x`` style),
* the *reduction* of communication rounds achieved by FedADMM over the best
  performing baseline (``1 - rounds_fedadmm / rounds_best_baseline``).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError


def speedup_vs_reference(rounds: int | None, reference_rounds: int | None) -> float | None:
    """Speedup factor ``reference / rounds``; ``None`` if either did not finish."""
    if rounds is None or reference_rounds is None:
        return None
    if rounds <= 0 or reference_rounds <= 0:
        raise ConfigurationError("round counts must be positive for a speedup")
    return reference_rounds / rounds


def reduction_vs_best_baseline(
    method_rounds: int | None, baseline_rounds: dict[str, int | None]
) -> float | None:
    """Fractional round reduction of the method over its best baseline.

    Baselines that never reached the target are ignored; if no baseline
    reached it (or the method itself did not), the reduction is undefined and
    ``None`` is returned.
    """
    if method_rounds is None:
        return None
    finished = [r for r in baseline_rounds.values() if r is not None]
    if not finished:
        return None
    best = min(finished)
    if best <= 0:
        raise ConfigurationError("baseline round counts must be positive")
    return 1.0 - method_rounds / best
