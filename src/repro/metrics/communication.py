"""Communication-cost calculations.

The key comparison in the paper: per selected client per round, FedAvg /
FedProx / FedADMM upload exactly ``d`` floats while SCAFFOLD uploads ``2d``.
Combined with rounds-to-target this yields total bytes to a target accuracy.
"""

from __future__ import annotations

from repro.algorithms.base import FederatedAlgorithm
from repro.exceptions import ConfigurationError
from repro.federated.messages import BYTES_PER_FLOAT


def per_round_upload_floats(
    algorithm: FederatedAlgorithm, dim: int, num_selected: int
) -> int:
    """Floats uploaded by all selected clients in one round."""
    if dim <= 0 or num_selected <= 0:
        raise ConfigurationError("dim and num_selected must be positive")
    return algorithm.upload_floats(dim) * num_selected


def total_upload_floats(
    algorithm: FederatedAlgorithm, dim: int, num_selected: int, num_rounds: int
) -> int:
    """Floats uploaded over ``num_rounds`` rounds."""
    if num_rounds < 0:
        raise ConfigurationError("num_rounds must be non-negative")
    return per_round_upload_floats(algorithm, dim, num_selected) * num_rounds


def communication_to_target_bytes(
    algorithm: FederatedAlgorithm,
    dim: int,
    num_selected: int,
    rounds_to_target: int | None,
) -> int | None:
    """Uploaded bytes needed to reach the target, or ``None`` if never reached."""
    if rounds_to_target is None:
        return None
    floats = total_upload_floats(algorithm, dim, num_selected, rounds_to_target)
    return floats * BYTES_PER_FLOAT
