"""Communication-cost calculations.

The key comparison in the paper: per selected client per round, FedAvg /
FedProx / FedADMM upload exactly ``d`` floats while SCAFFOLD uploads ``2d``.
Combined with rounds-to-target this yields total bytes to a target accuracy.
With a transport codec (see :mod:`repro.systems.compression`) the same
quantities can be costed post-compression, i.e. as bytes actually on the
wire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.algorithms.base import FederatedAlgorithm
from repro.exceptions import ConfigurationError
from repro.federated.messages import BYTES_PER_FLOAT

if TYPE_CHECKING:  # runtime import would be fine; kept lazy for symmetry
    from repro.systems.compression import Codec


def per_round_upload_floats(
    algorithm: FederatedAlgorithm, dim: int, num_selected: int
) -> int:
    """Floats uploaded by all selected clients in one round."""
    if dim <= 0 or num_selected <= 0:
        raise ConfigurationError("dim and num_selected must be positive")
    return algorithm.upload_floats(dim) * num_selected


def total_upload_floats(
    algorithm: FederatedAlgorithm, dim: int, num_selected: int, num_rounds: int
) -> int:
    """Floats uploaded over ``num_rounds`` rounds."""
    if num_rounds < 0:
        raise ConfigurationError("num_rounds must be non-negative")
    return per_round_upload_floats(algorithm, dim, num_selected) * num_rounds


def communication_to_target_bytes(
    algorithm: FederatedAlgorithm,
    dim: int,
    num_selected: int,
    rounds_to_target: int | None,
) -> int | None:
    """Uploaded bytes needed to reach the target, or ``None`` if never reached."""
    if rounds_to_target is None:
        return None
    floats = total_upload_floats(algorithm, dim, num_selected, rounds_to_target)
    return floats * BYTES_PER_FLOAT


def compressed_upload_bytes(
    codec: "Codec", dim: int, num_selected: int, num_rounds: int, vectors_per_upload: int = 1
) -> int:
    """Post-compression uploaded bytes over a run.

    ``vectors_per_upload`` is the number of d-vectors each client ships per
    round (1 for FedAvg/FedProx/FedADMM, 2 for SCAFFOLD); codecs with
    per-vector overhead (norms, scales) pay it once per vector.
    """
    if dim <= 0 or num_selected <= 0 or vectors_per_upload <= 0:
        raise ConfigurationError(
            "dim, num_selected, and vectors_per_upload must be positive"
        )
    if num_rounds < 0:
        raise ConfigurationError("num_rounds must be non-negative")
    return codec.wire_bytes(dim) * vectors_per_upload * num_selected * num_rounds
