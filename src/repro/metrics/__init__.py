"""Metrics: rounds-to-target, speedups, and communication accounting."""

from repro.metrics.rounds_to_target import (
    rounds_to_target,
    RoundsToTarget,
    format_rounds,
)
from repro.metrics.speedup import speedup_vs_reference, reduction_vs_best_baseline
from repro.metrics.communication import (
    per_round_upload_floats,
    total_upload_floats,
    communication_to_target_bytes,
)

__all__ = [
    "rounds_to_target",
    "RoundsToTarget",
    "format_rounds",
    "speedup_vs_reference",
    "reduction_vs_best_baseline",
    "per_round_upload_floats",
    "total_upload_floats",
    "communication_to_target_bytes",
]
