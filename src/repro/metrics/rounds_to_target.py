"""Rounds-to-target-accuracy, the headline metric of the paper's Table III."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.federated.history import TrainingHistory


@dataclass
class RoundsToTarget:
    """Result of a rounds-to-target query.

    ``rounds`` is ``None`` when the target was not reached within the budget,
    which the paper's tables print as ``"<budget>+"`` (e.g. ``100+``).
    """

    target_accuracy: float
    rounds: int | None
    budget: int

    @property
    def reached(self) -> bool:
        """Whether the target accuracy was reached."""
        return self.rounds is not None

    def effective_rounds(self) -> int:
        """Rounds if reached, otherwise the budget (a conservative stand-in)."""
        return self.rounds if self.rounds is not None else self.budget


def rounds_to_target(
    history: TrainingHistory, target_accuracy: float, budget: int | None = None
) -> RoundsToTarget:
    """Extract the rounds-to-target metric from a training history."""
    if not 0 < target_accuracy <= 1:
        raise ConfigurationError(
            f"target_accuracy must lie in (0, 1], got {target_accuracy}"
        )
    budget = budget if budget is not None else len(history)
    rounds = history.rounds_to_accuracy(target_accuracy)
    return RoundsToTarget(
        target_accuracy=target_accuracy, rounds=rounds, budget=budget
    )


def format_rounds(result: RoundsToTarget) -> str:
    """Render a rounds-to-target result the way the paper's tables do."""
    if result.reached:
        return str(result.rounds)
    return f"{result.budget}+"
