"""FedADMM reproduction library.

Reproduces "FedADMM: A Robust Federated Deep Learning Framework with
Adaptivity to System Heterogeneity" (Gong, Li, Freris — ICDE 2022) as a
self-contained Python library: a NumPy neural-network substrate, a federated
simulation runtime, FedADMM and the paper's baselines (FedSGD, FedAvg,
FedProx, SCAFFOLD, FedPD), data partitioners for the paper's IID / non-IID /
imbalanced settings, convergence-theory helpers, and an experiment harness
that regenerates every table and figure of the evaluation section.

Quickstart
----------
>>> from repro import quick_federated_run
>>> result = quick_federated_run(algorithm="fedadmm", num_rounds=5, seed=0)
>>> 0.0 <= result.final_evaluation.accuracy <= 1.0
True
"""

from repro.version import __version__
from repro.algorithms import (
    FedADMM,
    FedAvg,
    FedProx,
    FedSGD,
    FedPD,
    Scaffold,
    build_algorithm,
    ALGORITHM_REGISTRY,
)
from repro.federated import (
    AsyncFederatedSimulation,
    FederatedSimulation,
    SimulationResult,
    UniformFractionSampler,
    FixedEpochs,
    UniformRandomEpochs,
    build_clients,
    build_staleness,
)
from repro.datasets import load_dataset, make_blobs, make_synthetic_images
from repro.partition import (
    IidPartitioner,
    ShardPartitioner,
    ImbalancedPartitioner,
    DirichletPartitioner,
    build_partitioner,
)
from repro.nn import build_model, MLP, CNN1, CNN2, LogisticRegression
from repro.systems import (
    FaultInjector,
    Transport,
    build_codec,
    build_executor,
    build_network,
)

__all__ = [
    "__version__",
    "FedADMM",
    "FedAvg",
    "FedProx",
    "FedSGD",
    "FedPD",
    "Scaffold",
    "build_algorithm",
    "ALGORITHM_REGISTRY",
    "FederatedSimulation",
    "AsyncFederatedSimulation",
    "SimulationResult",
    "UniformFractionSampler",
    "build_staleness",
    "FixedEpochs",
    "UniformRandomEpochs",
    "build_clients",
    "load_dataset",
    "make_blobs",
    "make_synthetic_images",
    "IidPartitioner",
    "ShardPartitioner",
    "ImbalancedPartitioner",
    "DirichletPartitioner",
    "build_partitioner",
    "build_model",
    "MLP",
    "CNN1",
    "CNN2",
    "LogisticRegression",
    "Transport",
    "FaultInjector",
    "build_codec",
    "build_executor",
    "build_network",
    "quick_federated_run",
]


def quick_federated_run(
    algorithm: str = "fedadmm",
    num_clients: int = 20,
    num_rounds: int = 10,
    non_iid: bool = False,
    seed: int = 0,
    **algorithm_kwargs,
) -> SimulationResult:
    """Run a small end-to-end federated experiment on the blobs dataset.

    A convenience entry point for the README quickstart and smoke tests; the
    full experiment harness lives in :mod:`repro.experiments`.
    """
    from repro.nn.losses import CrossEntropyLoss

    split = make_blobs(n_train=1200, n_test=400, rng=seed)
    partitioner = ShardPartitioner() if non_iid else IidPartitioner()
    partition = partitioner.partition(split.train, num_clients, rng=seed)
    clients = build_clients(split.train, partition)
    model = MLP(input_dim=split.train.feature_dim, hidden_dims=(32,), rng=seed)
    simulation = FederatedSimulation(
        algorithm=build_algorithm(algorithm, **algorithm_kwargs),
        model=model,
        clients=clients,
        test_dataset=split.test,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(0.25),
        local_work=FixedEpochs(2),
        batch_size=32,
        learning_rate=0.1,
        seed=seed,
    )
    return simulation.run(num_rounds)
