"""Datasets: containers, transforms, and synthetic stand-ins.

The paper evaluates on MNIST, Fashion-MNIST, and CIFAR-10.  This environment
has no network access, so :mod:`repro.datasets.synthetic` generates
deterministic, learnable class-prototype image datasets with the same shapes
and class counts.  The generators are registered under the original dataset
names in :mod:`repro.datasets.registry` so experiment configs read exactly
like the paper's.
"""

from repro.datasets.base import Dataset, TrainTestSplit, iterate_minibatches
from repro.datasets.synthetic import (
    SyntheticImageSpec,
    make_synthetic_images,
    make_blobs,
)
from repro.datasets.registry import DATASET_REGISTRY, load_dataset, DatasetInfo
from repro.datasets.transforms import normalize_features, flatten_images, standardize

__all__ = [
    "Dataset",
    "TrainTestSplit",
    "iterate_minibatches",
    "SyntheticImageSpec",
    "make_synthetic_images",
    "make_blobs",
    "DATASET_REGISTRY",
    "DatasetInfo",
    "load_dataset",
    "normalize_features",
    "flatten_images",
    "standardize",
]
