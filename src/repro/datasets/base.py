"""Dataset containers and batching helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import ShapeError
from repro.utils.rng import SeedLike, as_rng


@dataclass
class Dataset:
    """An in-memory supervised dataset.

    Attributes
    ----------
    features:
        Array of shape ``(n, d)`` (flattened) or ``(n, c, h, w)``.
    labels:
        Integer class labels of shape ``(n,)``.
    name:
        Human-readable identifier used in logs and tables.
    """

    features: np.ndarray
    labels: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.features.shape[0] != self.labels.shape[0]:
            raise ShapeError(
                f"features and labels disagree on sample count: "
                f"{self.features.shape[0]} vs {self.labels.shape[0]}"
            )
        if self.labels.ndim != 1:
            raise ShapeError(f"labels must be 1-D, got shape {self.labels.shape}")

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_classes(self) -> int:
        """Number of distinct classes (assumes labels are 0..K-1)."""
        if len(self) == 0:
            return 0
        return int(self.labels.max()) + 1

    @property
    def feature_dim(self) -> int:
        """Flattened feature dimensionality per sample."""
        return int(np.prod(self.features.shape[1:]))

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """Return a new :class:`Dataset` restricted to ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            features=self.features[indices],
            labels=self.labels[indices],
            name=name if name is not None else self.name,
        )

    def shuffled(self, rng: SeedLike = None) -> "Dataset":
        """Return a shuffled copy."""
        rng = as_rng(rng)
        order = rng.permutation(len(self))
        return self.subset(order)

    def label_counts(self) -> np.ndarray:
        """Per-class sample counts of shape ``(num_classes,)``."""
        return np.bincount(self.labels, minlength=self.num_classes)


@dataclass
class TrainTestSplit:
    """A train/test pair produced by the dataset registry."""

    train: Dataset
    test: Dataset
    name: str = "split"

    @property
    def num_classes(self) -> int:
        """Number of classes in the training split."""
        return self.train.num_classes


def iterate_minibatches(
    features: np.ndarray,
    labels: np.ndarray,
    batch_size: int | None,
    rng: SeedLike = None,
    shuffle: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield mini-batches ``(x, y)``; ``batch_size=None`` yields one full batch.

    The paper's IID 1,000-client runs use full-batch local training
    (``B = inf``), which corresponds to ``batch_size=None`` here.
    """
    n = features.shape[0]
    if n == 0:
        return
    if batch_size is None or batch_size >= n:
        yield features, labels
        return
    if batch_size <= 0:
        raise ShapeError(f"batch_size must be positive or None, got {batch_size}")
    order = np.arange(n)
    if shuffle:
        order = as_rng(rng).permutation(n)
    for start in range(0, n, batch_size):
        batch = order[start : start + batch_size]
        yield features[batch], labels[batch]


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, rng: SeedLike = None
) -> TrainTestSplit:
    """Randomly split a dataset into train/test parts."""
    if not 0 < test_fraction < 1:
        raise ShapeError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    rng = as_rng(rng)
    order = rng.permutation(len(dataset))
    n_test = max(1, int(round(test_fraction * len(dataset))))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return TrainTestSplit(
        train=dataset.subset(train_idx, name=f"{dataset.name}-train"),
        test=dataset.subset(test_idx, name=f"{dataset.name}-test"),
        name=dataset.name,
    )
