"""Dataset registry mapping the paper's dataset names to synthetic stand-ins.

``load_dataset("mnist")`` returns a 1x28x28, 10-class task;
``load_dataset("cifar10")`` returns a 3x32x32, 10-class task.  Sizes default
to laptop-friendly values but can be raised to the paper's 60,000/50,000
sample counts through the ``n_train`` / ``n_test`` arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import TrainTestSplit
from repro.datasets.synthetic import (
    SyntheticImageSpec,
    make_blobs,
    make_synthetic_images,
)
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata for a registered dataset."""

    name: str
    input_dim: int
    channels: int
    image_size: int
    num_classes: int
    paper_target_accuracy: float
    description: str


DATASET_REGISTRY: dict[str, DatasetInfo] = {
    "mnist": DatasetInfo(
        name="mnist",
        input_dim=784,
        channels=1,
        image_size=28,
        num_classes=10,
        paper_target_accuracy=0.97,
        description="Synthetic stand-in for MNIST (1x28x28 grayscale digits).",
    ),
    "fmnist": DatasetInfo(
        name="fmnist",
        input_dim=784,
        channels=1,
        image_size=28,
        num_classes=10,
        paper_target_accuracy=0.80,
        description="Synthetic stand-in for Fashion-MNIST (1x28x28 grayscale).",
    ),
    "cifar10": DatasetInfo(
        name="cifar10",
        input_dim=3072,
        channels=3,
        image_size=32,
        num_classes=10,
        paper_target_accuracy=0.45,
        description="Synthetic stand-in for CIFAR-10 (3x32x32 colour images).",
    ),
    "blobs": DatasetInfo(
        name="blobs",
        input_dim=32,
        channels=1,
        image_size=0,
        num_classes=10,
        paper_target_accuracy=0.80,
        description="Low-dimensional Gaussian-mixture task for fast runs.",
    ),
}

# Noise levels chosen so relative difficulty mirrors the real datasets:
# MNIST easiest, FMNIST harder, CIFAR-10 hardest.
_IMAGE_NOISE = {"mnist": 0.30, "fmnist": 0.45, "cifar10": 0.60}


def load_dataset(
    name: str,
    n_train: int = 4000,
    n_test: int = 1000,
    rng: SeedLike = 0,
    noise_std: float | None = None,
) -> TrainTestSplit:
    """Instantiate a registered dataset as a :class:`TrainTestSplit`."""
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        )
    info = DATASET_REGISTRY[key]
    if key == "blobs":
        return make_blobs(
            n_train=n_train,
            n_test=n_test,
            num_classes=info.num_classes,
            feature_dim=info.input_dim,
            rng=rng,
            name="blobs",
        )
    spec = SyntheticImageSpec(
        channels=info.channels,
        image_size=info.image_size,
        num_classes=info.num_classes,
        noise_std=noise_std if noise_std is not None else _IMAGE_NOISE[key],
    )
    return make_synthetic_images(
        n_train=n_train,
        n_test=n_test,
        spec=spec,
        rng=rng,
        name=key,
    )


def dataset_info(name: str) -> DatasetInfo:
    """Return the :class:`DatasetInfo` for ``name``."""
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        )
    return DATASET_REGISTRY[key]
