"""Synthetic, learnable classification datasets.

Because the environment has no network access, real MNIST / Fashion-MNIST /
CIFAR-10 cannot be downloaded.  The generators here produce datasets with the
same *interface* (shapes, 10 classes, train/test splits) and a controllable
difficulty, which is what the federated algorithms actually interact with:

* :func:`make_synthetic_images` draws, per class, a smooth random prototype
  image; each sample is the prototype plus spatially correlated noise and a
  small random translation.  Both linear models and CNNs can learn the task,
  and CNNs benefit from locality, mirroring the real datasets qualitatively.
* :func:`make_blobs` produces a low-dimensional Gaussian-mixture task used by
  the fast unit tests and the micro-benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset, TrainTestSplit
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_rng


@dataclass
class SyntheticImageSpec:
    """Shape and difficulty description of a synthetic image dataset."""

    channels: int = 1
    image_size: int = 28
    num_classes: int = 10
    noise_std: float = 0.35
    max_shift: int = 2
    prototype_smoothing: int = 3

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.image_size <= 0 or self.num_classes <= 0:
            raise ConfigurationError("channels, image_size, num_classes must be positive")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")
        if self.max_shift < 0:
            raise ConfigurationError("max_shift must be non-negative")

    @property
    def feature_dim(self) -> int:
        """Flattened dimensionality (e.g. 784 for the MNIST stand-in)."""
        return self.channels * self.image_size * self.image_size


def _smooth(image: np.ndarray, passes: int) -> np.ndarray:
    """Cheap box smoothing to make prototypes spatially coherent."""
    smoothed = image
    for _ in range(passes):
        padded = np.pad(smoothed, ((0, 0), (1, 1), (1, 1)), mode="edge")
        smoothed = (
            padded[:, :-2, 1:-1]
            + padded[:, 2:, 1:-1]
            + padded[:, 1:-1, :-2]
            + padded[:, 1:-1, 2:]
            + padded[:, 1:-1, 1:-1]
        ) / 5.0
    return smoothed


def _class_prototypes(spec: SyntheticImageSpec, rng: np.random.Generator) -> np.ndarray:
    """Draw one smooth prototype image per class, shape (K, c, h, w)."""
    prototypes = rng.normal(
        0.0,
        1.0,
        size=(spec.num_classes, spec.channels, spec.image_size, spec.image_size),
    )
    prototypes = np.stack(
        [_smooth(proto, spec.prototype_smoothing) for proto in prototypes]
    )
    # Normalise each prototype to unit RMS so classes are equally "bright".
    rms = np.sqrt(np.mean(prototypes**2, axis=(1, 2, 3), keepdims=True))
    return prototypes / np.maximum(rms, 1e-12)


def _translate(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift an image by (dy, dx) pixels, filling the border with zeros."""
    shifted = np.zeros_like(image)
    h, w = image.shape[-2:]
    ys = slice(max(dy, 0), h + min(dy, 0))
    xs = slice(max(dx, 0), w + min(dx, 0))
    ys_src = slice(max(-dy, 0), h + min(-dy, 0))
    xs_src = slice(max(-dx, 0), w + min(-dx, 0))
    shifted[..., ys, xs] = image[..., ys_src, xs_src]
    return shifted


def make_synthetic_images(
    n_train: int,
    n_test: int,
    spec: SyntheticImageSpec | None = None,
    rng: SeedLike = None,
    name: str = "synthetic-images",
    flatten: bool = True,
) -> TrainTestSplit:
    """Generate a train/test split of prototype-plus-noise images.

    Labels are balanced (as close to equal per class as the sizes allow) so
    that the shard-based non-IID partitioner behaves exactly as in the paper.
    """
    spec = spec if spec is not None else SyntheticImageSpec()
    rng = as_rng(rng)
    prototypes = _class_prototypes(spec, rng)

    def _generate(n: int, split: str) -> Dataset:
        labels = np.arange(n) % spec.num_classes
        rng.shuffle(labels)
        images = np.empty(
            (n, spec.channels, spec.image_size, spec.image_size), dtype=np.float64
        )
        for i, label in enumerate(labels):
            sample = prototypes[label] + rng.normal(
                0.0, spec.noise_std, size=prototypes[label].shape
            )
            if spec.max_shift > 0:
                dy = int(rng.integers(-spec.max_shift, spec.max_shift + 1))
                dx = int(rng.integers(-spec.max_shift, spec.max_shift + 1))
                sample = _translate(sample, dy, dx)
            images[i] = sample
        features = images.reshape(n, -1) if flatten else images
        return Dataset(features=features, labels=labels, name=f"{name}-{split}")

    return TrainTestSplit(
        train=_generate(n_train, "train"),
        test=_generate(n_test, "test"),
        name=name,
    )


def make_blobs(
    n_train: int = 2000,
    n_test: int = 500,
    num_classes: int = 10,
    feature_dim: int = 32,
    separation: float = 2.0,
    noise_std: float = 1.0,
    rng: SeedLike = None,
    name: str = "blobs",
) -> TrainTestSplit:
    """Gaussian-mixture classification task for fast tests and benchmarks."""
    if num_classes <= 0 or feature_dim <= 0:
        raise ConfigurationError("num_classes and feature_dim must be positive")
    rng = as_rng(rng)
    centers = rng.normal(0.0, separation, size=(num_classes, feature_dim))

    def _generate(n: int, split: str) -> Dataset:
        labels = np.arange(n) % num_classes
        rng.shuffle(labels)
        features = centers[labels] + rng.normal(0.0, noise_std, size=(n, feature_dim))
        return Dataset(features=features, labels=labels, name=f"{name}-{split}")

    return TrainTestSplit(
        train=_generate(n_train, "train"),
        test=_generate(n_test, "test"),
        name=name,
    )
