"""Feature transforms applied before federated training."""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ShapeError


def flatten_images(dataset: Dataset) -> Dataset:
    """Flatten ``(n, c, h, w)`` image features into ``(n, c*h*w)`` vectors."""
    features = dataset.features
    if features.ndim == 2:
        return dataset
    return Dataset(
        features=features.reshape(features.shape[0], -1),
        labels=dataset.labels,
        name=dataset.name,
    )


def normalize_features(dataset: Dataset, low: float = 0.0, high: float = 1.0) -> Dataset:
    """Min-max scale features to ``[low, high]`` (computed globally)."""
    if high <= low:
        raise ShapeError(f"high must exceed low, got [{low}, {high}]")
    features = dataset.features
    f_min, f_max = features.min(), features.max()
    span = max(f_max - f_min, 1e-12)
    scaled = (features - f_min) / span * (high - low) + low
    return Dataset(features=scaled, labels=dataset.labels, name=dataset.name)


def standardize(dataset: Dataset, epsilon: float = 1e-8) -> Dataset:
    """Standardise features to zero mean / unit variance per dimension."""
    features = dataset.features
    flat = features.reshape(features.shape[0], -1)
    mean = flat.mean(axis=0)
    std = flat.std(axis=0)
    standardized = (flat - mean) / np.maximum(std, epsilon)
    return Dataset(
        features=standardized.reshape(features.shape),
        labels=dataset.labels,
        name=dataset.name,
    )
