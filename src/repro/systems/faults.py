"""Fault injection: mid-round client dropout and straggler deadlines.

Real federated rounds lose clients in two distinct ways, and the engine
models both:

* **crashes** — a selected client disconnects mid-round (battery, network
  hand-off, app eviction) with probability ``dropout_rate``, independently
  per client per round.  Crashed clients never upload and, crucially, their
  persistent state does not advance (they are filtered *before* local
  training runs, which also keeps the simulation cheap).
* **stragglers** — with a round ``deadline_s``, any client whose simulated
  round time (see :mod:`repro.systems.network`) exceeds the deadline is cut
  from aggregation; the server closes the round at the deadline.

This is exactly the partial-participation regime the paper's Theorem 1
covers for FedADMM and where FedAvg/SCAFFOLD degrade.

Faults are *honest* failures: a faulty client crashes or misses the
deadline, but whatever it does upload is exactly what it trained.
Clients that lie — uploading corrupted updates or training on poisoned
data — are a different threat model, handled by
:mod:`repro.systems.adversaries` (with robust aggregation defenses); see
``docs/tutorials/robustness.md``.  The two compose: an adversarial
client can still crash.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_rng


@dataclass
class FaultInjector:
    """Per-round fault model applied to the selected client set."""

    dropout_rate: float = 0.0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        # Both extremes are legal: dropout_rate 1.0 crashes every client
        # every round and deadline_s 0.0 cuts every client with a positive
        # round time — the engine handles the resulting fully-abandoned
        # rounds (global model unchanged, download costs still charged).
        if not 0.0 <= self.dropout_rate <= 1.0:
            raise ConfigurationError(
                f"dropout_rate must lie in [0, 1], got {self.dropout_rate}"
            )
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ConfigurationError(
                f"deadline_s must be non-negative, got {self.deadline_s}"
            )

    def crashes(self, num_selected: int, rng: SeedLike = None) -> np.ndarray:
        """Boolean mask over the selected set: True = crashed mid-round."""
        if num_selected < 0:
            raise ConfigurationError(
                f"num_selected must be non-negative, got {num_selected}"
            )
        if self.dropout_rate == 0.0:
            return np.zeros(num_selected, dtype=bool)
        rng = as_rng(rng)
        return rng.random(num_selected) < self.dropout_rate

    def stragglers(self, round_times_s: np.ndarray) -> np.ndarray:
        """Boolean mask over the selected set: True = missed the deadline."""
        times = np.asarray(round_times_s, dtype=np.float64)
        if self.deadline_s is None:
            return np.zeros(times.size, dtype=bool)
        return times > self.deadline_s

    @property
    def active(self) -> bool:
        """Whether this injector can ever drop a client."""
        return self.dropout_rate > 0.0 or self.deadline_s is not None
