"""The transport layer: compress client uploads and cost the wire.

``Transport`` wraps a :class:`~repro.systems.compression.Codec` and applies
it to every named vector in a :class:`~repro.federated.messages.ClientMessage`
payload.  The engine aggregates the *round-tripped* (encode → decode)
vectors, so lossy codecs perturb training exactly as they would in a real
deployment, while the returned wire-byte counts feed the
:class:`~repro.federated.messages.CommunicationLedger` and the network time
model.

Downlink (server → client) traffic is shipped uncompressed float32 by
default, matching common practice where broadcast bandwidth is cheap and
only the many uplinks are compressed.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.exceptions import ProtocolError
from repro.federated.messages import BYTES_PER_FLOAT, ClientMessage
from repro.systems.compression import (
    Codec,
    EncodedVector,
    IdentityCodec,
    QSGDCodec,
    TopKCodec,
)
from repro.utils.rng import SeedLike


class Transport:
    """Applies one codec to every uplink payload vector."""

    def __init__(self, codec: Codec | None = None):
        self.codec = codec if codec is not None else IdentityCodec()

    def compress_message(
        self, message: ClientMessage, rng: SeedLike = None
    ) -> tuple[ClientMessage, int]:
        """Round-trip one upload through the codec.

        Returns a new message whose payload holds the decoded (lossy)
        vectors, plus the total bytes the encoded payload occupies on the
        wire.  The original message is left untouched.
        """
        wire_bytes = 0
        decoded_payload: dict[str, np.ndarray] = {}
        for key, vector in message.payload.items():
            # Codecs operate on flat vectors; ravel around them so payloads
            # of any shape survive the round trip with their shape intact.
            array = np.asarray(vector)
            decoded, vec_bytes = self.codec.roundtrip(array.ravel(), rng=rng)
            decoded_payload[key] = decoded.reshape(array.shape)
            wire_bytes += vec_bytes
        compressed = replace(
            message,
            payload=decoded_payload,
            metadata={**message.metadata, "codec": self.codec.name,
                      "wire_bytes": wire_bytes},
        )
        return compressed, wire_bytes

    def decode(self, encoded: EncodedVector, template: np.ndarray) -> np.ndarray:
        """Validated decode of one wire vector against a model template.

        ``compress_message`` round-trips payloads inside a single process,
        where shapes are trusted by construction.  ``decode`` is the
        boundary-crossing path: the encoded vector arrived from another
        process and every field must be checked against ``template`` (an
        array with the expected shape) before the codec touches it.  Raises
        :class:`~repro.exceptions.ProtocolError` on any mismatch instead of
        silently reshaping or broadcasting.
        """
        template = np.asarray(template)
        expected_dim = int(template.size)
        if encoded.codec != self.codec.name:
            raise ProtocolError(
                f"payload codec {encoded.codec!r} does not match transport "
                f"codec {self.codec.name!r}",
                code="bad_codec",
            )
        if encoded.dim != expected_dim:
            raise ProtocolError(
                f"payload declares dim={encoded.dim} but the model template "
                f"has {expected_dim} scalars (shape {template.shape})"
            )
        expected_bytes = self.codec.wire_bytes(expected_dim)
        if encoded.wire_bytes != expected_bytes:
            raise ProtocolError(
                f"payload declares wire_bytes={encoded.wire_bytes} but a "
                f"{self.codec.name} vector of dim {expected_dim} occupies "
                f"{expected_bytes} bytes"
            )
        self._validate_data(encoded, expected_dim)
        decoded = self.codec.decode(encoded)
        if decoded.size != expected_dim:
            raise ProtocolError(
                f"decoded vector has {decoded.size} scalars, expected "
                f"{expected_dim}"
            )
        return decoded.reshape(template.shape)

    def _validate_data(self, encoded: EncodedVector, dim: int) -> None:
        """Per-codec consistency checks on the raw wire arrays."""
        data = encoded.data
        name = self.codec.name

        def _require(condition: bool, detail: str) -> None:
            if not condition:
                raise ProtocolError(f"invalid {name} payload: {detail}")

        def _vector(key: str, size: int) -> np.ndarray:
            _require(key in data, f"missing field {key!r}")
            array = np.asarray(data[key])
            _require(array.ndim == 1, f"{key!r} must be one-dimensional")
            _require(
                array.size == size,
                f"{key!r} has {array.size} entries, expected {size}",
            )
            return array

        if name in ("identity", "float16"):
            values = _vector("values", dim)
            _require(
                np.issubdtype(values.dtype, np.floating),
                f"'values' must be floating point, got {values.dtype}",
            )
        elif name == "topk":
            assert isinstance(self.codec, TopKCodec)
            kept = self.codec.num_kept(dim)
            indices = _vector("indices", kept)
            values = _vector("values", kept)
            _require(
                np.issubdtype(indices.dtype, np.integer),
                f"'indices' must be integers, got {indices.dtype}",
            )
            _require(
                np.issubdtype(values.dtype, np.floating),
                f"'values' must be floating point, got {values.dtype}",
            )
            idx = indices.astype(np.int64)
            _require(
                bool(idx.size == 0 or (idx[0] >= 0 and idx[-1] < dim)),
                "'indices' out of range for the template",
            )
            _require(
                bool(np.all(np.diff(idx) > 0)) if idx.size > 1 else True,
                "'indices' must be strictly increasing",
            )
        elif name == "qsgd":
            assert isinstance(self.codec, QSGDCodec)
            levels = _vector("levels", dim)
            signs = _vector("signs", dim)
            norm = _vector("norm", 1)
            _require(
                np.issubdtype(levels.dtype, np.integer),
                f"'levels' must be integers, got {levels.dtype}",
            )
            _require(
                bool(np.all((levels >= 0) & (levels <= self.codec.levels))),
                f"'levels' must lie in [0, {self.codec.levels}]",
            )
            _require(
                bool(np.all(np.abs(signs.astype(np.int64)) == 1)),
                "'signs' must be +/-1",
            )
            _require(
                bool(np.isfinite(norm[0]) and norm[0] >= 0),
                "'norm' must be a finite non-negative scalar",
            )
        elif name == "signsgd":
            signs = _vector("signs", dim)
            scale = _vector("scale", 1)
            _require(
                bool(np.all(np.abs(signs.astype(np.int64)) == 1)),
                "'signs' must be +/-1",
            )
            _require(
                bool(np.isfinite(scale[0]) and scale[0] >= 0),
                "'scale' must be a finite non-negative scalar",
            )

    def upload_wire_bytes(self, num_floats: int) -> int:
        """Nominal post-compression bytes for an upload of ``num_floats`` scalars."""
        return self.codec.wire_bytes(num_floats)

    def download_wire_bytes(self, num_floats: int) -> int:
        """Downlink bytes for ``num_floats`` scalars (uncompressed float32)."""
        return num_floats * BYTES_PER_FLOAT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transport(codec={self.codec.name!r})"
