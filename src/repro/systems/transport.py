"""The transport layer: compress client uploads and cost the wire.

``Transport`` wraps a :class:`~repro.systems.compression.Codec` and applies
it to every named vector in a :class:`~repro.federated.messages.ClientMessage`
payload.  The engine aggregates the *round-tripped* (encode → decode)
vectors, so lossy codecs perturb training exactly as they would in a real
deployment, while the returned wire-byte counts feed the
:class:`~repro.federated.messages.CommunicationLedger` and the network time
model.

Downlink (server → client) traffic is shipped uncompressed float32 by
default, matching common practice where broadcast bandwidth is cheap and
only the many uplinks are compressed.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.federated.messages import BYTES_PER_FLOAT, ClientMessage
from repro.systems.compression import Codec, IdentityCodec
from repro.utils.rng import SeedLike


class Transport:
    """Applies one codec to every uplink payload vector."""

    def __init__(self, codec: Codec | None = None):
        self.codec = codec if codec is not None else IdentityCodec()

    def compress_message(
        self, message: ClientMessage, rng: SeedLike = None
    ) -> tuple[ClientMessage, int]:
        """Round-trip one upload through the codec.

        Returns a new message whose payload holds the decoded (lossy)
        vectors, plus the total bytes the encoded payload occupies on the
        wire.  The original message is left untouched.
        """
        wire_bytes = 0
        decoded_payload: dict[str, np.ndarray] = {}
        for key, vector in message.payload.items():
            # Codecs operate on flat vectors; ravel around them so payloads
            # of any shape survive the round trip with their shape intact.
            array = np.asarray(vector)
            decoded, vec_bytes = self.codec.roundtrip(array.ravel(), rng=rng)
            decoded_payload[key] = decoded.reshape(array.shape)
            wire_bytes += vec_bytes
        compressed = replace(
            message,
            payload=decoded_payload,
            metadata={**message.metadata, "codec": self.codec.name,
                      "wire_bytes": wire_bytes},
        )
        return compressed, wire_bytes

    def upload_wire_bytes(self, num_floats: int) -> int:
        """Nominal post-compression bytes for an upload of ``num_floats`` scalars."""
        return self.codec.wire_bytes(num_floats)

    def download_wire_bytes(self, num_floats: int) -> int:
        """Downlink bytes for ``num_floats`` scalars (uncompressed float32)."""
        return num_floats * BYTES_PER_FLOAT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transport(codec={self.codec.name!r})"
