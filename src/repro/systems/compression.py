"""Update-compression codecs for the transport layer.

A :class:`Codec` maps a flat float vector to a compact wire representation
and back.  The decode side is lossy for every codec except
:class:`IdentityCodec`; the engine aggregates the *decoded* vectors, so
compression error feeds into convergence exactly as it would in a real
deployment.  ``wire_bytes(dim)`` gives the exact on-the-wire size of an
encoded d-vector, used both by the :class:`~repro.federated.messages.CommunicationLedger`
and by the network time model (straggler prediction needs sizes before the
update is computed).

The codec family mirrors the standard gradient-compression literature:
float16 casting, top-k sparsification (Aji & Heafield, 2017), QSGD
stochastic quantisation (Alistarh et al., 2017), and signSGD with a
magnitude scale (Bernstein et al., 2018).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.federated.messages import BYTES_PER_FLOAT
from repro.utils.rng import SeedLike, as_rng

#: Bytes used for one scalar side-channel value (norms, scales).
_SCALAR_BYTES = 4

#: Bytes used for one coordinate index in sparse encodings (uint32).
_INDEX_BYTES = 4


@dataclass
class EncodedVector:
    """A codec's wire representation of one flat vector."""

    codec: str
    dim: int
    wire_bytes: int
    data: dict[str, np.ndarray] = field(default_factory=dict)


class Codec:
    """Interface: encode/decode one flat vector and cost its wire size."""

    name = "base"

    def encode(self, vector: np.ndarray, rng: SeedLike = None) -> EncodedVector:
        """Compress a flat vector into its wire representation."""
        raise NotImplementedError

    def decode(self, encoded: EncodedVector) -> np.ndarray:
        """Reconstruct a (possibly lossy) flat float64 vector."""
        raise NotImplementedError

    def wire_bytes(self, dim: int) -> int:
        """Exact bytes on the wire for an encoded d-dimensional vector."""
        raise NotImplementedError

    def roundtrip(self, vector: np.ndarray, rng: SeedLike = None) -> tuple[np.ndarray, int]:
        """Encode then decode; returns (reconstruction, wire bytes)."""
        encoded = self.encode(np.asarray(vector, dtype=np.float64), rng=rng)
        return self.decode(encoded), encoded.wire_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityCodec(Codec):
    """No compression: float32 transport, exact float64 reconstruction."""

    name = "identity"

    def encode(self, vector: np.ndarray, rng: SeedLike = None) -> EncodedVector:
        values = np.asarray(vector, dtype=np.float64)
        return EncodedVector(
            codec=self.name,
            dim=values.size,
            wire_bytes=self.wire_bytes(values.size),
            data={"values": values.copy()},
        )

    def decode(self, encoded: EncodedVector) -> np.ndarray:
        return np.asarray(encoded.data["values"], dtype=np.float64).copy()

    def wire_bytes(self, dim: int) -> int:
        return dim * BYTES_PER_FLOAT


class Float16Codec(Codec):
    """Half-precision casting: 2 bytes per coordinate, small rounding error."""

    name = "float16"

    def encode(self, vector: np.ndarray, rng: SeedLike = None) -> EncodedVector:
        values = np.asarray(vector, dtype=np.float64)
        return EncodedVector(
            codec=self.name,
            dim=values.size,
            wire_bytes=self.wire_bytes(values.size),
            data={"values": values.astype(np.float16)},
        )

    def decode(self, encoded: EncodedVector) -> np.ndarray:
        return np.asarray(encoded.data["values"], dtype=np.float64)

    def wire_bytes(self, dim: int) -> int:
        return dim * 2


class TopKCodec(Codec):
    """Keep only the ``k`` largest-magnitude coordinates (value + index pairs).

    ``fraction`` selects ``k = max(1, round(fraction * d))``; alternatively a
    fixed ``k`` may be given.  The reconstruction is zero off-support, which
    is why delta-style uploads (FedADMM's Δ_i) tolerate it far better than
    raw-model uploads.
    """

    name = "topk"

    def __init__(self, fraction: float | None = 0.1, k: int | None = None):
        if k is not None:
            if k <= 0:
                raise ConfigurationError(f"k must be positive, got {k}")
            self.k = int(k)
            self.fraction = None
        else:
            if fraction is None or not 0 < fraction <= 1:
                raise ConfigurationError(
                    f"fraction must lie in (0, 1], got {fraction!r}"
                )
            self.fraction = float(fraction)
            self.k = None

    def num_kept(self, dim: int) -> int:
        """Number of coordinates kept for a d-dimensional vector."""
        if self.k is not None:
            return min(self.k, dim)
        return max(1, int(round(self.fraction * dim)))

    def encode(self, vector: np.ndarray, rng: SeedLike = None) -> EncodedVector:
        values = np.asarray(vector, dtype=np.float64)
        kept = self.num_kept(values.size)
        if kept >= values.size:
            indices = np.arange(values.size, dtype=np.uint32)
        else:
            indices = np.argpartition(np.abs(values), -kept)[-kept:].astype(np.uint32)
        indices = np.sort(indices)
        return EncodedVector(
            codec=self.name,
            dim=values.size,
            wire_bytes=self.wire_bytes(values.size),
            data={
                "indices": indices,
                "values": values[indices].astype(np.float32),
            },
        )

    def decode(self, encoded: EncodedVector) -> np.ndarray:
        out = np.zeros(encoded.dim, dtype=np.float64)
        out[encoded.data["indices"].astype(np.int64)] = encoded.data["values"]
        return out

    def wire_bytes(self, dim: int) -> int:
        kept = self.num_kept(dim)
        return kept * (BYTES_PER_FLOAT + _INDEX_BYTES)


class QSGDCodec(Codec):
    """QSGD stochastic quantisation to ``levels`` uniform levels per sign.

    Each coordinate is mapped to ``sign(v_i) * l_i / levels * ||v||_2`` where
    ``l_i`` is an integer level chosen by unbiased stochastic rounding.  The
    wire cost is ``ceil(log2(levels + 1)) + 1`` bits per coordinate (level +
    sign) plus one float for the norm.
    """

    name = "qsgd"

    def __init__(self, levels: int = 16):
        if levels <= 0:
            raise ConfigurationError(f"levels must be positive, got {levels}")
        self.levels = int(levels)

    @property
    def bits_per_coordinate(self) -> int:
        """Bits per coordinate: the level index plus the sign bit."""
        return int(math.ceil(math.log2(self.levels + 1))) + 1

    def encode(self, vector: np.ndarray, rng: SeedLike = None) -> EncodedVector:
        rng = as_rng(rng)
        values = np.asarray(vector, dtype=np.float64)
        norm = float(np.linalg.norm(values))
        if norm == 0.0:
            levels = np.zeros(values.size, dtype=np.int32)
            signs = np.ones(values.size, dtype=np.int8)
        else:
            scaled = np.abs(values) / norm * self.levels
            floor = np.floor(scaled)
            levels = (floor + (rng.random(values.size) < (scaled - floor))).astype(
                np.int32
            )
            signs = np.where(values < 0, -1, 1).astype(np.int8)
        return EncodedVector(
            codec=self.name,
            dim=values.size,
            wire_bytes=self.wire_bytes(values.size),
            data={
                "levels": levels,
                "signs": signs,
                "norm": np.array([norm], dtype=np.float64),
            },
        )

    def decode(self, encoded: EncodedVector) -> np.ndarray:
        norm = float(encoded.data["norm"][0])
        levels = encoded.data["levels"].astype(np.float64)
        signs = encoded.data["signs"].astype(np.float64)
        return signs * levels / self.levels * norm

    def wire_bytes(self, dim: int) -> int:
        return int(math.ceil(dim * self.bits_per_coordinate / 8)) + _SCALAR_BYTES


class SignSGDCodec(Codec):
    """One bit per coordinate plus a mean-magnitude scale (scaled signSGD)."""

    name = "signsgd"

    def encode(self, vector: np.ndarray, rng: SeedLike = None) -> EncodedVector:
        values = np.asarray(vector, dtype=np.float64)
        scale = float(np.mean(np.abs(values))) if values.size else 0.0
        return EncodedVector(
            codec=self.name,
            dim=values.size,
            wire_bytes=self.wire_bytes(values.size),
            data={
                "signs": np.where(values < 0, -1, 1).astype(np.int8),
                "scale": np.array([scale], dtype=np.float64),
            },
        )

    def decode(self, encoded: EncodedVector) -> np.ndarray:
        scale = float(encoded.data["scale"][0])
        return encoded.data["signs"].astype(np.float64) * scale

    def wire_bytes(self, dim: int) -> int:
        return int(math.ceil(dim / 8)) + _SCALAR_BYTES


CODEC_REGISTRY: dict[str, type[Codec]] = {
    IdentityCodec.name: IdentityCodec,
    Float16Codec.name: Float16Codec,
    TopKCodec.name: TopKCodec,
    QSGDCodec.name: QSGDCodec,
    SignSGDCodec.name: SignSGDCodec,
}


def build_codec(name: str, **kwargs) -> Codec:
    """Instantiate a codec by registry name."""
    try:
        codec_cls = CODEC_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown codec {name!r}; available: {sorted(CODEC_REGISTRY)}"
        ) from None
    return codec_cls(**kwargs)
