"""Adversarial client behaviours and robust aggregation defenses.

The faults layer (:mod:`repro.systems.faults`) models clients that fail
*honestly* — they crash or straggle, but whatever they upload is what they
trained.  This module models clients that *lie*: byzantine participants
whose uploads are corrupted after local training but before transport, and
data poisoners that train faithfully on deliberately mislabelled data.

Two registries live here:

* :data:`ADVERSARY_REGISTRY` — client behaviours.  ``sign_flip`` reverses
  the update direction, ``gaussian_noise`` drowns it in noise, ``scale``
  boosts it (the model-replacement attack; a negative factor gives the
  inner-product-manipulation variant), and ``label_flip`` poisons the
  client's local dataset (labels ``y -> K-1-y``) and then trains honestly.
* :data:`DEFENSE_REGISTRY` — robust server-side aggregation rules applied
  to the cohort's update vectors before the algorithm's own aggregation:
  coordinate-wise ``median``, ``trimmed_mean``, and ``norm_clip`` (clip to
  the cohort's median update norm).

Corruption happens at the :class:`~repro.federated.rounds.ClientWorkPipeline`
seam on the coordinator thread, with one RNG stream per ``(client, round)``
derived from the simulation's :class:`~repro.utils.rng.RngFactory`
(``adversary/round-R/client-C``), so a corrupted run is bit-identical
across the serial, thread, process, and vectorized executors and across
``max_workers`` settings.

Defenses wrap the algorithm (:class:`DefendedAlgorithm`): both the flat
``aggregate`` call and the hierarchical plan's streaming accumulators route
through one message-list transform, so a flat ``SyncPlan`` round and a
1-shard ``HierarchicalPlan`` round stay bitwise identical under defense.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.algorithms.base import BufferedAccumulator, FederatedAlgorithm
from repro.exceptions import ConfigurationError
from repro.obs.runtime import get_obs

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from repro.datasets.base import Dataset
    from repro.federated.messages import ClientMessage

#: Payload vectors that *are* update directions (corrupted in place).
_DIRECTION_KEYS = frozenset({"delta", "gradient", "delta_params", "delta_control"})

#: Payload vectors that are whole models (corrupted as theta + f(v - theta)).
_MODEL_KEYS = frozenset({"params", "augmented_model"})

#: Payload vectors that are never corrupted (FedDropoutAvg's binary mask —
#: flipping a mask is not a gradient attack, and the mask must stay
#: consistent with the masked parameters it annotates).
_PROTECTED_KEYS = frozenset({"mask"})


# --------------------------------------------------------------------------- #
# Behaviours
# --------------------------------------------------------------------------- #
class AdversaryBehaviour:
    """One way a malicious client perturbs its update direction."""

    name = "base"
    #: Whether the behaviour rewrites uploads (byzantine); data poisoners
    #: corrupt the training data instead and upload honestly.
    corrupts_updates = True

    def corrupt_direction(
        self, direction: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the corrupted update direction (must not mutate the input)."""
        raise NotImplementedError

    def poison_dataset(self, dataset: "Dataset") -> "Dataset":
        """Return a poisoned copy of a client's dataset (data poisoners only)."""
        raise ConfigurationError(
            f"adversary {self.name!r} does not poison data"
        )  # pragma: no cover - guarded by corrupts_updates


class SignFlipAdversary(AdversaryBehaviour):
    """Upload the *negated* update direction, boosted by ``scale``.

    The default boost (5x) is the static sign-flip attack the robust
    aggregation literature evaluates against: strong enough that a plain
    mean with 20% attackers moves the model *up* the loss surface, while
    rank-based defenses shrug it off.
    """

    name = "sign_flip"

    def __init__(self, scale: float = 5.0):
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = scale

    def corrupt_direction(
        self, direction: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return -self.scale * direction


class GaussianNoiseAdversary(AdversaryBehaviour):
    """Drown the honest direction in isotropic gaussian noise."""

    name = "gaussian_noise"

    def __init__(self, sigma: float = 1.0):
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self.sigma = sigma

    def corrupt_direction(
        self, direction: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return direction + self.sigma * rng.standard_normal(direction.size)


class ScaleAdversary(AdversaryBehaviour):
    """Model replacement: boost the honest direction by ``factor``.

    With a large positive factor one adversary dominates a plain mean
    (Bagdasaryan et al.'s model replacement); a negative factor yields the
    inner-product-manipulation (IPM) attack that points the aggregate away
    from the descent direction while staying norm-inconspicuous.
    """

    name = "scale"

    def __init__(self, factor: float = 10.0):
        if factor == 0:
            raise ConfigurationError("factor must be non-zero")
        self.factor = factor

    def corrupt_direction(
        self, direction: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return self.factor * direction


class LabelFlipAdversary(AdversaryBehaviour):
    """Data poisoning: train honestly on labels flipped ``y -> K-1-y``.

    ``num_classes`` pins the label permutation; ``None`` derives it per
    client dataset (correct whenever each poisoned client holds the top
    class, e.g. IID partitions — pass it explicitly for shard partitions).
    """

    name = "label_flip"
    corrupts_updates = False

    def __init__(self, num_classes: int | None = None):
        if num_classes is not None and num_classes < 2:
            raise ConfigurationError(
                f"num_classes must be at least 2, got {num_classes}"
            )
        self.num_classes = num_classes

    def poison_dataset(self, dataset: "Dataset") -> "Dataset":
        from repro.datasets.base import Dataset

        classes = (
            self.num_classes if self.num_classes is not None else dataset.num_classes
        )
        return Dataset(
            features=dataset.features,
            labels=(classes - 1) - dataset.labels,
            name=f"{dataset.name}-labelflip",
        )


ADVERSARY_REGISTRY: dict[str, type[AdversaryBehaviour]] = {
    "sign_flip": SignFlipAdversary,
    "gaussian_noise": GaussianNoiseAdversary,
    "scale": ScaleAdversary,
    "label_flip": LabelFlipAdversary,
}


# --------------------------------------------------------------------------- #
# The adversary model the pipeline consumes
# --------------------------------------------------------------------------- #
class AdversaryModel:
    """A behaviour plus the fraction of the population that exhibits it.

    The adversarial subset is drawn once per simulation from the
    ``adversary-selection`` RNG stream (``round(fraction * m)`` clients,
    without replacement), so which clients are malicious is a property of
    the seed, not of the executor or round schedule.
    """

    def __init__(self, behaviour: AdversaryBehaviour, fraction: float):
        if not 0 < fraction <= 1:
            raise ConfigurationError(
                f"adversary fraction must lie in (0, 1], got {fraction}"
            )
        self.behaviour = behaviour
        self.fraction = fraction

    @property
    def name(self) -> str:
        return self.behaviour.name

    @property
    def corrupts_updates(self) -> bool:
        return self.behaviour.corrupts_updates

    @property
    def poisons_data(self) -> bool:
        return not self.behaviour.corrupts_updates

    def select(self, num_clients: int, rng: np.random.Generator) -> frozenset[int]:
        """The adversarial client indices for a population of ``num_clients``."""
        count = int(round(self.fraction * num_clients))
        count = min(max(count, 1), num_clients)
        chosen = rng.choice(num_clients, size=count, replace=False)
        return frozenset(int(index) for index in chosen)

    def poison_dataset(self, dataset: "Dataset") -> "Dataset":
        return self.behaviour.poison_dataset(dataset)

    def corrupt_message(
        self,
        message: "ClientMessage",
        global_params: np.ndarray,
        rng: np.random.Generator,
    ) -> "ClientMessage":
        """Return a corrupted copy of one upload (the original is untouched).

        Direction payloads (deltas, gradients, control deltas) are corrupted
        directly; whole-model payloads are corrupted in direction space
        (``theta + corrupt(v - theta)``) so every behaviour has the same
        geometric meaning regardless of the algorithm's wire format.
        """
        from repro.federated.messages import ClientMessage

        payload: dict[str, np.ndarray] = {}
        for key, vector in message.payload.items():
            if key in _PROTECTED_KEYS:
                payload[key] = vector
            elif key in _MODEL_KEYS:
                direction = vector - global_params
                payload[key] = global_params + self.behaviour.corrupt_direction(
                    direction, rng
                )
            elif key in _DIRECTION_KEYS:
                payload[key] = self.behaviour.corrupt_direction(vector, rng)
            else:
                raise ConfigurationError(
                    f"adversary {self.name!r} does not know whether payload "
                    f"key {key!r} is a direction or a model; extend "
                    f"repro.systems.adversaries with its semantics"
                )
        if "mask" in payload and "params" in payload:
            # FedDropoutAvg ships masked parameters; re-masking keeps the
            # corrupted upload consistent with its (uncorrupted) mask.
            payload["params"] = payload["params"] * payload["mask"]
        return ClientMessage(
            client_id=message.client_id,
            payload=payload,
            num_samples=message.num_samples,
            local_epochs=message.local_epochs,
            train_loss=message.train_loss,
            metadata=dict(message.metadata),
        )


def build_adversary(name: str, fraction: float, **kwargs) -> AdversaryModel:
    """Instantiate an :class:`AdversaryModel` by behaviour registry name."""
    key = name.lower()
    if key not in ADVERSARY_REGISTRY:
        raise ConfigurationError(
            f"unknown adversary {name!r}; available: {sorted(ADVERSARY_REGISTRY)}"
        )
    return AdversaryModel(ADVERSARY_REGISTRY[key](**kwargs), fraction)


# --------------------------------------------------------------------------- #
# Defenses
# --------------------------------------------------------------------------- #
class Defense:
    """A robust transform over the cohort's stacked update vectors.

    ``apply`` receives an ``(n, d)`` array of per-client update directions
    for one payload key and returns the defended ``(n, d)`` array plus how
    many of the ``n`` contributions it rejected (for the
    ``defense.rejected_updates`` counter).  Combining defenses replace every
    row with the robust combined vector — the algorithm's own mean/sum then
    reproduces exactly the robust aggregate while its participation-scaled
    step sizes still see the true cohort size.
    """

    name = "base"

    def apply(self, vectors: np.ndarray) -> tuple[np.ndarray, int]:
        raise NotImplementedError


class CoordinateMedianDefense(Defense):
    """Replace the cohort with its coordinate-wise median."""

    name = "median"

    def apply(self, vectors: np.ndarray) -> tuple[np.ndarray, int]:
        combined = np.median(vectors, axis=0)
        defended = np.broadcast_to(combined, vectors.shape).copy()
        return defended, max(vectors.shape[0] - 1, 0)


class TrimmedMeanDefense(Defense):
    """Coordinate-wise mean after trimming the ``trim`` fraction at each end."""

    name = "trimmed_mean"

    def __init__(self, trim: float = 0.25):
        if not 0 <= trim < 0.5:
            raise ConfigurationError(f"trim must lie in [0, 0.5), got {trim}")
        self.trim = trim

    def apply(self, vectors: np.ndarray) -> tuple[np.ndarray, int]:
        count = vectors.shape[0]
        cut = int(np.floor(self.trim * count))
        if 2 * cut >= count:
            cut = (count - 1) // 2
        ordered = np.sort(vectors, axis=0)
        kept = ordered[cut : count - cut] if cut else ordered
        combined = kept.mean(axis=0)
        defended = np.broadcast_to(combined, vectors.shape).copy()
        return defended, 2 * cut


class NormClipDefense(Defense):
    """Clip every update to the cohort's median update norm.

    Parameter-free: the threshold adapts to the honest majority's scale, so
    boosted (model-replacement) updates lose their amplification while
    honest updates pass through unchanged.
    """

    name = "norm_clip"

    def apply(self, vectors: np.ndarray) -> tuple[np.ndarray, int]:
        norms = np.linalg.norm(vectors, axis=1)
        threshold = float(np.median(norms))
        if threshold <= 0:
            return vectors.copy(), 0
        over = norms > threshold
        scales = np.ones_like(norms)
        scales[over] = threshold / norms[over]
        return vectors * scales[:, None], int(over.sum())


DEFENSE_REGISTRY: dict[str, type[Defense]] = {
    "median": CoordinateMedianDefense,
    "trimmed_mean": TrimmedMeanDefense,
    "norm_clip": NormClipDefense,
}


def build_defense(name: str, **kwargs) -> Defense:
    """Instantiate a :class:`Defense` by registry name."""
    key = name.lower()
    if key not in DEFENSE_REGISTRY:
        raise ConfigurationError(
            f"unknown defense {name!r}; available: {sorted(DEFENSE_REGISTRY)}"
        )
    return DEFENSE_REGISTRY[key](**kwargs)


# --------------------------------------------------------------------------- #
# Defended aggregation
# --------------------------------------------------------------------------- #
class _DefendedAccumulator(BufferedAccumulator):
    """Buffer a shard's messages; the root's finalise runs the defense.

    A defense needs the whole cohort to rank updates, so per-shard partials
    cannot pre-reduce — they buffer.  ``finalise`` delegates to the wrapped
    :meth:`DefendedAlgorithm.aggregate`, the exact code path the flat
    ``SyncPlan`` takes, which is what keeps a 1-shard hierarchy bitwise
    identical to the flat round under defense.
    """


class DefendedAlgorithm(FederatedAlgorithm):
    """Wrap an algorithm so a :class:`Defense` screens every cohort.

    Local behaviour (training, uploads, client/server state) delegates to
    the inner algorithm untouched; only the server-side combination step
    changes: the cohort's update vectors are robustly transformed under a
    ``defense`` trace span, then handed to the inner algorithm's own
    ``aggregate``.  Buffered plans mix stale cross-version updates that a
    cohort-ranking defense cannot screen, so defended runs are sync-only
    (``supports_async`` is False).
    """

    supports_async = False

    def __init__(self, inner: FederatedAlgorithm, defense: Defense):
        self.inner = inner
        self.defense = defense
        self.name = inner.name
        self.supports_batched = inner.supports_batched
        self.shuffles_minibatches = inner.shuffles_minibatches

    # -- delegated local/state surface ---------------------------------- #
    def init_server_state(self, initial_params, num_clients):
        return self.inner.init_server_state(initial_params, num_clients)

    def init_client_state(self, client, initial_params):
        return self.inner.init_client_state(client, initial_params)

    def local_update(self, *args, **kwargs):
        return self.inner.local_update(*args, **kwargs)

    def batched_local_update(self, *args, **kwargs):
        return self.inner.batched_local_update(*args, **kwargs)

    def message_delta(self, message, base_params):
        return self.inner.message_delta(message, base_params)

    def download_floats(self, dim: int) -> int:
        return self.inner.download_floats(dim)

    def upload_vector_dims(self, dim: int) -> tuple[int, ...]:
        return self.inner.upload_vector_dims(dim)

    def supports_plan(self, plan_name: str) -> bool:  # type: ignore[override]
        # Instance-level override of the base classmethod: defended
        # instances never sit in ALGORITHM_REGISTRY, so class-level calls
        # cannot reach here.
        if plan_name in ("async", "semisync"):
            return False
        return self.inner.supports_plan(plan_name)

    # -- defended combination -------------------------------------------- #
    def _defend(
        self, global_params: np.ndarray, messages: Sequence["ClientMessage"]
    ) -> tuple[list["ClientMessage"], int]:
        """Robustly transform one cohort's messages (pure; inputs untouched)."""
        from repro.federated.messages import ClientMessage

        rejected = 0
        defended_payloads: list[dict[str, np.ndarray]] = [
            dict(message.payload) for message in messages
        ]
        keys = sorted(messages[0].payload)
        for key in keys:
            if key in _PROTECTED_KEYS:
                continue
            stacked = np.stack(
                [np.asarray(message.payload[key], dtype=np.float64)
                 for message in messages]
            )
            if key in _MODEL_KEYS:
                defended, dropped = self.defense.apply(stacked - global_params)
                defended = defended + global_params
            else:
                defended, dropped = self.defense.apply(stacked)
            rejected = max(rejected, dropped)
            for payload, row in zip(defended_payloads, defended):
                payload[key] = row
        out = [
            ClientMessage(
                client_id=message.client_id,
                payload=payload,
                num_samples=message.num_samples,
                local_epochs=message.local_epochs,
                train_loss=message.train_loss,
                metadata=dict(message.metadata),
            )
            for message, payload in zip(messages, defended_payloads)
        ]
        return out, rejected

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list["ClientMessage"],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        if not messages:
            raise ConfigurationError("defended aggregate needs at least one message")
        obs = get_obs()
        with obs.tracer.span(
            "defense", defense=self.defense.name, updates=len(messages)
        ):
            defended, rejected = self._defend(global_params, messages)
        if obs.metrics is not None and rejected:
            obs.metrics.counter("defense.rejected_updates").inc(rejected)
        return self.inner.aggregate(
            global_params, server_state, defended, num_clients, round_index
        )

    def make_accumulator(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        num_clients: int,
        round_index: int,
    ) -> _DefendedAccumulator:
        return _DefendedAccumulator(
            self, global_params, server_state, num_clients, round_index
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DefendedAlgorithm({self.inner!r}, defense={self.defense.name!r})"
        )
