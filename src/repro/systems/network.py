"""Per-client network and compute profiles: the simulated clock.

Each client gets a :class:`ClientSystemProfile` describing its downlink and
uplink bandwidth, its round-trip latency, and its local compute speed.  A
round's simulated duration is straggler-dominated: the server waits for the
slowest client it intends to aggregate (or until the round deadline, see
:mod:`repro.systems.faults`), so heavy-tailed per-client speeds reproduce
the wall-clock behaviour of real federated deployments.

``LogNormalNetwork`` draws heavy-tailed multiplicative factors per client —
the standard model for device heterogeneity — while ``HomogeneousNetwork``
gives every client the same profile (useful for isolating compression
effects from stragglers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class ClientSystemProfile:
    """One client's system capabilities.

    Defaults model a mid-range mobile client: ~8 Mbit/s down, ~2 Mbit/s up,
    50 ms latency, and 1 ms of compute per sample per local epoch.
    """

    downlink_bytes_per_s: float = 1e6
    uplink_bytes_per_s: float = 250e3
    latency_s: float = 0.05
    seconds_per_sample_epoch: float = 1e-3

    def __post_init__(self) -> None:
        for name in (
            "downlink_bytes_per_s",
            "uplink_bytes_per_s",
            "latency_s",
            "seconds_per_sample_epoch",
        ):
            value = getattr(self, name)
            if value < 0 or (name.endswith("bytes_per_s") and value == 0):
                raise ConfigurationError(f"{name} must be positive, got {value}")

    def round_seconds(
        self,
        download_bytes: int,
        upload_bytes: int,
        num_samples: int,
        epochs: int,
    ) -> float:
        """Simulated seconds for one full participation of this client.

        Download the global model, run ``epochs`` local epochs over
        ``num_samples`` examples, upload the (compressed) update; one
        latency charge per direction.
        """
        return (
            2.0 * self.latency_s
            + download_bytes / self.downlink_bytes_per_s
            + epochs * num_samples * self.seconds_per_sample_epoch
            + upload_bytes / self.uplink_bytes_per_s
        )


class NetworkModel:
    """Interface: assign a system profile to every client in the population."""

    def profiles(self, num_clients: int, rng: SeedLike = None) -> list[ClientSystemProfile]:
        """One profile per client id."""
        raise NotImplementedError


class HomogeneousNetwork(NetworkModel):
    """Every client shares one profile (no system heterogeneity)."""

    def __init__(self, profile: ClientSystemProfile | None = None):
        self.profile = profile if profile is not None else ClientSystemProfile()

    def profiles(self, num_clients: int, rng: SeedLike = None) -> list[ClientSystemProfile]:
        return [self.profile] * num_clients


class LogNormalNetwork(NetworkModel):
    """Heavy-tailed heterogeneity around a base profile.

    Each client draws independent log-normal factors: a *compute* factor
    multiplying ``seconds_per_sample_epoch`` and a *bandwidth* factor
    dividing both link speeds (a slow link slows both directions).  With
    ``sigma ≈ 0.5`` the slowest client in a 100-client population is
    typically 3–5x the median — the straggler regime the paper targets.
    """

    def __init__(
        self,
        base: ClientSystemProfile | None = None,
        compute_sigma: float = 0.5,
        bandwidth_sigma: float = 0.5,
    ):
        if compute_sigma < 0 or bandwidth_sigma < 0:
            raise ConfigurationError("sigma values must be non-negative")
        self.base = base if base is not None else ClientSystemProfile()
        self.compute_sigma = compute_sigma
        self.bandwidth_sigma = bandwidth_sigma

    def profiles(self, num_clients: int, rng: SeedLike = None) -> list[ClientSystemProfile]:
        rng = as_rng(rng)
        compute = np.exp(rng.normal(0.0, self.compute_sigma, size=num_clients))
        bandwidth = np.exp(rng.normal(0.0, self.bandwidth_sigma, size=num_clients))
        return [
            replace(
                self.base,
                seconds_per_sample_epoch=self.base.seconds_per_sample_epoch
                * float(compute[i]),
                downlink_bytes_per_s=self.base.downlink_bytes_per_s
                / float(bandwidth[i]),
                uplink_bytes_per_s=self.base.uplink_bytes_per_s / float(bandwidth[i]),
            )
            for i in range(num_clients)
        ]


NETWORK_REGISTRY: dict[str, type[NetworkModel]] = {
    "homogeneous": HomogeneousNetwork,
    "lognormal": LogNormalNetwork,
}


def build_network(name: str, **kwargs) -> NetworkModel:
    """Instantiate a network model by registry name."""
    try:
        network_cls = NETWORK_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown network model {name!r}; available: {sorted(NETWORK_REGISTRY)}"
        ) from None
    return network_cls(**kwargs)
