"""Client executors: how a round's local updates actually run.

The engine *primes* an executor once with the immutable per-client state
(the :class:`~repro.federated.local_problem.LocalProblem` list and the
algorithm), then per round packages each surviving client's update into a
slim :class:`LocalUpdateTask`; the executor runs the batch and returns one
:class:`LocalUpdateOutcome` per task, in task order.

* :class:`SerialExecutor` — the seed behaviour: tasks run in order in the
  calling thread, sharing the engine's model template and training RNG, so
  results are bit-identical to the pre-systems engine.
* :class:`ThreadPoolClientExecutor` — tasks run concurrently in threads.
  Each task deep-copies the model template (the NumPy substrate mutates
  parameter buffers in place, so sharing one template across threads would
  race) and draws from its own per-task seed.
* :class:`VectorizedExecutor` — same-shape tasks are grouped into cohorts
  and each cohort's local updates run as stacked NumPy operations with a
  leading client axis (see :mod:`repro.nn.batched`), eliminating the
  per-client Python dispatch that dominates the serial hot path.  Only
  algorithms that opt in (``supports_batched``) and models with batched
  kernels run stacked; everything else falls back to the serial per-task
  loop, so a vectorized run never changes *which* computation happens —
  only how it is scheduled.  RNG streams are consumed in task order,
  matching the serial executor draw for draw; histories agree with serial
  within ``atol=1e-8`` (stacked matmuls reduce in a different order).
* :class:`ProcessPoolClientExecutor` — tasks run in worker processes,
  sidestepping the GIL for compute-bound local training.  The primed
  problems and algorithm are shipped to each worker once at pool creation
  (per-task traffic is only the global parameters, server state, config,
  and an integer seed — not the datasets and model templates, which would
  otherwise dominate serialization cost).  Client state mutated in the
  worker is carried back in the outcome and merged by the engine.

Isolated executors (``isolated = True``) receive an integer seed per task
instead of a shared generator, so their results are deterministic under a
fixed engine seed *regardless of scheduling order* — thread and process
runs of the same task list produce identical models.

An executor instance belongs to one simulation at a time: priming replaces
any previously primed state.
"""

from __future__ import annotations

import copy
import dataclasses
import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.obs.trace import SpanRecord, new_span_id
from repro.utils.rng import SeedLike, as_rng


@dataclass
class LocalUpdateTask:
    """One client's local update, relative to the executor's primed state.

    ``client_index`` selects the primed :class:`LocalProblem`; everything
    else is the round-varying state.  Kept slim on purpose: for process
    pools this is the entire per-task wire payload.  ``trace`` asks the
    executing side — possibly a worker thread or process — to record
    picklable span records describing the task; the pipeline adopts them
    into the engine's tracer on join.
    """

    client_index: int
    client: ClientState
    global_params: np.ndarray
    server_state: dict[str, np.ndarray]
    config: Any
    round_index: int
    rng: SeedLike
    trace: bool = False


@dataclass
class LocalUpdateOutcome:
    """A finished local update: the upload plus the (possibly copied) client.

    When the task ran in another process, ``client`` is a pickled copy whose
    mutated persistent variables the engine must merge back; in-process
    executors return the original object and the merge is a no-op.
    ``spans`` carries the task's trace records (empty unless the task asked
    for tracing); roots have ``parent_id=None`` so the adopting tracer can
    re-parent them under the open round span.
    """

    message: ClientMessage
    client: ClientState
    spans: tuple[SpanRecord, ...] = ()


def _task_spans(
    task: LocalUpdateTask,
    wall_start: float,
    task_duration_s: float,
    sgd_wall_start: float,
    sgd_duration_s: float,
    **extra_attrs: Any,
) -> tuple[SpanRecord, SpanRecord]:
    """A ``client_task`` root span plus its ``local_sgd`` child."""
    pid, tid = os.getpid(), threading.get_ident() & 0xFFFF
    task_id = new_span_id()
    attrs = {"client": task.client_index, "round": task.round_index, **extra_attrs}
    return (
        SpanRecord(
            name="client_task",
            span_id=task_id,
            start_s=wall_start,
            duration_s=task_duration_s,
            pid=pid,
            tid=tid,
            attrs=attrs,
        ),
        SpanRecord(
            name="local_sgd",
            span_id=new_span_id(),
            parent_id=task_id,
            start_s=sgd_wall_start,
            duration_s=sgd_duration_s,
            pid=pid,
            tid=tid,
            attrs={"client": task.client_index},
        ),
    )


def execute_task(
    task: LocalUpdateTask,
    problem: LocalProblem,
    algorithm: Any,
    isolate: bool = False,
) -> LocalUpdateOutcome:
    """Run one local update; with ``isolate`` the model template is copied."""
    wall_start = time.time()
    perf_start = time.perf_counter()
    if isolate:
        problem = LocalProblem(
            model=copy.deepcopy(problem.model),
            loss=problem.loss,
            dataset=problem.dataset,
        )
    sgd_wall_start = time.time()
    sgd_perf_start = time.perf_counter()
    message = algorithm.local_update(
        problem,
        task.client,
        task.global_params,
        task.server_state,
        task.config,
        round_index=task.round_index,
        rng=as_rng(task.rng),
    )
    if not task.trace:
        return LocalUpdateOutcome(message=message, client=task.client)
    sgd_duration = time.perf_counter() - sgd_perf_start
    spans = _task_spans(
        task,
        wall_start,
        time.perf_counter() - perf_start,
        sgd_wall_start,
        sgd_duration,
    )
    return LocalUpdateOutcome(message=message, client=task.client, spans=spans)


# Worker-process globals, set once per worker by _init_worker so that the
# problems (datasets + model templates) and algorithm cross the process
# boundary exactly once per pool instead of once per task.
_WORKER_PROBLEMS: list[LocalProblem] | None = None
_WORKER_ALGORITHM: Any = None


def _init_worker(problems: list[LocalProblem], algorithm: Any) -> None:
    global _WORKER_PROBLEMS, _WORKER_ALGORITHM
    _WORKER_PROBLEMS = problems
    _WORKER_ALGORITHM = algorithm


def _execute_in_worker(task: LocalUpdateTask) -> LocalUpdateOutcome:
    """Module-level entry point so process pools can pickle the call."""
    problem = _WORKER_PROBLEMS[task.client_index]
    if task.client.dataset is None:
        # The parent stripped the dataset from the IPC payload; the worker
        # already holds the identical data inside its primed problem.
        task.client.dataset = problem.dataset
    # No isolation needed: the primed problems are private to this process
    # and each worker runs its tasks serially, exactly like SerialExecutor.
    outcome = execute_task(task, problem, _WORKER_ALGORITHM)
    outcome.client.dataset = None  # don't ship the dataset back either
    return outcome


class ClientExecutor:
    """Interface: run a batch of local-update tasks, preserving order."""

    #: Isolated executors receive per-task integer seeds (picklable, order
    #: independent); non-isolated executors share the engine's training RNG.
    isolated = False

    def prime(self, problems: list[LocalProblem], algorithm: Any) -> None:
        """Bind the immutable per-client problems and the algorithm."""
        self._problems = problems
        self._algorithm = algorithm

    def _require_primed(self) -> None:
        if getattr(self, "_problems", None) is None:
            raise SimulationError("executor used before prime() was called")

    def run_tasks(self, tasks: list[LocalUpdateTask]) -> list[LocalUpdateOutcome]:
        """Execute every task and return outcomes in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (pools are lazily recreated)."""


class SerialExecutor(ClientExecutor):
    """Run tasks one after another in the calling thread (seed behaviour)."""

    isolated = False

    def run_tasks(self, tasks: list[LocalUpdateTask]) -> list[LocalUpdateOutcome]:
        self._require_primed()
        return [
            execute_task(task, self._problems[task.client_index], self._algorithm)
            for task in tasks
        ]


class VectorizedExecutor(ClientExecutor):
    """Run same-shape cohorts of tasks as stacked NumPy operations.

    Grouping key: local dataset shape × epochs × training hyper-parameters
    × round index.  Clients whose datasets are ragged (different sample
    counts) simply land in different cohorts; a cohort of one still runs
    through the batched kernels (with a leading axis of 1).

    Seeding semantics are preserved exactly: each task's epoch shuffles are
    pre-drawn *in task order* from that task's own RNG before any cohort
    executes, so the executor consumes the same random numbers in the same
    order as :class:`SerialExecutor` — whether the plan hands every task
    the shared training stream (sync) or per-task integer seeds
    (async/semisync).  ``isolated`` stays ``False`` for the same reason:
    the sync plan must seed vectorized runs exactly like serial ones.

    Independent cohorts dispatch concurrently through a bounded thread
    pool (``max_workers``, default ``os.cpu_count()``; NumPy releases the
    GIL inside the stacked kernels).  Every per-task random draw happens
    *before* dispatch in task order, client-state mutations are disjoint
    across cohorts, and outcomes are reassembled in task order afterwards,
    so results are identical regardless of thread scheduling — the
    ``atol=1e-8`` golden-parity contract is unchanged.  A single cohort
    (or ``max_workers=1``) runs inline with no thread overhead.

    Each concurrent cohort executes on its own :class:`BatchedModel` clone
    drawn from a lock-protected pool that persists across rounds, so the
    per-cohort-shape gradient/one-hot workspaces are reused round to round
    instead of reallocated.  The raw array math inside those models routes
    through the pluggable backend selected at construction (see
    :mod:`repro.nn.backend`).
    """

    isolated = False

    def __init__(
        self,
        max_workers: int | None = None,
        backend: str | None = None,
    ):
        if max_workers is not None and max_workers <= 0:
            raise ConfigurationError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers
        self.backend = backend
        self._batched_model = None
        self._fallback_reason: str | None = None
        self._model_pool: list[Any] = []
        self._pool_lock = threading.Lock()
        self._dispatch_pool: ThreadPoolExecutor | None = None
        self._data_cache: dict[
            tuple[int, ...], tuple[np.ndarray, np.ndarray, tuple[int, ...]]
        ] = {}

    def prime(self, problems: list[LocalProblem], algorithm: Any) -> None:
        super().prime(problems, algorithm)
        from repro.nn.batched import build_batched_model
        from repro.obs.runtime import get_obs

        self._metrics = get_obs().metrics
        self._profiler = get_obs().profiler
        self._batched_model = None
        self._model_pool = []
        self._data_cache = {}
        if not getattr(algorithm, "supports_batched", False):
            self._fallback_reason = "algorithm_opt_out"
            return
        self._fallback_reason = "unbatchable_model"
        template = problems[0]
        if any(problem.dataset.features.ndim != 2 for problem in problems):
            return  # stacked kernels take flat (n, d) features only
        self._batched_model = build_batched_model(
            template.model, template.loss, backend=self.backend
        )
        if self._batched_model is not None:
            self._fallback_reason = None
            # Per-kernel profiling: the batched model times each stacked
            # op's forward/backward when a profiler is active.
            self._batched_model.profiler = self._profiler
            # Seed the reusable execution-context pool with the compiled
            # template itself; concurrent cohorts clone on demand and the
            # clones (with their warmed workspaces) live for the run.
            self._model_pool = [self._batched_model]

    @property
    def vectorizes(self) -> bool:
        """Whether primed tasks will actually run through batched kernels."""
        self._require_primed()
        return self._batched_model is not None

    @property
    def fallback_reason(self) -> str | None:
        """Why primed tasks fall back to the serial loop (``None`` if none)."""
        self._require_primed()
        return self._fallback_reason

    def _acquire_model(self):
        with self._pool_lock:
            if self._model_pool:
                return self._model_pool.pop()
        return self._batched_model.clone()

    def _release_model(self, model) -> None:
        with self._pool_lock:
            self._model_pool.append(model)

    def _stacked_data(
        self, client_indices: tuple[int, ...], problems: list[LocalProblem]
    ) -> tuple[np.ndarray, np.ndarray]:
        """The cohort's ``(C, n, d)`` feature / ``(C, n)`` label stacks.

        Client datasets are immutable for the life of a simulation, so a
        recurring cohort composition (e.g. full participation under
        fixed epochs) pays the per-round stacking cost exactly once.
        Entries are validated against the identity of the source arrays,
        so repriming on new problems can never serve stale data; the
        cache is cleared when ragged compositions (variable-epoch
        protocols under sampling) stop it from ever hitting.
        """
        key = client_indices
        source_ids = tuple(id(problem.dataset.features) for problem in problems)
        with self._pool_lock:
            cached = self._data_cache.get(key)
        if cached is not None and cached[2] == source_ids:
            return cached[0], cached[1]
        features = np.stack([problem.dataset.features for problem in problems])
        labels = np.stack([problem.dataset.labels for problem in problems])
        with self._pool_lock:
            if len(self._data_cache) >= 64:
                self._data_cache.clear()
            self._data_cache[key] = (features, labels, source_ids)
        return features, labels

    def _draw_epoch_orders(
        self, tasks: list[LocalUpdateTask]
    ) -> list[np.ndarray | None]:
        """Pre-draw every task's per-epoch shuffles, in task order.

        Mirrors ``iterate_minibatches``: full-batch training (or a
        non-shuffling algorithm) draws nothing; otherwise one permutation
        per epoch from the task's RNG — the exact draws, in the exact
        order, the serial executor would have made.
        """
        orders: list[np.ndarray | None] = []
        shuffles = getattr(self._algorithm, "shuffles_minibatches", True)
        for task in tasks:
            n = self._problems[task.client_index].num_samples
            batch_size = task.config.batch_size
            if not shuffles or batch_size is None or batch_size >= n:
                orders.append(None)
                continue
            rng = as_rng(task.rng)
            orders.append(
                np.stack(
                    [rng.permutation(n) for _ in range(task.config.epochs)]
                )
            )
        return orders

    def _run_cohort(
        self,
        positions: list[int],
        tasks: list[LocalUpdateTask],
        epoch_orders: list[np.ndarray | None],
        dropout_seed: int | None,
    ) -> tuple[list[ClientMessage], float, float]:
        """Execute one cohort on a pooled model clone (worker-thread safe).

        Everything stochastic (epoch shuffles, the dropout seed) was drawn
        before dispatch; client-state mutations are confined to this
        cohort's clients; ``server_state`` and the algorithm are read-only
        here — so cohorts may run on any thread in any order.
        """
        from repro.nn.batched import BatchedCohort

        cohort_tasks = [tasks[position] for position in positions]
        problems = [self._problems[task.client_index] for task in cohort_tasks]
        orders = None
        if epoch_orders[positions[0]] is not None:
            orders = np.stack(
                [epoch_orders[position] for position in positions], axis=1
            )  # (E, C, n)
        model = self._acquire_model()
        try:
            if dropout_seed is not None:
                model.reseed_dropout(dropout_seed)
            features, labels = self._stacked_data(
                tuple(task.client_index for task in cohort_tasks), problems
            )
            cohort = BatchedCohort(
                model=model,
                features=features,
                labels=labels,
                epoch_orders=orders,
            )
            lead = cohort_tasks[0]
            cohort_wall = time.time()
            cohort_perf = time.perf_counter()
            messages = self._algorithm.batched_local_update(
                cohort,
                [task.client for task in cohort_tasks],
                lead.global_params,
                lead.server_state,
                lead.config,
                round_index=lead.round_index,
            )
            cohort_duration = time.perf_counter() - cohort_perf
        finally:
            self._release_model(model)
        return messages, cohort_wall, cohort_duration

    def run_tasks(self, tasks: list[LocalUpdateTask]) -> list[LocalUpdateOutcome]:
        self._require_primed()
        if self._batched_model is None:
            # Opt-out algorithm or unbatchable model: the serial loop,
            # bit for bit.  The labelled counter and profiler entry say
            # *why*, so unexpected serial fallbacks are diagnosable from
            # `repro profile` / the metrics snapshot.
            reason = self._fallback_reason or "unbatchable_model"
            if self._metrics is not None and tasks:
                self._metrics.counter(f"executor.fallback.{reason}").inc(
                    len(tasks)
                )
            started = time.perf_counter()
            outcomes = [
                execute_task(task, self._problems[task.client_index], self._algorithm)
                for task in tasks
            ]
            if self._profiler is not None and tasks:
                self._profiler.add(
                    f"executor.fallback.{reason}",
                    time.perf_counter() - started,
                )
            return outcomes

        epoch_orders = self._draw_epoch_orders(tasks)

        cohorts: dict[tuple, list[int]] = {}
        for position, task in enumerate(tasks):
            problem = self._problems[task.client_index]
            key = (
                problem.num_samples,
                problem.dataset.features.shape[1],
                task.config.epochs,
                task.config.batch_size,
                task.config.learning_rate,
                task.round_index,
            )
            cohorts.setdefault(key, []).append(position)

        # Dropout mask seeds, when the model needs them, are drawn here —
        # before any dispatch, in deterministic cohort-grouping order —
        # so results do not depend on which thread runs which cohort.
        dropout_seeds: dict[int, int | None] = {}
        for index, positions in enumerate(cohorts.values()):
            if self._batched_model.has_dropout:
                lead = tasks[positions[0]]
                dropout_seeds[index] = int(
                    as_rng(lead.rng).integers(np.iinfo(np.int64).max)
                )
            else:
                dropout_seeds[index] = None

        position_groups = list(cohorts.values())
        workers = self.max_workers or os.cpu_count() or 1
        if len(position_groups) == 1 or workers <= 1:
            # No concurrency to exploit: run inline, zero thread overhead.
            results = [
                self._run_cohort(
                    positions, tasks, epoch_orders, dropout_seeds[index]
                )
                for index, positions in enumerate(position_groups)
            ]
        else:
            if self._dispatch_pool is None:
                self._dispatch_pool = ThreadPoolExecutor(
                    max_workers=min(workers, len(position_groups)),
                    thread_name_prefix="repro-cohort",
                )
            results = list(
                self._dispatch_pool.map(
                    lambda item: self._run_cohort(
                        item[1], tasks, epoch_orders, dropout_seeds[item[0]]
                    ),
                    enumerate(position_groups),
                )
            )

        # Reassembly — and all metrics/trace bookkeeping — happens back on
        # the calling thread, in task order.
        outcomes: list[LocalUpdateOutcome | None] = [None] * len(tasks)
        for positions, (messages, cohort_wall, cohort_duration) in zip(
            position_groups, results
        ):
            if self._metrics is not None:
                self._metrics.counter("executor.batched_tasks").inc(len(positions))
                self._metrics.histogram("executor.cohort_size").observe(
                    len(positions)
                )
            for position, message in zip(positions, messages):
                task = tasks[position]
                spans: tuple[SpanRecord, ...] = ()
                if task.trace:
                    # One client_task span per task sharing the cohort's
                    # window: the stacked kernels ran every client jointly,
                    # so per-client attribution is the cohort extent.
                    spans = _task_spans(
                        task,
                        cohort_wall,
                        cohort_duration,
                        cohort_wall,
                        cohort_duration,
                        cohort=len(positions),
                        batched=True,
                    )
                outcomes[position] = LocalUpdateOutcome(
                    message=message, client=task.client, spans=spans
                )
        return outcomes

    def close(self) -> None:
        if self._dispatch_pool is not None:
            self._dispatch_pool.shutdown(wait=True)
            self._dispatch_pool = None


class _PoolExecutor(ClientExecutor):
    """Shared lazy-pool plumbing for thread and process executors."""

    isolated = True

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ConfigurationError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers
        self._pool: Executor | None = None

    def prime(self, problems: list[LocalProblem], algorithm: Any) -> None:
        self.close()  # a new simulation's state must reach fresh workers
        super().prime(problems, algorithm)

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def run_tasks(self, tasks: list[LocalUpdateTask]) -> list[LocalUpdateOutcome]:
        self._require_primed()
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(self._submit_fn, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self.close()
        except Exception:
            pass


class ThreadPoolClientExecutor(_PoolExecutor):
    """Run tasks concurrently in threads (NumPy releases the GIL in kernels)."""

    def _submit_fn(self, task: LocalUpdateTask) -> LocalUpdateOutcome:
        return execute_task(
            task, self._problems[task.client_index], self._algorithm, isolate=True
        )

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.max_workers)


class ProcessPoolClientExecutor(_PoolExecutor):
    """Run tasks in worker processes primed once with the per-client problems."""

    # Bound at class level so the pool pickles only a module-level reference.
    _submit_fn = staticmethod(_execute_in_worker)

    def run_tasks(self, tasks: list[LocalUpdateTask]) -> list[LocalUpdateOutcome]:
        # The worker already holds every client's dataset (primed at pool
        # creation); strip it from the per-task payload so round IPC scales
        # with the model dimension, not the local dataset size.
        slim = [
            dataclasses.replace(
                task, client=dataclasses.replace(task.client, dataset=None)
            )
            for task in tasks
        ]
        return super().run_tasks(slim)

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_worker,
            initargs=(self._problems, self._algorithm),
        )


EXECUTOR_REGISTRY: dict[str, type[ClientExecutor]] = {
    "serial": SerialExecutor,
    "thread": ThreadPoolClientExecutor,
    "process": ProcessPoolClientExecutor,
    "vectorized": VectorizedExecutor,
}


def build_executor(
    name: str,
    max_workers: int | None = None,
    backend: str | None = None,
) -> ClientExecutor:
    """Instantiate a client executor by registry name.

    ``max_workers`` bounds the worker pool of every concurrent executor
    (threads, processes, and the vectorized executor's cohort dispatch);
    ``backend`` selects the array backend for the vectorized executor's
    stacked kernels (see :mod:`repro.nn.backend`) and is ignored by the
    per-task executors, which always run the serial NumPy model code.
    """
    try:
        executor_cls = EXECUTOR_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {name!r}; available: {sorted(EXECUTOR_REGISTRY)}"
        ) from None
    if executor_cls is SerialExecutor:
        # Strictly in-order, in-thread: nothing to configure.
        return executor_cls()
    if executor_cls is VectorizedExecutor:
        return executor_cls(max_workers=max_workers, backend=backend)
    return executor_cls(max_workers=max_workers)
