"""Client-systems simulation: transport, network/time model, faults, executors.

The core engine reproduces the paper's *statistical* behaviour; this package
models the client-side *system* stack the paper's robustness claims are
about:

* :mod:`repro.systems.compression` — pluggable update codecs (identity,
  float16, top-k sparsification, QSGD stochastic quantisation, signSGD),
* :mod:`repro.systems.transport` — applies a codec to every
  :class:`~repro.federated.messages.ClientMessage` payload and accounts for
  the post-compression bytes actually on the wire,
* :mod:`repro.systems.network` — per-client bandwidth/latency/compute
  profiles that turn a round into a simulated wall-clock duration
  (straggler-dominated, as in real federated deployments),
* :mod:`repro.systems.faults` — mid-round client dropout and round
  deadlines that knock stragglers out of aggregation (honest failures),
* :mod:`repro.systems.adversaries` — byzantine/poisoning client
  behaviours and robust aggregation defenses (dishonest participation),
* :mod:`repro.systems.executor` — serial, thread-pool, process-pool, and
  vectorized (stacked-NumPy cohort) execution of the selected clients'
  local updates.

Every component is optional: a :class:`~repro.federated.engine.FederatedSimulation`
constructed without them behaves exactly like the idealised synchronous
engine of the seed reproduction.
"""

from repro.systems.adversaries import (
    ADVERSARY_REGISTRY,
    DEFENSE_REGISTRY,
    AdversaryBehaviour,
    AdversaryModel,
    Defense,
    DefendedAlgorithm,
    build_adversary,
    build_defense,
)
from repro.systems.compression import (
    CODEC_REGISTRY,
    Codec,
    EncodedVector,
    Float16Codec,
    IdentityCodec,
    QSGDCodec,
    SignSGDCodec,
    TopKCodec,
    build_codec,
)
from repro.systems.executor import (
    EXECUTOR_REGISTRY,
    ClientExecutor,
    LocalUpdateOutcome,
    LocalUpdateTask,
    ProcessPoolClientExecutor,
    SerialExecutor,
    ThreadPoolClientExecutor,
    VectorizedExecutor,
    build_executor,
    execute_task,
)
from repro.systems.faults import FaultInjector
from repro.systems.network import (
    NETWORK_REGISTRY,
    ClientSystemProfile,
    HomogeneousNetwork,
    LogNormalNetwork,
    NetworkModel,
    build_network,
)
from repro.systems.transport import Transport

__all__ = [
    "ADVERSARY_REGISTRY",
    "DEFENSE_REGISTRY",
    "AdversaryBehaviour",
    "AdversaryModel",
    "Defense",
    "DefendedAlgorithm",
    "build_adversary",
    "build_defense",
    "CODEC_REGISTRY",
    "Codec",
    "EncodedVector",
    "IdentityCodec",
    "Float16Codec",
    "TopKCodec",
    "QSGDCodec",
    "SignSGDCodec",
    "build_codec",
    "Transport",
    "ClientSystemProfile",
    "NetworkModel",
    "HomogeneousNetwork",
    "LogNormalNetwork",
    "NETWORK_REGISTRY",
    "build_network",
    "FaultInjector",
    "ClientExecutor",
    "SerialExecutor",
    "ThreadPoolClientExecutor",
    "ProcessPoolClientExecutor",
    "VectorizedExecutor",
    "EXECUTOR_REGISTRY",
    "build_executor",
    "LocalUpdateTask",
    "LocalUpdateOutcome",
    "execute_task",
]
