"""Client contribution valuation: leave-one-out and truncated-MC Shapley.

Data valuation asks *how much each client's participation is worth* to the
final global model.  Both methods here reduce to a single primitive — the
**subset utility** ``U(S)``: the final test accuracy of a full federated
run trained on only the clients in ``S`` — and differ in how they combine
marginal contributions:

* **leave-one-out** scores client ``i`` as ``U(N) - U(N \\ {i})``:
  cheap (``n + 1`` runs) but blind to redundancy between clients,
* **truncated Monte-Carlo Shapley** (Ghorbani & Zou, 2019) averages the
  marginal gain of ``i`` over sampled permutation prefixes, truncating a
  permutation walk once the prefix utility is within ``tolerance`` of the
  full-coalition utility (later marginals are ~0 by diminishing returns).

Subset utilities are *stored run histories*: every evaluated coalition's
utility is cached in a JSON ledger keyed by the sorted client subset, so
re-running with more permutations — or switching from leave-one-out to
Shapley — reuses every run already paid for.  All randomness (permutation
order) derives from the experiment seed via :class:`~repro.utils.rng.RngFactory`,
making reports bit-reproducible.

The natural companion to the adversary subsystem (see
``docs/tutorials/robustness.md``): under an attack, adversarial clients
should surface with near-zero or negative contribution scores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.configs import AlgorithmSpec, ExperimentConfig
from repro.experiments.runner import build_simulation, prepare_environment
from repro.federated.client import ClientState
from repro.federated.evaluation import evaluate_model
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import build_model
from repro.utils.rng import RngFactory

#: Cache-key for the empty coalition (accuracy of the untrained model).
_EMPTY_KEY = "-"


def subset_key(subset: Iterable[int]) -> str:
    """Canonical cache key for a client coalition: sorted ids, comma-joined."""
    indices = sorted(set(int(index) for index in subset))
    return ",".join(str(index) for index in indices) if indices else _EMPTY_KEY


class UtilityCache:
    """JSON-backed ledger of coalition utilities, keyed by :func:`subset_key`.

    With ``path=None`` the cache is memory-only (tests, throwaway runs);
    with a path every new utility is flushed eagerly so an interrupted
    valuation loses at most the run in flight.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self.utilities: dict[str, float] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            self.utilities = {
                str(key): float(value)
                for key, value in json.loads(self.path.read_text()).items()
            }

    def __len__(self) -> int:
        return len(self.utilities)

    def get(self, key: str) -> float | None:
        if key in self.utilities:
            self.hits += 1
            return self.utilities[key]
        return None

    def put(self, key: str, utility: float) -> None:
        self.misses += 1
        self.utilities[key] = float(utility)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(dict(sorted(self.utilities.items())), indent=2)
                + "\n"
            )


@dataclass
class ContributionReport:
    """Per-client contribution scores plus the bookkeeping behind them."""

    method: str
    scores: dict[int, float]
    utility_full: float
    utility_empty: float
    runs_executed: int
    runs_reused: int
    permutations: int = 0
    metadata: dict = field(default_factory=dict)

    def ranked(self) -> list[tuple[int, float]]:
        """Clients from most to least valuable."""
        return sorted(self.scores.items(), key=lambda item: -item[1])

    def to_payload(self) -> dict:
        return {
            "method": self.method,
            "scores": {str(client): score for client, score in self.scores.items()},
            "utility_full": self.utility_full,
            "utility_empty": self.utility_empty,
            "runs_executed": self.runs_executed,
            "runs_reused": self.runs_reused,
            "permutations": self.permutations,
            **self.metadata,
        }


class ContributionValuer:
    """Evaluates coalition utilities for one (config, algorithm) pair.

    The dataset split and partition are prepared once; each coalition run
    gets *fresh* :class:`ClientState` objects over the same immutable
    ``Dataset`` shards, so persistent algorithm variables never leak
    between coalitions.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        algorithm: AlgorithmSpec,
        cache: UtilityCache | None = None,
    ):
        self.config = config
        self.algorithm = algorithm
        self.cache = cache if cache is not None else UtilityCache()
        self.split, self._clients, _ = prepare_environment(config)

    @property
    def num_clients(self) -> int:
        return len(self._clients)

    def _fresh_clients(self, subset: Sequence[int]) -> list[ClientState]:
        states = []
        for new_id, index in enumerate(sorted(subset)):
            template = self._clients[index]
            states.append(
                ClientState(client_id=new_id, dataset=template.dataset)
            )
        return states

    def utility(self, subset: Iterable[int]) -> float:
        """``U(S)``: final test accuracy of a run over only ``subset``."""
        indices = sorted(set(int(index) for index in subset))
        if any(index < 0 or index >= self.num_clients for index in indices):
            raise ConfigurationError(
                f"subset {indices} out of range for {self.num_clients} clients"
            )
        key = subset_key(indices)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        if not indices:
            # The empty coalition: the untrained (seed-initialised) model.
            model_rng = RngFactory(self.config.seed).make("model-init")
            model = build_model(
                self.config.model, rng=model_rng, **self.config.model_kwargs
            )
            evaluation = evaluate_model(
                model,
                CrossEntropyLoss(),
                model.get_flat_params(),
                self.split.test,
            )
            utility = evaluation.accuracy
        else:
            config = self.config.with_overrides(
                num_clients=len(indices),
                name=f"{self.config.name}-coalition",
            )
            simulation = build_simulation(
                config,
                self.algorithm,
                clients=self._fresh_clients(indices),
                split=self.split,
            )
            result = simulation.run(config.num_rounds, stop_at_target=False)
            utility = result.history.final_accuracy()
        self.cache.put(key, utility)
        return utility

    # ------------------------------------------------------------------ #
    # Valuation methods
    # ------------------------------------------------------------------ #
    def leave_one_out(self) -> ContributionReport:
        """``score_i = U(N) - U(N \\ {i})`` for every client ``i``."""
        everyone = list(range(self.num_clients))
        baseline_hits = self.cache.hits
        baseline_misses = self.cache.misses
        full = self.utility(everyone)
        empty = self.utility([])
        scores = {
            index: full - self.utility([j for j in everyone if j != index])
            for index in everyone
        }
        return ContributionReport(
            method="loo",
            scores=scores,
            utility_full=full,
            utility_empty=empty,
            runs_executed=self.cache.misses - baseline_misses,
            runs_reused=self.cache.hits - baseline_hits,
        )

    def shapley(
        self, permutations: int = 10, tolerance: float = 0.01
    ) -> ContributionReport:
        """Truncated Monte-Carlo Shapley over sampled permutations.

        Each permutation walk stops early once the running prefix utility
        is within ``tolerance`` of the full-coalition utility: remaining
        clients in that permutation get a zero marginal, which is what
        makes the estimator tractable (Ghorbani & Zou, 2019, alg. 1).
        """
        if permutations < 1:
            raise ConfigurationError(
                f"permutations must be >= 1, got {permutations}"
            )
        everyone = list(range(self.num_clients))
        baseline_hits = self.cache.hits
        baseline_misses = self.cache.misses
        full = self.utility(everyone)
        empty = self.utility([])
        rng = RngFactory(self.config.seed).make("contributions/permutations")
        totals = {index: 0.0 for index in everyone}
        truncated_walks = 0
        for _ in range(permutations):
            order = [int(i) for i in rng.permutation(self.num_clients)]
            previous = empty
            prefix: list[int] = []
            for index in order:
                if abs(full - previous) < tolerance:
                    # Diminishing returns: credit the tail with zero.
                    truncated_walks += 1
                    break
                prefix.append(index)
                current = self.utility(prefix)
                totals[index] += current - previous
                previous = current
        scores = {index: total / permutations for index, total in totals.items()}
        return ContributionReport(
            method="shapley",
            scores=scores,
            utility_full=full,
            utility_empty=empty,
            runs_executed=self.cache.misses - baseline_misses,
            runs_reused=self.cache.hits - baseline_hits,
            permutations=permutations,
            metadata={"tolerance": tolerance, "truncated_walks": truncated_walks},
        )


def compute_contributions(
    config: ExperimentConfig,
    algorithm: AlgorithmSpec,
    method: str = "loo",
    permutations: int = 10,
    tolerance: float = 0.01,
    cache: UtilityCache | None = None,
) -> ContributionReport:
    """One-call API: value every client of ``config`` under ``algorithm``."""
    valuer = ContributionValuer(config, algorithm, cache=cache)
    if method == "loo":
        return valuer.leave_one_out()
    if method == "shapley":
        return valuer.shapley(permutations=permutations, tolerance=tolerance)
    raise ConfigurationError(
        f"unknown contribution method {method!r}; available: ['loo', 'shapley']"
    )
