"""Parallel, resumable execution of a study's sweep points.

A study's sweep expands into independent :class:`RunSpec` s — one per
(config, algorithm) pair, each fully self-contained and self-seeded
(the config carries its own seed, mirroring the per-task integer-seed
discipline of :mod:`repro.systems.executor`).  The
:class:`SweepOrchestrator` executes a spec list

* **serially** in-process (``jobs=1``, the default — bit-identical to
  the historical hand-written sweep loops),
* or **in parallel** across a process pool (``jobs=N``), where each
  worker reconstructs its run purely from the pickled spec, so results
  are bit-identical to the serial order regardless of scheduling,

optionally backed by a persistent
:class:`~repro.experiments.store.ExperimentStore`: finished runs are
saved as they complete, and with ``resume=True`` specs already ``done``
in the store are loaded instead of re-executed (``pending`` / ``running``
/ ``failed`` runs are re-run).  Per-spec progress events stream to an
optional callback, which the CLI renders as ``[k/n]`` lines.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ConfigurationError, SimulationError
from repro.experiments.configs import AlgorithmSpec, ExperimentConfig
from repro.experiments.store import ExperimentStore, RunStatus
from repro.federated.engine import SimulationResult
from repro.obs.runtime import get_obs


@dataclass(frozen=True)
class RunSpec:
    """One independent sweep point: everything needed to train one run.

    ``key`` locates the result in the study's output structure (e.g.
    ``("non_iid", "fedavg")`` or ``(5,)`` for a local-epochs point); it is
    a tuple of primitives so specs pickle cheaply across process
    boundaries and serialise into store records.
    """

    study: str
    key: tuple
    config: ExperimentConfig
    algorithm: AlgorithmSpec
    stop_at_target: bool = True

    def label(self) -> str:
        """Human-readable identity for progress lines and errors."""
        inner = "/".join(str(part) for part in self.key)
        return f"{self.study}[{inner}]"


@dataclass(frozen=True)
class SpecEvent:
    """One progress notification streamed by the orchestrator."""

    event: str  #: "start" | "done" | "skipped" | "failed"
    spec: RunSpec
    index: int  #: position of the spec in the sweep (0-based)
    total: int  #: sweep size
    elapsed_s: float | None = None
    error: str | None = None
    #: Estimated seconds until the sweep finishes: the mean elapsed time of
    #: the specs resolved so far times the number still outstanding.  Only
    #: on "done"/"failed" events, and only once one spec has actually run.
    eta_s: float | None = None


ProgressCallback = Callable[[SpecEvent], None]


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Train one sweep point; deterministic given the spec alone.

    This is the module-level entry point process-pool workers invoke: the
    run is reconstructed purely from the (pickled) spec, so a worker
    process produces exactly the bytes the serial path would.
    """
    from repro.experiments.runner import run_single

    return run_single(spec.config, spec.algorithm, stop_at_target=spec.stop_at_target)


def _timed_execute(spec: RunSpec) -> tuple[SimulationResult, float]:
    """Worker entry point that also measures the run's own wall clock.

    Timed inside the worker so a spec that sat queued behind others does
    not have its pool-slot wait billed as run duration.
    """
    started = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - started


@dataclass
class SweepReport:
    """What a sweep execution did, spec by spec (for tests and the CLI)."""

    executed: list[RunSpec] = field(default_factory=list)
    skipped: list[RunSpec] = field(default_factory=list)
    failed: list[tuple[RunSpec, str]] = field(default_factory=list)


class SweepOrchestrator:
    """Executes :class:`RunSpec` lists serially or across a process pool."""

    def __init__(
        self,
        jobs: int = 1,
        store: ExperimentStore | None = None,
        resume: bool = False,
        progress: ProgressCallback | None = None,
    ):
        if jobs <= 0:
            raise ConfigurationError(f"jobs must be positive, got {jobs}")
        if resume and store is None:
            raise ConfigurationError("resume=True requires a store")
        self.jobs = jobs
        self.store = store
        self.resume = resume
        self.progress = progress
        self.last_report: SweepReport | None = None
        # Observability: spec-level spans and sweep counters land in the
        # process-wide sinks (one observe() block instruments the sweep).
        obs = get_obs()
        self._tracer = obs.tracer
        self._metrics = obs.metrics
        # ETA state, reset per execute(): elapsed times of resolved specs
        # and the count still outstanding.
        self._elapsed_done: list[float] = []
        self._outstanding = 0

    # ------------------------------------------------------------------ #
    def _emit(self, event: SpecEvent) -> None:
        if self.progress is not None:
            self.progress(event)

    def _eta(self, elapsed: float) -> float | None:
        """Fold one resolved spec's elapsed time into the ETA estimate."""
        self._elapsed_done.append(elapsed)
        self._outstanding -= 1
        if self._outstanding <= 0:
            return None
        mean = sum(self._elapsed_done) / len(self._elapsed_done)
        # With jobs > 1 the outstanding specs drain in parallel waves.
        return mean * self._outstanding / self.jobs

    def execute(self, specs: list[RunSpec]) -> dict[tuple, SimulationResult]:
        """Run every spec and return ``{spec.key: result}`` in spec order.

        With a store, results are persisted as they finish; with
        ``resume`` specs already ``done`` are served from the store.  If
        any spec fails, the remaining specs still run (so their results
        are stored for the next resume) and a :class:`SimulationError`
        listing the failures is raised at the end.
        """
        report = SweepReport()
        self.last_report = report
        total = len(specs)
        results: dict[int, SimulationResult] = {}

        # One index replay for the whole sweep; per-spec lookups hit the
        # snapshot instead of re-parsing the JSON-lines file every time.
        stored = self.store.records() if self.store is not None else {}
        pending: list[int] = []
        for index, spec in enumerate(specs):
            if self.store is not None:
                key = self.store.key_for(spec)
                if self.resume and self.store.has_result(key, records=stored):
                    results[index] = self.store.load_result(key)
                    report.skipped.append(spec)
                    if self._metrics is not None:
                        self._metrics.counter("sweep.store_hits").inc()
                    self._emit(SpecEvent("skipped", spec, index, total))
                    continue
                self.store.mark(spec, RunStatus.PENDING)
            pending.append(index)
        self._elapsed_done = []
        self._outstanding = len(pending)

        if self.jobs == 1:
            self._run_serial(specs, pending, total, results, report)
        else:
            self._run_parallel(specs, pending, total, results, report)

        if report.failed:
            summary = "; ".join(
                f"{spec.label()}: {error.splitlines()[-1] if error else 'unknown'}"
                for spec, error in report.failed
            )
            raise SimulationError(
                f"{len(report.failed)} of {total} sweep points failed: {summary}"
            )
        return {specs[index].key: results[index] for index in range(total)}

    # ------------------------------------------------------------------ #
    def _start(self, spec: RunSpec, index: int, total: int) -> None:
        if self.store is not None:
            self.store.mark(spec, RunStatus.RUNNING)
        self._emit(SpecEvent("start", spec, index, total))

    def _finish(
        self,
        spec: RunSpec,
        index: int,
        total: int,
        result: SimulationResult,
        elapsed: float,
        results: dict[int, SimulationResult],
        report: SweepReport,
    ) -> None:
        if self.store is not None:
            self.store.save_result(spec, result, duration_s=elapsed)
        results[index] = result
        report.executed.append(spec)
        if self._metrics is not None:
            self._metrics.counter("sweep.specs_done").inc()
        self._emit(
            SpecEvent(
                "done", spec, index, total,
                elapsed_s=elapsed, eta_s=self._eta(elapsed),
            )
        )

    def _fail(
        self,
        spec: RunSpec,
        index: int,
        total: int,
        error: str,
        elapsed: float,
        report: SweepReport,
    ) -> None:
        if self.store is not None:
            self.store.mark(spec, RunStatus.FAILED, duration_s=elapsed, error=error)
        report.failed.append((spec, error))
        if self._metrics is not None:
            self._metrics.counter("sweep.specs_failed").inc()
        self._emit(
            SpecEvent(
                "failed", spec, index, total,
                elapsed_s=elapsed, error=error, eta_s=self._eta(elapsed),
            )
        )

    def _run_serial(self, specs, pending, total, results, report) -> None:
        for index in pending:
            spec = specs[index]
            self._start(spec, index, total)
            started = time.perf_counter()
            try:
                # The spec span stays open while the simulation runs, so
                # the engine's "run" span (same process-wide tracer) nests
                # under it.
                with self._tracer.span(
                    "spec", category="sweep", label=spec.label()
                ):
                    result = execute_spec(spec)
            except Exception:
                self._fail(
                    spec, index, total, traceback.format_exc(),
                    time.perf_counter() - started, report,
                )
            else:
                self._finish(
                    spec, index, total, result,
                    time.perf_counter() - started, results, report,
                )

    def _run_parallel(self, specs, pending, total, results, report) -> None:
        # Workers return plain SimulationResults; every store write stays
        # in this process, so the append-only index has a single writer.
        max_workers = min(self.jobs, len(pending)) or 1
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {}
            submitted_at = {}
            for index in pending:
                spec = specs[index]
                self._start(spec, index, total)
                submitted_at[index] = time.perf_counter()
                futures[pool.submit(_timed_execute, spec)] = index
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = futures[future]
                    spec = specs[index]
                    error = future.exception()
                    if error is not None:
                        # The worker died before reporting its own timing;
                        # fall back to time-since-submit.  format_exception
                        # keeps the worker's stack, which concurrent.futures
                        # chains via __cause__.
                        elapsed = time.perf_counter() - submitted_at[index]
                        detail = "".join(
                            traceback.format_exception(
                                type(error), error, error.__traceback__
                            )
                        ).strip()
                        self._fail(spec, index, total, detail, elapsed, report)
                    else:
                        result, elapsed = future.result()
                        if self._tracer.enabled:
                            # The run happened in a worker process; record
                            # its extent from the worker-measured duration.
                            self._tracer.emit(
                                "spec",
                                category="sweep",
                                duration_s=elapsed,
                                label=spec.label(),
                            )
                        self._finish(
                            spec, index, total, result, elapsed,
                            results, report,
                        )
