"""Declarative study registry: name → config-builder → sweep → summariser.

Each of the paper's tables and figures used to be a hand-written
``run_*_study`` function in ``runner.py`` wired into a 200-line
``if``-chain in ``cli.py``.  The registry replaces both: a
:class:`Study` declares

* how to *build* its base configuration from a :class:`StudyRequest`
  (the CLI-level knobs: dataset, scale, seed, overrides),
* how its sweep *expands* into independent run specs (``specs`` +
  ``collect``, executed through the
  :class:`~repro.experiments.orchestrator.SweepOrchestrator`) — or, for
  closed-form studies, a monolithic ``sweep`` callable — and
* how to *summarise* the raw sweep output into a printed report plus a
  JSON-serialisable payload,

and :meth:`StudyRegistry.run` executes any of them generically.  The CLI
walks the registry to expose one subcommand per study — including each
study's extra flags — so adding a study is one :meth:`StudyRegistry.add`
call, with no runner or CLI edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.orchestrator import RunSpec, SweepOrchestrator
    from repro.federated.engine import SimulationResult

#: Every execution-plan mode / client executor the runtime ships.  Studies
#: default to supporting all of them; a test pins these against the live
#: ``PLAN_REGISTRY`` / ``EXECUTOR_REGISTRY`` so the registry cannot drift.
ALL_MODES = ("sync", "semisync", "async")
ALL_EXECUTORS = ("serial", "thread", "process", "vectorized")

#: Every adversarial client behaviour the runtime ships (pinned against the
#: live ``ADVERSARY_REGISTRY`` by a test, like the modes/executors above).
#: Studies whose sweeps run federated training accept ``--adversary`` for
#: any of these by default; closed-form and mode-locked studies opt out.
ALL_ADVERSARIES = ("sign_flip", "gaussian_noise", "scale", "label_flip")

#: Config fields the shared CLI flags override after the preset is built;
#: ``None`` values mean "flag not given, keep the preset's value".
OVERRIDE_FIELDS = (
    "num_rounds",
    "num_clients",
    "codec",
    "dropout",
    "deadline_s",
    "network",
    "executor",
    "backend",
    "mode",
    "plan",
    "num_shards",
    "buffer_size",
    "max_concurrency",
    "staleness",
    "round_deadline_s",
    "adversary",
    "adversary_fraction",
    "defense",
)


@dataclass(frozen=True)
class StudyRequest:
    """Everything a study needs from the caller (CLI or library user)."""

    dataset: str = "blobs"
    non_iid: bool = False
    scale: str = "bench"
    clients: int | None = None
    rounds: int | None = None
    rho: float = 0.3
    seed: int = 0
    #: Generic :class:`ExperimentConfig` field overrides (systems/plan flags).
    overrides: dict[str, Any] = field(default_factory=dict)
    #: Values of the study's own extra flags, keyed by argparse dest.
    options: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_args(cls, args: Any, option_names: tuple[str, ...] = ()) -> "StudyRequest":
        """Build a request from an argparse-style namespace.

        Missing attributes fall back to the field defaults, so plain
        objects with only a few attributes work (handy in tests).
        """
        overrides = {
            name: getattr(args, name, None)
            for name in OVERRIDE_FIELDS
            if getattr(args, name, None) is not None
        }
        if getattr(args, "async_mode", False) and "mode" not in overrides:
            overrides["mode"] = "async"
        if "num_shards" in overrides and "plan" not in overrides:
            # --shards N alone means the sharded synchronous topology.
            overrides["plan"] = "hierarchical"
        return cls(
            dataset=getattr(args, "dataset", cls.dataset),
            non_iid=getattr(args, "non_iid", cls.non_iid),
            scale=getattr(args, "scale", cls.scale),
            clients=getattr(args, "clients", None),
            rounds=getattr(args, "rounds", None),
            rho=getattr(args, "rho", cls.rho),
            seed=getattr(args, "seed", cls.seed),
            overrides=overrides,
            options={
                name: getattr(args, name)
                for name in option_names
                if getattr(args, name, None) is not None
            },
        )

    def option(self, name: str, default: Any = None) -> Any:
        """One of the study's extra-flag values, or ``default``."""
        return self.options.get(name, default)

    def apply_overrides(self, config: ExperimentConfig) -> ExperimentConfig:
        """Apply the request's generic knobs on top of a preset config."""
        overrides: dict[str, Any] = dict(self.overrides)
        overrides["seed"] = self.seed
        if self.rounds is not None:
            overrides["num_rounds"] = self.rounds
        if self.clients is not None:
            overrides["num_clients"] = self.clients
        return config.with_overrides(**overrides)


@dataclass(frozen=True)
class StudyFlag:
    """One extra argparse flag a study contributes to its subcommand."""

    name: str  # e.g. "--etas"
    kwargs: dict[str, Any] = field(default_factory=dict)

    @property
    def dest(self) -> str:
        """The argparse destination attribute for this flag."""
        return self.kwargs.get("dest", self.name.lstrip("-").replace("-", "_"))


@dataclass(frozen=True)
class Study:
    """One declaratively registered experiment.

    A study is executed one of two ways:

    * **spec expansion** (preferred): ``specs`` expands the sweep into
      independent :class:`~repro.experiments.orchestrator.RunSpec` s and
      ``collect`` reassembles the per-spec results into the raw sweep
      output ``summarise`` expects.  Spec-expanded studies run through the
      :class:`~repro.experiments.orchestrator.SweepOrchestrator`, gaining
      ``--jobs`` parallelism and ``--resume`` for free.
    * **monolithic sweep** (fallback): ``sweep`` runs the whole experiment
      in one call — for studies with no independent training points (e.g.
      the closed-form ``table1``).
    """

    name: str
    description: str
    #: Build the base :class:`ExperimentConfig` from the request (None for
    #: studies that need no training configuration, e.g. closed-form tables).
    build_config: Callable[[StudyRequest], ExperimentConfig | None]
    #: Execute the sweep monolithically (fallback when ``specs`` is None);
    #: receives the post-override config and the request.
    sweep: Callable[[ExperimentConfig | None, StudyRequest], Any] | None = None
    #: Print the human-readable report and return the JSON payload.
    summarise: Callable[[Any, StudyRequest], dict] | None = None
    #: Extra CLI flags exposed on this study's subcommand.
    flags: tuple[StudyFlag, ...] = ()
    #: Expand the sweep into independent run specs (orchestrated path).
    specs: Callable[[ExperimentConfig | None, StudyRequest], "list[RunSpec]"] | None = None
    #: Reassemble ``{spec.key: result}`` into the raw output ``summarise`` expects.
    collect: (
        Callable[["dict[tuple, SimulationResult]", ExperimentConfig | None, StudyRequest], Any]
        | None
    ) = None
    #: Execution-plan modes a request may select for this study via
    #: ``--mode``.  An empty tuple means the study runs no federated
    #: training at all (closed-form tables) and any plan/executor flag is
    #: rejected up front.
    modes: tuple[str, ...] = ALL_MODES
    #: Client executors a request may select via ``--executor``.
    executors: tuple[str, ...] = ALL_EXECUTORS
    #: Adversarial behaviours a request may inject via ``--adversary``.
    #: Empty for closed-form studies and for studies whose comparison a
    #: hostile population would invalidate.
    adversaries: tuple[str, ...] = ALL_ADVERSARIES

    def __post_init__(self) -> None:
        if self.summarise is None:
            raise ConfigurationError(f"study {self.name!r} needs a summarise callable")
        if self.sweep is None and (self.specs is None or self.collect is None):
            raise ConfigurationError(
                f"study {self.name!r} needs either a sweep or a specs+collect pair"
            )
        for mode in self.modes:
            if mode not in ALL_MODES:
                raise ConfigurationError(
                    f"study {self.name!r} declares unknown mode {mode!r}"
                )
        for executor in self.executors:
            if executor not in ALL_EXECUTORS:
                raise ConfigurationError(
                    f"study {self.name!r} declares unknown executor {executor!r}"
                )
        for adversary in self.adversaries:
            if adversary not in ALL_ADVERSARIES:
                raise ConfigurationError(
                    f"study {self.name!r} declares unknown adversary "
                    f"{adversary!r}"
                )

    def check_request(self, request: StudyRequest) -> None:
        """Fail fast on plan/executor flags this study cannot honour.

        Raises :class:`ConfigurationError` before any dataset is built or
        round runs, so ``repro <study> --mode ...`` with an unsupported
        combination dies with one clear line instead of deep in the
        pipeline (or, worse, silently reconfiguring the sweep).
        """
        requested_mode = request.overrides.get("mode")
        if requested_mode is not None and requested_mode not in self.modes:
            raise ConfigurationError(
                f"study {self.name!r} does not support --mode {requested_mode}; "
                f"supported modes: "
                f"{', '.join(self.modes) or 'none (closed form, no training)'}"
            )
        requested_plan = request.overrides.get("plan")
        if requested_plan == "hierarchical":
            # The hierarchical plan is a sharded *synchronous* round: the
            # study must run lock-step rounds, and must not also ask for a
            # buffered mode.
            if "sync" not in self.modes or requested_mode in (
                "semisync",
                "async",
            ):
                raise ConfigurationError(
                    f"study {self.name!r} cannot run --plan hierarchical: "
                    "it requires synchronous lock-step rounds"
                )
        requested_adversary = request.overrides.get("adversary")
        if requested_adversary is not None and requested_adversary not in self.adversaries:
            raise ConfigurationError(
                f"study {self.name!r} does not support --adversary "
                f"{requested_adversary}; supported adversaries: "
                f"{', '.join(self.adversaries) or 'none'}"
            )
        requested_executor = request.overrides.get("executor")
        if requested_executor is not None and requested_executor not in self.executors:
            raise ConfigurationError(
                f"study {self.name!r} does not support --executor "
                f"{requested_executor}; supported executors: "
                f"{', '.join(self.executors) or 'none (closed form, no training)'}"
            )

    @property
    def orchestrable(self) -> bool:
        """Whether this study runs through the sweep orchestrator."""
        return self.specs is not None and self.collect is not None

    def option_names(self) -> tuple[str, ...]:
        """The argparse dests of this study's extra flags."""
        return tuple(flag.dest for flag in self.flags)


class StudyRegistry:
    """Ordered name → :class:`Study` mapping with generic execution."""

    def __init__(self) -> None:
        self._studies: dict[str, Study] = {}

    def add(self, study: Study) -> Study:
        """Register a study (names must be unique)."""
        if study.name in self._studies:
            raise ConfigurationError(f"study {study.name!r} already registered")
        self._studies[study.name] = study
        return study

    def get(self, name: str) -> Study:
        """Look up one study; unknown names raise ``ValueError``."""
        try:
            return self._studies[name]
        except KeyError:
            raise ValueError(
                f"unknown experiment {name!r}; available: {sorted(self._studies)}"
            ) from None

    def names(self) -> list[str]:
        """Registered study names in registration order."""
        return list(self._studies)

    def descriptions(self) -> dict[str, str]:
        """Name → one-line description for listings."""
        return {name: study.description for name, study in self._studies.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._studies

    def __iter__(self):
        return iter(self._studies.values())

    def __len__(self) -> int:
        return len(self._studies)

    def run(
        self,
        name: str,
        request: StudyRequest | None = None,
        orchestrator: "SweepOrchestrator | None" = None,
    ) -> dict:
        """Execute one study end to end and return its JSON payload.

        Spec-expanded studies route through ``orchestrator`` (a fresh
        serial, storeless :class:`SweepOrchestrator` when none is given —
        bit-identical to the historical monolithic sweeps); studies
        without specs fall back to their monolithic ``sweep``.
        """
        study = self.get(name)
        request = request if request is not None else StudyRequest()
        study.check_request(request)
        config = study.build_config(request)
        if config is not None:
            config = request.apply_overrides(config)
        if study.orchestrable:
            from repro.experiments.orchestrator import SweepOrchestrator

            runner = orchestrator if orchestrator is not None else SweepOrchestrator()
            results = runner.execute(study.specs(config, request))
            raw = study.collect(results, config, request)
        else:
            if orchestrator is not None:
                print(
                    f"note: study {name!r} has no spec expansion; "
                    f"--jobs/--resume/--store-dir have no effect"
                )
            raw = study.sweep(config, request)
        return study.summarise(raw, request)
