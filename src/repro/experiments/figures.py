"""Figure data extraction: accuracy-versus-round series as plain data/text.

The paper's figures are accuracy curves; without a plotting dependency the
reproduction exposes the same information as ``(round, accuracy)`` series
plus a text rendering, which the benchmarks print and EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Mapping

from repro.federated.engine import SimulationResult


def accuracy_series(result: SimulationResult) -> list[tuple[int, float]]:
    """(round, test accuracy) pairs for rounds where evaluation ran."""
    return result.history.accuracy_series()


def series_to_text(
    series_by_label: Mapping[str, list[tuple[int, float]]],
    max_points: int = 20,
) -> str:
    """Render several labelled series side by side as text.

    Long series are subsampled to at most ``max_points`` evenly spaced points
    so the output stays readable in benchmark logs.
    """
    lines: list[str] = []
    for label, series in series_by_label.items():
        if not series:
            lines.append(f"{label}: (no evaluations)")
            continue
        if len(series) > max_points:
            step = max(1, len(series) // max_points)
            series = series[::step] + [series[-1]]
        points = ", ".join(f"r{round_}:{acc:.3f}" for round_, acc in series)
        lines.append(f"{label}: {points}")
    return "\n".join(lines)


def final_accuracies(
    results_by_label: Mapping[str, SimulationResult],
) -> dict[str, float]:
    """Final test accuracy per labelled run."""
    return {
        label: result.history.final_accuracy()
        for label, result in results_by_label.items()
    }


def best_accuracies(
    results_by_label: Mapping[str, SimulationResult],
) -> dict[str, float]:
    """Best test accuracy per labelled run."""
    return {
        label: result.history.best_accuracy()
        for label, result in results_by_label.items()
    }
