"""The paper's studies, declared against the :class:`StudyRegistry`.

Three layers live here:

* **Sweep functions** (``run_*_study`` and friends) — the monolithic
  experiment logic behind each table/figure, importable on their own
  (the benchmark suite calls them directly).  They used to live in
  ``runner.py``.
* **Spec expansions** — each training study declares how its sweep
  decomposes into independent
  :class:`~repro.experiments.orchestrator.RunSpec` s (``specs``) and how
  the per-spec results reassemble into the sweep's raw output
  (``collect``).  The :class:`~repro.experiments.orchestrator.SweepOrchestrator`
  executes the specs — serially by default (bit-identical to the
  monolithic sweeps), in parallel with ``--jobs``, resumably with
  ``--resume`` — so no study carries bespoke loop code.
* **Registry entries** — one :class:`~repro.experiments.registry.Study`
  per table/figure binding a config preset, the spec expansion, a
  summariser, and any study-specific CLI flags.  ``cli.py`` walks
  :data:`STUDIES` to expose one subcommand per entry; nothing is
  hand-wired.

Adding a new study is one ``STUDIES.add(Study(...))`` call.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms import ALGORITHM_REGISTRY, build_algorithm
from repro.core.rho import PiecewiseRho
from repro.core.stepsize import PiecewiseStepSize
from repro.exceptions import ConfigurationError
from repro.experiments.configs import (
    AlgorithmSpec,
    ExperimentConfig,
    async_config,
    default_algorithms,
    fig3_config,
    fig5_config,
    fig6_config,
    fig8_config,
    fig9_config,
    robustness_config,
    semisync_config,
    systems_config,
    table3_config,
    table4_config,
    table5_config,
    table6_config,
)
from repro.experiments.figures import accuracy_series, series_to_text
from repro.experiments.orchestrator import RunSpec, SweepOrchestrator
from repro.experiments.registry import (
    Study,
    StudyFlag,
    StudyRegistry,
    StudyRequest,
)
from repro.experiments.runner import (
    ComparisonResult,
    prepare_environment,
    rounds_summary,
    run_comparison,
    run_single,
)
from repro.experiments.tables import format_table, table3_text
from repro.federated.engine import SimulationResult


def filter_plan_compatible(
    specs: Sequence[AlgorithmSpec], mode: str
) -> list[AlgorithmSpec]:
    """Drop algorithms that opt out of buffered aggregation plans.

    Lock-step methods (SCAFFOLD, FedPD) cannot run under the async or
    semi-sync plans; a note is printed for any skipped entry.
    """
    if mode == "sync":
        return list(specs)
    kept, skipped = [], []
    for spec in specs:
        if ALGORITHM_REGISTRY[spec.name].supports_plan(mode):
            kept.append(spec)
        else:
            skipped.append(spec.name)
    if skipped:
        print(
            f"note: mode={mode} skips {', '.join(skipped)} "
            f"(no asynchronous aggregation support)"
        )
    return kept


# --------------------------------------------------------------------------- #
# Spec-expansion helpers (shared by the studies' specs/collect pairs)
# --------------------------------------------------------------------------- #
def comparison_specs(
    study: str,
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
    stop_at_target: bool = True,
    prefix: tuple = (),
) -> list[RunSpec]:
    """One :class:`RunSpec` per algorithm, all under the same config.

    Each spec re-derives the dataset/partition/model deterministically
    from the config seed, so executing them independently (any order, any
    process) reproduces ``run_comparison`` bit for bit.
    """
    return [
        RunSpec(
            study=study,
            key=prefix + (spec.label(),),
            config=config,
            algorithm=spec,
            stop_at_target=stop_at_target,
        )
        for spec in algorithms
    ]


def collect_comparison(
    results: "dict[tuple, SimulationResult]",
    config: ExperimentConfig,
    prefix: tuple = (),
    with_stats: bool = False,
) -> ComparisonResult:
    """Reassemble per-algorithm results into a :class:`ComparisonResult`.

    ``prefix`` selects the subtree of a nested sweep (e.g. one population
    of a scale sweep); partition statistics are recomputed on demand (they
    are a pure function of the config) for the summarisers that print them.
    """
    picked = {
        key[-1]: result
        for key, result in results.items()
        if key[: len(prefix)] == prefix
    }
    stats = prepare_environment(config)[2] if with_stats else None
    return ComparisonResult(config=config, results=picked, partition_stats=stats)


# --------------------------------------------------------------------------- #
# Sweep functions (the logic behind each table/figure)
# --------------------------------------------------------------------------- #
def run_rounds_to_target_table(
    configs: dict[str, ExperimentConfig],
    algorithms: Sequence[AlgorithmSpec],
) -> dict[str, ComparisonResult]:
    """Table III: one comparison per column (dataset x population x distribution)."""
    return {
        column: run_comparison(config, algorithms) for column, config in configs.items()
    }


def run_scale_sweep(
    base_config: ExperimentConfig,
    populations: Sequence[int],
    algorithms: Sequence[AlgorithmSpec],
) -> dict[int, ComparisonResult]:
    """Figs. 3-4: repeat the comparison at several client populations.

    Hyperparameters stay fixed across populations, exactly as in the paper's
    protocol (tuned once at the smallest population, then reused).  Large
    populations can be swept under the sharded synchronous topology by
    passing configs with ``plan="hierarchical"`` (CLI:
    ``--plan hierarchical --shards N``); a 1-shard hierarchy is
    bit-identical to the flat rounds used here.
    """
    sweeps: dict[int, ComparisonResult] = {}
    for population in populations:
        config = base_config.with_overrides(
            num_clients=population,
            name=f"{base_config.name}-m{population}",
        )
        sweeps[population] = run_comparison(config, algorithms)
    return sweeps


def run_heterogeneity_comparison(
    config_iid: ExperimentConfig,
    config_non_iid: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
) -> dict[str, ComparisonResult]:
    """Fig. 5: the same comparison under IID and non-IID distributions."""
    return {
        "iid": run_comparison(config_iid, algorithms),
        "non_iid": run_comparison(config_non_iid, algorithms),
    }


def run_server_stepsize_study(
    config: ExperimentConfig,
    etas: Sequence[float] = (0.5, 1.0, 1.5),
    switch_round: int | None = None,
    switch_value: float = 0.5,
    rho: float = 0.01,
) -> dict[str, SimulationResult]:
    """Fig. 6: FedADMM under different server step sizes η.

    If ``switch_round`` is given an additional run decreases η to
    ``switch_value`` at that round (the paper's mid-run adjustment).
    """
    results: dict[str, SimulationResult] = {}
    for eta in etas:
        spec_label = f"eta={eta}"
        algorithm = build_algorithm("fedadmm", rho=rho, server_step_size=eta)
        results[spec_label] = run_single(config, algorithm, stop_at_target=False)
    if switch_round is not None:
        policy = PiecewiseStepSize(values=[1.0, switch_value], boundaries=[switch_round])
        algorithm = build_algorithm("fedadmm", rho=rho, server_step_size=policy)
        results[f"eta=1.0->{switch_value}@{switch_round}"] = run_single(
            config, algorithm, stop_at_target=False
        )
    return results


def run_local_epochs_study(
    config: ExperimentConfig,
    epoch_counts: Sequence[int] = (1, 5, 10),
    rho: float = 0.01,
) -> dict[int, SimulationResult]:
    """Table IV / Fig. 7: rounds to target for FedADMM at several E values."""
    results: dict[int, SimulationResult] = {}
    for epochs in epoch_counts:
        run_config = config.with_overrides(
            local_epochs=epochs, name=f"{config.name}-E{epochs}"
        )
        algorithm = build_algorithm("fedadmm", rho=rho)
        results[epochs] = run_single(run_config, algorithm, stop_at_target=True)
    return results


def run_local_init_study(
    config: ExperimentConfig,
    etas: Sequence[float] = (1.0, 0.5),
    rho: float = 0.01,
) -> dict[str, SimulationResult]:
    """Fig. 8: warm start (init I, from w_i) vs restart (init II, from θ)."""
    results: dict[str, SimulationResult] = {}
    for eta in etas:
        for warm_start, label in ((True, "I-warm"), (False, "II-restart")):
            algorithm = build_algorithm(
                "fedadmm", rho=rho, server_step_size=eta, warm_start=warm_start
            )
            results[f"{label}-eta={eta}"] = run_single(
                config, algorithm, stop_at_target=False
            )
    return results


def run_rho_sensitivity_table(
    configs: dict[str, ExperimentConfig],
    prox_rhos: Sequence[float] = (0.01, 0.1, 1.0),
    admm_rho: float = 0.01,
) -> dict[str, ComparisonResult]:
    """Table V: FedProx across ρ values vs FedADMM at fixed ρ."""
    algorithms = [AlgorithmSpec("fedadmm", {"rho": admm_rho})]
    algorithms.extend(AlgorithmSpec("fedprox", {"rho": rho}) for rho in prox_rhos)
    return {
        column: run_comparison(config, algorithms) for column, config in configs.items()
    }


def run_rho_schedule_study(
    config: ExperimentConfig,
    constant_rhos: Sequence[float] = (0.01, 0.1),
    switch_round: int | None = 10,
    switch_values: tuple[float, float] = (0.01, 0.1),
) -> dict[str, SimulationResult]:
    """Fig. 9: constant vs dynamically increased ρ for FedADMM."""
    results: dict[str, SimulationResult] = {}
    for rho in constant_rhos:
        algorithm = build_algorithm("fedadmm", rho=rho)
        results[f"rho={rho}"] = run_single(config, algorithm, stop_at_target=False)
    if switch_round is not None:
        schedule = PiecewiseRho(values=list(switch_values), boundaries=[switch_round])
        algorithm = build_algorithm("fedadmm", rho=schedule)
        label = f"rho={switch_values[0]}->{switch_values[1]}@{switch_round}"
        results[label] = run_single(config, algorithm, stop_at_target=False)
    return results


def run_systems_study(
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
    dropout_rates: Sequence[float] = (0.0, 0.2, 0.4),
) -> dict[float, ComparisonResult]:
    """System-heterogeneity study: the comparison across client dropout rates.

    Every other systems knob (codec, network model, executor) is taken from
    ``config``; runs do not stop at the target so that final accuracies are
    comparable across rates.  This is the scenario behind the paper's
    robustness claim: FedADMM should degrade more gracefully than
    FedAvg/SCAFFOLD as participation gets less reliable.
    """
    results: dict[float, ComparisonResult] = {}
    for rate in dropout_rates:
        run_config = config.with_overrides(
            dropout=rate, name=f"{config.name}-dropout{rate}"
        )
        results[rate] = run_comparison(run_config, algorithms, stop_at_target=False)
    return results


def _mode_vs_sync_study(
    mode: str,
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
    stop_at_target: bool,
) -> dict[str, ComparisonResult]:
    """Run every algorithm under lock-step sync and under ``mode``.

    Both runs use identical data, model initialisation, and network model,
    so ``history.seconds_to_accuracy(target)`` isolates what the buffered
    plan buys: under a heavy-tailed straggler profile it stops paying for
    the slowest client of every round.
    """
    return {
        setting: run_comparison(
            setting_config, algorithms, stop_at_target=stop_at_target
        )
        for setting, setting_config in _mode_vs_sync_configs(mode, config).items()
    }


def run_async_study(
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
    stop_at_target: bool = True,
) -> dict[str, ComparisonResult]:
    """Sync vs async time-to-target under the same heterogeneity profile.

    The async buffer defaults to the sync cohort size, so each
    aggregation consumes the same number of uploads in both modes.
    """
    return _mode_vs_sync_study("async", config, algorithms, stop_at_target)


def run_semisync_study(
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
    stop_at_target: bool = True,
) -> dict[str, ComparisonResult]:
    """Sync vs semi-sync time-to-target under the same straggler profile.

    The semi-synchronous plan stops paying for the slowest client of a
    round (it closes at the deadline) without giving up lock-step's
    bounded staleness: late arrivals deliver into later rounds with
    FedBuff-style weights.
    """
    return _mode_vs_sync_study("semisync", config, algorithms, stop_at_target)


def run_imbalanced_study(
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
) -> ComparisonResult:
    """Table VI / Fig. 10: the imbalanced-volume setting."""
    if config.partition != "imbalanced":
        raise ConfigurationError(
            "run_imbalanced_study expects a config using the 'imbalanced' partition"
        )
    return run_comparison(config, algorithms, stop_at_target=False)


# --------------------------------------------------------------------------- #
# Summarisers (print a report, return the JSON payload)
# --------------------------------------------------------------------------- #
def _comparison_report(comparison: ComparisonResult) -> dict:
    print(table3_text({comparison.config.name: comparison}))
    return {
        "config": comparison.config.name,
        "summary": rounds_summary(comparison),
    }


def _series_report(results: dict[str, SimulationResult]) -> dict:
    series = {label: accuracy_series(result) for label, result in results.items()}
    print(series_to_text(series, max_points=15))
    return {"series": series}


def _staleness_row(mode: str, label: str, result: SimulationResult, target: float) -> dict:
    seconds = result.history.seconds_to_accuracy(target)
    return {
        "mode": mode,
        "algorithm": label,
        "rounds_to_target": result.rounds_to_target,
        "seconds_to_target": None if seconds is None else round(seconds, 1),
        "final_accuracy": round(result.history.final_accuracy(), 4),
        "mean_staleness": round(
            float(np.nanmean(result.history.stalenesses))
            if len(result.history)
            else 0.0,
            2,
        ),
        "max_staleness": result.history.max_staleness(),
    }


def _mode_comparison_rows(studies: dict[str, ComparisonResult]) -> dict:
    rows = []
    for mode, comparison in studies.items():
        for label, result in comparison.results.items():
            rows.append(
                _staleness_row(
                    mode, label, result, comparison.config.target_accuracy
                )
            )
    print(format_table(rows))
    return {"rows": rows}


# --------------------------------------------------------------------------- #
# Registry entries
# --------------------------------------------------------------------------- #
STUDIES = StudyRegistry()


def _table1_sweep(config: ExperimentConfig | None, request: StudyRequest) -> list[dict]:
    from repro.core.convergence import COMPLEXITY_TABLE, round_complexity

    rows = []
    for epsilon in (1e-2, 1e-3, 1e-4):
        for method in COMPLEXITY_TABLE:
            rows.append(
                {
                    "epsilon": epsilon,
                    "method": method,
                    "predicted_rounds": round_complexity(
                        method, epsilon, num_clients=1000, num_selected=100,
                        dissimilarity_b=3.0, gradient_bound_g=3.0,
                    ),
                }
            )
    return rows


def _print_rows(rows: list[dict], request: StudyRequest) -> dict:
    print(format_table(rows))
    return {"rows": rows}


STUDIES.add(Study(
    name="table1",
    description="Table I   — round-complexity predictors (closed form, no training)",
    build_config=lambda request: None,
    sweep=_table1_sweep,
    summarise=_print_rows,
    # Closed form: no federated training, so no plan, executor, or
    # adversary applies.
    modes=(),
    executors=(),
    adversaries=(),
))


STUDIES.add(Study(
    name="table3",
    description="Table III — rounds to target accuracy for all algorithms",
    build_config=lambda request: table3_config(
        request.dataset, num_clients=request.clients,
        non_iid=request.non_iid, scale=request.scale, seed=request.seed,
    ),
    specs=lambda config, request: comparison_specs(
        "table3", config,
        filter_plan_compatible(default_algorithms(admm_rho=request.rho), config.mode),
    ),
    collect=lambda results, config, request: collect_comparison(results, config),
    summarise=lambda comparison, request: _comparison_report(comparison),
))


def _single_run_collect(results, config, request) -> dict:
    """Flatten ``{(point,): result}`` into the flat ``{point: result}``
    mapping the per-point summarisers expect, preserving spec order."""
    return {key[0]: result for key, result in results.items()}


def _table4_specs(config: ExperimentConfig, request: StudyRequest) -> list[RunSpec]:
    return [
        RunSpec(
            study="table4",
            key=(epochs,),
            config=config.with_overrides(
                local_epochs=epochs, name=f"{config.name}-E{epochs}"
            ),
            algorithm=AlgorithmSpec("fedadmm", {"rho": request.rho}),
        )
        for epochs in tuple(request.option("epochs", (1, 5, 10)))
    ]


def _table4_report(results: dict[int, SimulationResult], request: StudyRequest) -> dict:
    rows = [
        {"E": epochs, "rounds_to_target": result.rounds_to_target,
         "final_accuracy": result.history.final_accuracy()}
        for epochs, result in results.items()
    ]
    return _print_rows(rows, request)


STUDIES.add(Study(
    name="table4",
    description="Table IV / Fig. 7 — FedADMM vs local epoch count E",
    build_config=lambda request: table4_config(
        request.dataset, non_iid=request.non_iid, scale=request.scale,
        seed=request.seed,
    ),
    specs=_table4_specs,
    collect=_single_run_collect,
    summarise=_table4_report,
    flags=(StudyFlag("--epochs", {"nargs": "+", "type": int,
                                  "help": "local epoch counts E to sweep"}),),
))


def _table5_algorithms(request: StudyRequest) -> list[AlgorithmSpec]:
    algorithms = [AlgorithmSpec("fedadmm", {"rho": request.rho})]
    algorithms.extend(
        AlgorithmSpec("fedprox", {"rho": rho})
        for rho in tuple(request.option("prox_rhos", (0.01, 0.1, 1.0)))
    )
    return algorithms


STUDIES.add(Study(
    name="table5",
    description="Table V   — rho sensitivity of FedProx vs fixed-rho FedADMM",
    build_config=lambda request: table5_config(
        request.dataset, num_clients=request.clients, non_iid=True,
        scale=request.scale, seed=request.seed,
    ),
    specs=lambda config, request: comparison_specs(
        "table5", config, _table5_algorithms(request), prefix=(config.name,)
    ),
    collect=lambda results, config, request: {
        config.name: collect_comparison(results, config, prefix=(config.name,))
    },
    summarise=lambda table, request: {
        column: _comparison_report(comparison) for column, comparison in table.items()
    },
    flags=(StudyFlag("--prox-rhos", {"nargs": "+", "type": float,
                                     "help": "FedProx rho values to sweep"}),),
))


def _table6_report(comparison: ComparisonResult, request: StudyRequest) -> dict:
    print(format_table([comparison.partition_stats.as_table_row()]))
    return _comparison_report(comparison)


def _table6_specs(config: ExperimentConfig, request: StudyRequest) -> list[RunSpec]:
    if config.partition != "imbalanced":
        raise ConfigurationError(
            "the table6 study expects a config using the 'imbalanced' partition"
        )
    return comparison_specs(
        "table6", config,
        filter_plan_compatible(
            [AlgorithmSpec("fedadmm", {"rho": request.rho}),
             AlgorithmSpec("fedavg", {}),
             AlgorithmSpec("fedprox", {"rho": 0.1}),
             AlgorithmSpec("scaffold", {})],
            config.mode,
        ),
        stop_at_target=False,
    )


STUDIES.add(Study(
    name="table6",
    description="Table VI / Fig. 10 — imbalanced data volumes",
    build_config=lambda request: table6_config(
        request.dataset, scale=request.scale, seed=request.seed
    ),
    specs=_table6_specs,
    collect=lambda results, config, request: collect_comparison(
        results, config, with_stats=True
    ),
    summarise=_table6_report,
))


def _fig3_populations(config: ExperimentConfig, request: StudyRequest) -> list[int]:
    return list(
        request.option("populations", [config.num_clients, config.num_clients * 2])
    )


def _fig3_pop_config(config: ExperimentConfig, population: int) -> ExperimentConfig:
    return config.with_overrides(
        num_clients=population, name=f"{config.name}-m{population}"
    )


def _fig3_specs(config: ExperimentConfig, request: StudyRequest) -> list[RunSpec]:
    algorithms = [
        AlgorithmSpec("fedadmm", {"rho": request.rho}), AlgorithmSpec("fedavg", {}),
    ]
    return [
        spec
        for population in _fig3_populations(config, request)
        for spec in comparison_specs(
            "fig3", _fig3_pop_config(config, population), algorithms,
            prefix=(population,),
        )
    ]


def _fig3_collect(results, config: ExperimentConfig, request: StudyRequest):
    return {
        population: collect_comparison(
            results, _fig3_pop_config(config, population), prefix=(population,)
        )
        for population in _fig3_populations(config, request)
    }


STUDIES.add(Study(
    name="fig3",
    description="Fig. 3/4  — scaling the client population",
    build_config=lambda request: fig3_config(
        request.dataset, non_iid=request.non_iid, scale=request.scale,
        seed=request.seed,
    ),
    specs=_fig3_specs,
    collect=_fig3_collect,
    summarise=lambda sweeps, request: {
        str(population): _comparison_report(comparison)
        for population, comparison in sweeps.items()
    },
    flags=(StudyFlag("--populations", {"nargs": "+", "type": int,
                                       "help": "client populations to sweep"}),),
))


def _fig5_configs(request: StudyRequest) -> dict[str, ExperimentConfig]:
    # fig5 runs the *pair* of IID and non-IID configs, so it owns config
    # construction itself (build_config returns None, like table1).
    return {
        "iid": request.apply_overrides(
            fig5_config(request.dataset, non_iid=False, scale=request.scale,
                        seed=request.seed)
        ),
        "non_iid": request.apply_overrides(
            fig5_config(request.dataset, non_iid=True, scale=request.scale,
                        seed=request.seed)
        ),
    }


def _fig5_specs(config: None, request: StudyRequest) -> list[RunSpec]:
    configs = _fig5_configs(request)
    algorithms = filter_plan_compatible(
        [AlgorithmSpec("fedadmm", {"rho": request.rho}),
         AlgorithmSpec("fedavg", {}),
         AlgorithmSpec("fedprox", {"rho": 0.1}),
         AlgorithmSpec("scaffold", {})],
        configs["iid"].mode,
    )
    return [
        spec
        for setting, setting_config in configs.items()
        for spec in comparison_specs(
            "fig5", setting_config, algorithms, prefix=(setting,)
        )
    ]


def _fig5_collect(results, config: None, request: StudyRequest):
    return {
        setting: collect_comparison(results, setting_config, prefix=(setting,))
        for setting, setting_config in _fig5_configs(request).items()
    }


STUDIES.add(Study(
    name="fig5",
    description="Fig. 5    — IID vs non-IID adaptability",
    build_config=lambda request: None,
    specs=_fig5_specs,
    collect=_fig5_collect,
    summarise=lambda outcome, request: {
        setting: _comparison_report(comparison)
        for setting, comparison in outcome.items()
    },
))


def _fig6_specs(config: ExperimentConfig, request: StudyRequest) -> list[RunSpec]:
    specs = [
        RunSpec(
            study="fig6",
            key=(f"eta={eta}",),
            config=config,
            algorithm=AlgorithmSpec(
                "fedadmm", {"rho": request.rho, "server_step_size": eta}
            ),
            stop_at_target=False,
        )
        for eta in tuple(request.option("etas", (0.5, 1.0, 1.5)))
    ]
    switch_round = config.num_rounds // 2
    policy = PiecewiseStepSize(values=[1.0, 0.5], boundaries=[switch_round])
    specs.append(RunSpec(
        study="fig6",
        key=(f"eta=1.0->0.5@{switch_round}",),
        config=config,
        algorithm=AlgorithmSpec(
            "fedadmm", {"rho": request.rho, "server_step_size": policy}
        ),
        stop_at_target=False,
    ))
    return specs


STUDIES.add(Study(
    name="fig6",
    description="Fig. 6    — server step size study",
    build_config=lambda request: fig6_config(
        request.dataset, non_iid=request.non_iid, scale=request.scale,
        seed=request.seed,
    ),
    specs=_fig6_specs,
    collect=_single_run_collect,
    summarise=lambda results, request: _series_report(results),
    flags=(StudyFlag("--etas", {"nargs": "+", "type": float,
                                "help": "server step sizes to sweep"}),),
))


def _fig8_specs(config: ExperimentConfig, request: StudyRequest) -> list[RunSpec]:
    return [
        RunSpec(
            study="fig8",
            key=(f"{label}-eta={eta}",),
            config=config,
            algorithm=AlgorithmSpec(
                "fedadmm",
                {"rho": request.rho, "server_step_size": eta, "warm_start": warm_start},
            ),
            stop_at_target=False,
        )
        for eta in tuple(request.option("etas", (1.0, 0.5)))
        for warm_start, label in ((True, "I-warm"), (False, "II-restart"))
    ]


STUDIES.add(Study(
    name="fig8",
    description="Fig. 8    — local initialisation (warm start vs restart)",
    build_config=lambda request: fig8_config(
        request.dataset, non_iid=True, scale=request.scale, seed=request.seed
    ),
    specs=_fig8_specs,
    collect=_single_run_collect,
    summarise=lambda results, request: _series_report(results),
    flags=(StudyFlag("--etas", {"nargs": "+", "type": float,
                                "help": "server step sizes to sweep"}),),
))


def _fig9_specs(config: ExperimentConfig, request: StudyRequest) -> list[RunSpec]:
    specs = [
        RunSpec(
            study="fig9",
            key=(f"rho={rho}",),
            config=config,
            algorithm=AlgorithmSpec("fedadmm", {"rho": rho}),
            stop_at_target=False,
        )
        for rho in (request.rho / 3, request.rho)
    ]
    switch_round = config.num_rounds // 2
    schedule = PiecewiseRho(
        values=[request.rho / 3, request.rho], boundaries=[switch_round]
    )
    specs.append(RunSpec(
        study="fig9",
        key=(f"rho={request.rho / 3}->{request.rho}@{switch_round}",),
        config=config,
        algorithm=AlgorithmSpec("fedadmm", {"rho": schedule}),
        stop_at_target=False,
    ))
    return specs


STUDIES.add(Study(
    name="fig9",
    description="Fig. 9    — dynamic rho schedule",
    build_config=lambda request: fig9_config(
        request.dataset, non_iid=True, scale=request.scale, seed=request.seed
    ),
    specs=_fig9_specs,
    collect=_single_run_collect,
    summarise=lambda results, request: _series_report(results),
))


def _systems_rates(config: ExperimentConfig, request: StudyRequest) -> tuple[float, ...]:
    return tuple(request.option(
        "dropout_rates",
        (0.0, config.dropout) if config.dropout > 0 else (0.0,),
    ))


def _systems_rate_config(config: ExperimentConfig, rate: float) -> ExperimentConfig:
    return config.with_overrides(dropout=rate, name=f"{config.name}-dropout{rate}")


def _systems_specs(config: ExperimentConfig, request: StudyRequest) -> list[RunSpec]:
    algorithms = filter_plan_compatible(
        [AlgorithmSpec("fedadmm", {"rho": request.rho}),
         AlgorithmSpec("fedavg", {}),
         AlgorithmSpec("scaffold", {})],
        config.mode,
    )
    return [
        spec
        for rate in _systems_rates(config, request)
        for spec in comparison_specs(
            "systems", _systems_rate_config(config, rate), algorithms,
            stop_at_target=False, prefix=(rate,),
        )
    ]


def _systems_collect(results, config: ExperimentConfig, request: StudyRequest):
    return {
        rate: collect_comparison(
            results, _systems_rate_config(config, rate), prefix=(rate,)
        )
        for rate in _systems_rates(config, request)
    }


def _systems_report(studies: dict[float, ComparisonResult], request: StudyRequest) -> dict:
    rows = []
    for rate, comparison in studies.items():
        for label, result in comparison.results.items():
            rows.append(
                {
                    "dropout": rate,
                    "algorithm": label,
                    "final_accuracy": result.history.final_accuracy(),
                    "raw_upload_MB": result.ledger.upload_bytes / 1e6,
                    "wire_upload_MB": result.ledger.upload_wire_bytes / 1e6,
                    "sim_minutes": result.simulated_seconds / 60.0,
                    "clients_dropped": result.history.total_dropped(),
                }
            )
    return _print_rows(rows, request)


STUDIES.add(Study(
    name="systems",
    description="Systems   — dropout/straggler robustness under the client-systems model",
    build_config=lambda request: systems_config(
        request.dataset, non_iid=request.non_iid, scale=request.scale,
        seed=request.seed,
    ),
    specs=_systems_specs,
    collect=_systems_collect,
    summarise=_systems_report,
    flags=(StudyFlag("--dropout-rates", {"nargs": "+", "type": float,
                                         "help": "dropout rates to sweep"}),),
))


def _robustness_fractions(
    config: ExperimentConfig, request: StudyRequest
) -> tuple[float, ...]:
    fractions = request.option("adversary_fractions")
    if fractions is None:
        fractions = (0.0, config.adversary_fraction or 0.2)
    return tuple(dict.fromkeys(float(f) for f in fractions))


def _robustness_defenses(
    config: ExperimentConfig, request: StudyRequest
) -> tuple[str, ...]:
    defenses = request.option("defenses")
    if defenses is None:
        defenses = ("none", config.defense or "median")
    return tuple(dict.fromkeys(defenses))


def _robustness_cell_config(
    config: ExperimentConfig, fraction: float, defense: str
) -> ExperimentConfig:
    overrides: dict = {
        "adversary_fraction": fraction,
        "defense": None if defense == "none" else defense,
        "name": f"{config.name}-adv{fraction}-{defense}",
    }
    if fraction == 0:
        # The clean reference cell: no adversary at all.
        overrides["adversary"] = None
    return config.with_overrides(**overrides)


def _robustness_algorithms(request: StudyRequest) -> list[AlgorithmSpec]:
    return [
        AlgorithmSpec("fedadmm", {"rho": request.rho}),
        AlgorithmSpec("fedavg", {}),
    ]


def _robustness_specs(
    config: ExperimentConfig, request: StudyRequest
) -> list[RunSpec]:
    return [
        spec
        for fraction in _robustness_fractions(config, request)
        for defense in _robustness_defenses(config, request)
        for spec in comparison_specs(
            "robustness",
            _robustness_cell_config(config, fraction, defense),
            _robustness_algorithms(request),
            stop_at_target=False,
            prefix=(fraction, defense),
        )
    ]


def _robustness_collect(results, config: ExperimentConfig, request: StudyRequest):
    return {
        (fraction, defense): collect_comparison(
            results,
            _robustness_cell_config(config, fraction, defense),
            prefix=(fraction, defense),
        )
        for fraction in _robustness_fractions(config, request)
        for defense in _robustness_defenses(config, request)
    }


def _robustness_report(
    studies: "dict[tuple[float, str], ComparisonResult]", request: StudyRequest
) -> dict:
    rows = []
    clean: dict[str, float | None] = {}
    for (fraction, defense), comparison in studies.items():
        for label, result in comparison.results.items():
            accuracy = result.history.final_accuracy()
            if fraction == 0 and label not in clean:
                clean[label] = accuracy
            reference = clean.get(label)
            rows.append(
                {
                    "adversary": (
                        comparison.config.adversary if fraction else "none"
                    ),
                    "fraction": fraction,
                    "defense": defense,
                    "algorithm": label,
                    "final_accuracy": accuracy,
                    "degradation_vs_clean": (
                        None
                        if reference is None or accuracy is None
                        else reference - accuracy
                    ),
                }
            )
    return _print_rows(rows, request)


STUDIES.add(Study(
    name="robustness",
    description="Robust    — byzantine/poisoning adversaries vs robust aggregation defenses",
    build_config=lambda request: robustness_config(
        request.dataset, non_iid=request.non_iid, scale=request.scale,
        seed=request.seed,
    ),
    specs=_robustness_specs,
    collect=_robustness_collect,
    summarise=_robustness_report,
    flags=(
        StudyFlag("--adversary-fractions", {
            "nargs": "+", "type": float,
            "help": "adversarial population fractions to sweep "
                    "(default: 0.0 and the preset fraction)"}),
        StudyFlag("--defenses", {
            "nargs": "+",
            "help": "defenses to sweep ('none', 'median', 'trimmed_mean', "
                    "'norm_clip'; default: none and median)"}),
    ),
    # Defenses rank one lock-step cohort's updates against each other, so
    # the attacked-vs-defended comparison only exists under sync rounds.
    modes=("sync",),
))


def _mode_vs_sync_configs(
    mode: str, config: ExperimentConfig
) -> dict[str, ExperimentConfig]:
    """The (sync, buffered-mode) config pair behind the async/semisync studies."""
    if config.mode != mode:
        raise ConfigurationError(
            f"this study expects a config with mode={mode!r} "
            f"(see {mode}_config)"
        )
    return {
        "sync": config.with_overrides(mode="sync", name=f"{config.name}-sync"),
        mode: config.with_overrides(name=f"{config.name}-{mode}"),
    }


def _mode_vs_sync_specs(
    study: str,
    mode: str,
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
) -> list[RunSpec]:
    return [
        spec
        for setting, setting_config in _mode_vs_sync_configs(mode, config).items()
        for spec in comparison_specs(
            study, setting_config, algorithms, prefix=(setting,)
        )
    ]


def _mode_vs_sync_collect(mode: str, results, config: ExperimentConfig):
    return {
        setting: collect_comparison(results, setting_config, prefix=(setting,))
        for setting, setting_config in _mode_vs_sync_configs(mode, config).items()
    }


def _async_algorithms(request: StudyRequest) -> list[AlgorithmSpec]:
    return [
        AlgorithmSpec("fedadmm", {"rho": request.rho}), AlgorithmSpec("fedavg", {}),
        AlgorithmSpec("fedprox", {"rho": 0.1}),
    ]


STUDIES.add(Study(
    name="async",
    description="Async     — sync vs event-driven async time-to-target under stragglers",
    build_config=lambda request: async_config(
        request.dataset, non_iid=request.non_iid, scale=request.scale,
        seed=request.seed,
    ),
    specs=lambda config, request: _mode_vs_sync_specs(
        "async", "async", config, _async_algorithms(request)
    ),
    collect=lambda results, config, request: _mode_vs_sync_collect(
        "async", results, config
    ),
    summarise=lambda studies, request: _mode_comparison_rows(studies),
    # The study *is* the sync-vs-async pair; overriding the mode would
    # break the comparison, so only the preset's own mode is accepted.
    modes=("async",),
))


def _semisync_report(studies: dict[str, ComparisonResult], request: StudyRequest) -> dict:
    payload = _mode_comparison_rows(studies)
    semi = studies.get("semisync")
    if semi is not None:
        payload["late_arrivals"] = {
            label: result.metadata.get("late_arrivals", 0)
            for label, result in semi.results.items()
        }
        payload["round_deadline_s"] = {
            label: result.metadata.get("round_deadline_s")
            for label, result in semi.results.items()
        }
    return payload


STUDIES.add(Study(
    name="semisync",
    description="Semisync  — sync vs deadline-bounded semi-sync rounds with late arrivals",
    build_config=lambda request: semisync_config(
        request.dataset, non_iid=request.non_iid, scale=request.scale,
        seed=request.seed,
    ),
    specs=lambda config, request: _mode_vs_sync_specs(
        "semisync", "semisync", config,
        [AlgorithmSpec("fedadmm", {"rho": request.rho}),
         AlgorithmSpec("fedavg", {})],
    ),
    collect=lambda results, config, request: _mode_vs_sync_collect(
        "semisync", results, config
    ),
    summarise=_semisync_report,
    # Like the async study: the sync-vs-semisync pair is the experiment.
    modes=("semisync",),
))


def run_study(
    name: str,
    request: StudyRequest | None = None,
    orchestrator: SweepOrchestrator | None = None,
) -> dict:
    """Execute one registered study end to end (the library entry point).

    Pass a configured :class:`SweepOrchestrator` to run the study's sweep
    points in parallel (``jobs=N``) and/or resumably against a persistent
    :class:`~repro.experiments.store.ExperimentStore`; with ``None`` the
    sweep runs serially in-process, bit-identical to the historical
    hand-written loops.
    """
    return STUDIES.run(name, request, orchestrator=orchestrator)
