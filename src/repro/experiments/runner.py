"""Core experiment machinery: config → simulation → result.

This module holds the reusable primitives every study builds on:
``prepare_environment`` (dataset → partition → clients),
``build_simulation`` (config + algorithm → engine with the right execution
plan), ``run_single`` / ``run_comparison`` (one run / several algorithms on
identical data), and ``rounds_summary``.

The per-table/figure orchestration that used to live here as thirteen
``run_*_study`` functions is now declared against the
:class:`~repro.experiments.registry.StudyRegistry` in
:mod:`repro.experiments.studies`; ``run_study("table3", request)`` executes
any of them generically, routing each study's sweep points through the
:class:`~repro.experiments.orchestrator.SweepOrchestrator` (serially by
default, in parallel worker processes with ``jobs=N``, resumably against
an :class:`~repro.experiments.store.ExperimentStore`).

``run_single`` is the orchestrator's unit of execution: one (config,
algorithm) pair, deterministic from the config seed alone.  That is what
makes the spec decomposition safe — ``run_comparison``'s shared-data loop
and N independent ``run_single`` calls produce bit-identical results, so
a sweep computes the same bytes serially, in parallel, or resumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.algorithms import build_algorithm
from repro.algorithms.base import FederatedAlgorithm
from repro.datasets.base import TrainTestSplit
from repro.datasets.registry import load_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.configs import AlgorithmSpec, ExperimentConfig
from repro.federated.async_engine import AsyncFederatedSimulation
from repro.federated.client import ClientState, build_clients
from repro.federated.engine import FederatedSimulation, SimulationResult
from repro.federated.heterogeneity import FixedEpochs, UniformRandomEpochs
from repro.federated.plans import HierarchicalPlan, SemiSyncPlan
from repro.federated.sampler import UniformFractionSampler
from repro.metrics.rounds_to_target import format_rounds, rounds_to_target
from repro.metrics.speedup import reduction_vs_best_baseline, speedup_vs_reference
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import build_model
from repro.partition import build_partitioner, compute_partition_stats
from repro.partition.stats import PartitionStats
from repro.systems import (
    FaultInjector,
    Transport,
    build_codec,
    build_executor,
    build_network,
)
from repro.systems.adversaries import (
    DefendedAlgorithm,
    build_adversary,
    build_defense,
)
from repro.utils.rng import RngFactory

#: Algorithms that, per the paper's protocol, tolerate variable local work
#: (the uniform 1..E epoch draw); the others always run exactly E epochs.
_VARIABLE_WORK_ALGORITHMS = {"fedadmm", "fedprox", "fedpd"}


# --------------------------------------------------------------------------- #
# Building blocks
# --------------------------------------------------------------------------- #
def prepare_environment(
    config: ExperimentConfig,
) -> tuple[TrainTestSplit, list[ClientState], PartitionStats]:
    """Load the dataset, partition it, and build client states."""
    split = load_dataset(
        config.dataset,
        n_train=config.n_train,
        n_test=config.n_test,
        rng=config.seed,
    )
    partitioner = build_partitioner(config.partition, **config.partition_kwargs)
    partition = partitioner.partition(split.train, config.num_clients, rng=config.seed)
    clients = build_clients(split.train, partition)
    stats = compute_partition_stats(partition, split.train)
    return split, clients, stats


def _work_policy(config: ExperimentConfig, algorithm_name: str):
    if config.system_heterogeneity and algorithm_name in _VARIABLE_WORK_ALGORITHMS:
        return UniformRandomEpochs(max_epochs=config.local_epochs)
    return FixedEpochs(config.local_epochs)


def build_simulation(
    config: ExperimentConfig,
    algorithm: FederatedAlgorithm | AlgorithmSpec,
    clients: list[ClientState] | None = None,
    split: TrainTestSplit | None = None,
    executor=None,
) -> FederatedSimulation:
    """Construct a simulation from a config, with the configured plan.

    ``config.mode`` selects the execution plan: ``"sync"`` (lock-step),
    ``"semisync"`` (deadline-bounded rounds), or ``"async"`` (event-driven
    buffered aggregation).  ``clients``/``split`` may be passed in so that
    several algorithms are compared on identical data; when omitted they
    are regenerated from the config (deterministically, from its seed).
    ``executor`` overrides ``config.executor`` with a ready-made
    :class:`~repro.systems.executor.ClientExecutor` instance — the serve
    layer uses this to hand local updates to remote worker processes while
    everything else (sampling, systems model, transport) stays identical.
    """
    if isinstance(algorithm, AlgorithmSpec):
        algorithm = build_algorithm(algorithm.name, **algorithm.kwargs)
    if config.defense is not None:
        # The wrapper screens every cohort with the robust transform before
        # delegating to the inner algorithm's own aggregation; local
        # training is untouched.
        algorithm = DefendedAlgorithm(algorithm, build_defense(config.defense))
    if clients is None or split is None:
        split, clients, _ = prepare_environment(config)

    # Every algorithm starts from the same random initialisation: the model
    # seed depends only on the experiment seed.
    model_rng = RngFactory(config.seed).make("model-init")
    model = build_model(config.model, rng=model_rng, **config.model_kwargs)

    transport = (
        Transport(build_codec(config.codec, **config.codec_kwargs))
        if config.codec is not None
        else None
    )
    network = build_network(config.network) if config.network is not None else None
    faults = (
        FaultInjector(dropout_rate=config.dropout, deadline_s=config.deadline_s)
        if config.dropout > 0 or config.deadline_s is not None
        else None
    )
    adversary = (
        build_adversary(config.adversary, fraction=config.adversary_fraction)
        if config.adversary is not None
        else None
    )

    common = dict(
        algorithm=algorithm,
        model=model,
        clients=clients,
        test_dataset=split.test,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(config.client_fraction),
        local_work=_work_policy(config, algorithm.name),
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
        seed=config.seed,
        eval_every=config.eval_every,
        transport=transport,
        network=network,
        faults=faults,
        adversary=adversary,
        executor=executor
        if executor is not None
        else build_executor(
            config.executor,
            max_workers=config.max_workers,
            backend=config.backend,
        ),
    )
    if config.mode == "async":
        # buffer_size=None defers to the plan's default: the synchronous
        # cohort, so each aggregation consumes the same number of uploads.
        return AsyncFederatedSimulation(
            buffer_size=config.buffer_size,
            max_concurrency=config.max_concurrency,
            staleness=config.staleness,
            staleness_exponent=config.staleness_exponent,
            **common,
        )
    if config.mode == "semisync":
        if common["network"] is None:
            from repro.systems.network import HomogeneousNetwork

            common["network"] = HomogeneousNetwork()
        return FederatedSimulation(
            plan=SemiSyncPlan(
                round_deadline_s=config.round_deadline_s,
                staleness=config.staleness,
                staleness_exponent=config.staleness_exponent,
            ),
            **common,
        )
    if config.plan == "hierarchical":
        return FederatedSimulation(
            plan=HierarchicalPlan(num_shards=config.num_shards), **common
        )
    return FederatedSimulation(**common)


def run_single(
    config: ExperimentConfig,
    algorithm: FederatedAlgorithm | AlgorithmSpec,
    stop_at_target: bool = True,
) -> SimulationResult:
    """Run one algorithm under one configuration."""
    simulation = build_simulation(config, algorithm)
    return simulation.run(
        config.num_rounds,
        target_accuracy=config.target_accuracy,
        stop_at_target=stop_at_target,
    )


# --------------------------------------------------------------------------- #
# Comparisons (Table III core machinery, reused by most studies)
# --------------------------------------------------------------------------- #
@dataclass
class ComparisonResult:
    """Results of several algorithms under one configuration."""

    config: ExperimentConfig
    results: dict[str, SimulationResult] = field(default_factory=dict)
    partition_stats: PartitionStats | None = None

    def rounds(self, label: str) -> int | None:
        """Rounds to target for one algorithm label, or ``None``."""
        return self.results[label].rounds_to_target

    def rounds_table(self) -> dict[str, int | None]:
        """Label -> rounds-to-target mapping."""
        return {label: res.rounds_to_target for label, res in self.results.items()}

    def speedups_vs(self, reference_label: str) -> dict[str, float | None]:
        """Speedup of every algorithm relative to ``reference_label``."""
        reference = self.rounds(reference_label)
        return {
            label: speedup_vs_reference(res.rounds_to_target, reference)
            for label, res in self.results.items()
        }

    def reduction_of(self, method_label: str) -> float | None:
        """Round reduction of ``method_label`` over its best competitor."""
        baselines = {
            label: res.rounds_to_target
            for label, res in self.results.items()
            if label != method_label
        }
        return reduction_vs_best_baseline(self.rounds(method_label), baselines)


def run_comparison(
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
    stop_at_target: bool = True,
) -> ComparisonResult:
    """Run several algorithms on identical data and initialisation."""
    if not algorithms:
        raise ConfigurationError("run_comparison needs at least one algorithm")
    split, clients_template, stats = prepare_environment(config)
    outcome = ComparisonResult(config=config, partition_stats=stats)
    for spec in algorithms:
        # Fresh client states per algorithm (persistent variables must not leak
        # between methods), but identical datasets/partition.
        clients = [
            ClientState(client_id=c.client_id, dataset=c.dataset)
            for c in clients_template
        ]
        simulation = build_simulation(config, spec, clients=clients, split=split)
        outcome.results[spec.label()] = simulation.run(
            config.num_rounds,
            target_accuracy=config.target_accuracy,
            stop_at_target=stop_at_target,
        )
    return outcome


# --------------------------------------------------------------------------- #
# Convenience extraction
# --------------------------------------------------------------------------- #
def rounds_summary(
    comparison: ComparisonResult,
) -> dict[str, dict[str, Any]]:
    """Per-algorithm summary: rounds, formatted rounds, speedup vs FedSGD."""
    fedsgd_label = next(
        (label for label in comparison.results if label.startswith("fedsgd")), None
    )
    summary: dict[str, dict[str, Any]] = {}
    for label, result in comparison.results.items():
        metric = rounds_to_target(
            result.history,
            comparison.config.target_accuracy,
            budget=comparison.config.num_rounds,
        )
        speedup = (
            None
            if fedsgd_label is None
            else speedup_vs_reference(
                metric.rounds, comparison.rounds(fedsgd_label)
            )
        )
        summary[label] = {
            "rounds": metric.rounds,
            "formatted": format_rounds(metric),
            "speedup_vs_fedsgd": speedup,
            "final_accuracy": result.history.final_accuracy(),
            "best_accuracy": result.history.best_accuracy(),
        }
    return summary
