"""Experiment runner: build a simulation from a config and regenerate results.

``run_single`` turns an :class:`ExperimentConfig` plus an
:class:`AlgorithmSpec` into a finished :class:`SimulationResult`; the
``run_*`` study functions orchestrate the sweeps behind each table and
figure of the paper's evaluation and return plain data structures that the
benchmarks print and the tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.algorithms import build_algorithm
from repro.algorithms.base import FederatedAlgorithm
from repro.core.rho import PiecewiseRho
from repro.core.stepsize import PiecewiseStepSize
from repro.datasets.base import TrainTestSplit
from repro.datasets.registry import load_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.configs import AlgorithmSpec, ExperimentConfig
from repro.federated.async_engine import AsyncFederatedSimulation
from repro.federated.client import ClientState, build_clients
from repro.federated.engine import FederatedSimulation, SimulationResult
from repro.federated.heterogeneity import FixedEpochs, UniformRandomEpochs
from repro.federated.sampler import UniformFractionSampler
from repro.metrics.rounds_to_target import RoundsToTarget, format_rounds, rounds_to_target
from repro.metrics.speedup import reduction_vs_best_baseline, speedup_vs_reference
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import build_model
from repro.partition import build_partitioner, compute_partition_stats
from repro.partition.stats import PartitionStats
from repro.systems import (
    FaultInjector,
    Transport,
    build_codec,
    build_executor,
    build_network,
)
from repro.utils.rng import RngFactory

#: Algorithms that, per the paper's protocol, tolerate variable local work
#: (the uniform 1..E epoch draw); the others always run exactly E epochs.
_VARIABLE_WORK_ALGORITHMS = {"fedadmm", "fedprox", "fedpd"}


# --------------------------------------------------------------------------- #
# Building blocks
# --------------------------------------------------------------------------- #
def prepare_environment(
    config: ExperimentConfig,
) -> tuple[TrainTestSplit, list[ClientState], PartitionStats]:
    """Load the dataset, partition it, and build client states."""
    split = load_dataset(
        config.dataset,
        n_train=config.n_train,
        n_test=config.n_test,
        rng=config.seed,
    )
    partitioner = build_partitioner(config.partition, **config.partition_kwargs)
    partition = partitioner.partition(split.train, config.num_clients, rng=config.seed)
    clients = build_clients(split.train, partition)
    stats = compute_partition_stats(partition, split.train)
    return split, clients, stats


def _work_policy(config: ExperimentConfig, algorithm_name: str):
    if config.system_heterogeneity and algorithm_name in _VARIABLE_WORK_ALGORITHMS:
        return UniformRandomEpochs(max_epochs=config.local_epochs)
    return FixedEpochs(config.local_epochs)


def build_simulation(
    config: ExperimentConfig,
    algorithm: FederatedAlgorithm | AlgorithmSpec,
    clients: list[ClientState] | None = None,
    split: TrainTestSplit | None = None,
) -> FederatedSimulation:
    """Construct a :class:`FederatedSimulation` from a config and algorithm.

    ``clients``/``split`` may be passed in so that several algorithms are
    compared on identical data; when omitted they are regenerated from the
    config (deterministically, from its seed).
    """
    if isinstance(algorithm, AlgorithmSpec):
        algorithm = build_algorithm(algorithm.name, **algorithm.kwargs)
    if clients is None or split is None:
        split, clients, _ = prepare_environment(config)

    # Every algorithm starts from the same random initialisation: the model
    # seed depends only on the experiment seed.
    model_rng = RngFactory(config.seed).make("model-init")
    model = build_model(config.model, rng=model_rng, **config.model_kwargs)

    transport = (
        Transport(build_codec(config.codec, **config.codec_kwargs))
        if config.codec is not None
        else None
    )
    network = build_network(config.network) if config.network is not None else None
    faults = (
        FaultInjector(dropout_rate=config.dropout, deadline_s=config.deadline_s)
        if config.dropout > 0 or config.deadline_s is not None
        else None
    )

    common = dict(
        algorithm=algorithm,
        model=model,
        clients=clients,
        test_dataset=split.test,
        loss=CrossEntropyLoss(),
        sampler=UniformFractionSampler(config.client_fraction),
        local_work=_work_policy(config, algorithm.name),
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
        seed=config.seed,
        eval_every=config.eval_every,
        transport=transport,
        network=network,
        faults=faults,
        executor=build_executor(config.executor, max_workers=config.max_workers),
    )
    if config.async_mode:
        # buffer_size=None defers to the engine's default: the synchronous
        # cohort, so each aggregation consumes the same number of uploads.
        return AsyncFederatedSimulation(
            buffer_size=config.buffer_size,
            max_concurrency=config.max_concurrency,
            staleness=config.staleness,
            staleness_exponent=config.staleness_exponent,
            **common,
        )
    return FederatedSimulation(**common)


def run_single(
    config: ExperimentConfig,
    algorithm: FederatedAlgorithm | AlgorithmSpec,
    stop_at_target: bool = True,
) -> SimulationResult:
    """Run one algorithm under one configuration."""
    simulation = build_simulation(config, algorithm)
    return simulation.run(
        config.num_rounds,
        target_accuracy=config.target_accuracy,
        stop_at_target=stop_at_target,
    )


# --------------------------------------------------------------------------- #
# Comparisons (Table III core machinery, reused by most figures)
# --------------------------------------------------------------------------- #
@dataclass
class ComparisonResult:
    """Results of several algorithms under one configuration."""

    config: ExperimentConfig
    results: dict[str, SimulationResult] = field(default_factory=dict)
    partition_stats: PartitionStats | None = None

    def rounds(self, label: str) -> int | None:
        """Rounds to target for one algorithm label, or ``None``."""
        return self.results[label].rounds_to_target

    def rounds_table(self) -> dict[str, int | None]:
        """Label -> rounds-to-target mapping."""
        return {label: res.rounds_to_target for label, res in self.results.items()}

    def speedups_vs(self, reference_label: str) -> dict[str, float | None]:
        """Speedup of every algorithm relative to ``reference_label``."""
        reference = self.rounds(reference_label)
        return {
            label: speedup_vs_reference(res.rounds_to_target, reference)
            for label, res in self.results.items()
        }

    def reduction_of(self, method_label: str) -> float | None:
        """Round reduction of ``method_label`` over its best competitor."""
        baselines = {
            label: res.rounds_to_target
            for label, res in self.results.items()
            if label != method_label
        }
        return reduction_vs_best_baseline(self.rounds(method_label), baselines)


def run_comparison(
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
    stop_at_target: bool = True,
) -> ComparisonResult:
    """Run several algorithms on identical data and initialisation."""
    if not algorithms:
        raise ConfigurationError("run_comparison needs at least one algorithm")
    split, clients_template, stats = prepare_environment(config)
    outcome = ComparisonResult(config=config, partition_stats=stats)
    for spec in algorithms:
        # Fresh client states per algorithm (persistent variables must not leak
        # between methods), but identical datasets/partition.
        clients = [
            ClientState(client_id=c.client_id, dataset=c.dataset)
            for c in clients_template
        ]
        simulation = build_simulation(config, spec, clients=clients, split=split)
        outcome.results[spec.label()] = simulation.run(
            config.num_rounds,
            target_accuracy=config.target_accuracy,
            stop_at_target=stop_at_target,
        )
    return outcome


def run_rounds_to_target_table(
    configs: dict[str, ExperimentConfig],
    algorithms: Sequence[AlgorithmSpec],
) -> dict[str, ComparisonResult]:
    """Table III: one comparison per column (dataset x population x distribution)."""
    return {
        column: run_comparison(config, algorithms) for column, config in configs.items()
    }


# --------------------------------------------------------------------------- #
# Figure-specific studies
# --------------------------------------------------------------------------- #
def run_scale_sweep(
    base_config: ExperimentConfig,
    populations: Sequence[int],
    algorithms: Sequence[AlgorithmSpec],
) -> dict[int, ComparisonResult]:
    """Figs. 3-4: repeat the comparison at several client populations.

    Hyperparameters stay fixed across populations, exactly as in the paper's
    protocol (tuned once at the smallest population, then reused).
    """
    sweeps: dict[int, ComparisonResult] = {}
    for population in populations:
        config = base_config.with_overrides(
            num_clients=population,
            name=f"{base_config.name}-m{population}",
        )
        sweeps[population] = run_comparison(config, algorithms)
    return sweeps


def run_heterogeneity_comparison(
    config_iid: ExperimentConfig,
    config_non_iid: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
) -> dict[str, ComparisonResult]:
    """Fig. 5: the same comparison under IID and non-IID distributions."""
    return {
        "iid": run_comparison(config_iid, algorithms),
        "non_iid": run_comparison(config_non_iid, algorithms),
    }


def run_server_stepsize_study(
    config: ExperimentConfig,
    etas: Sequence[float] = (0.5, 1.0, 1.5),
    switch_round: int | None = None,
    switch_value: float = 0.5,
    rho: float = 0.01,
) -> dict[str, SimulationResult]:
    """Fig. 6: FedADMM under different server step sizes η.

    If ``switch_round`` is given an additional run decreases η to
    ``switch_value`` at that round (the paper's mid-run adjustment).
    """
    results: dict[str, SimulationResult] = {}
    for eta in etas:
        spec_label = f"eta={eta}"
        algorithm = build_algorithm("fedadmm", rho=rho, server_step_size=eta)
        results[spec_label] = run_single(config, algorithm, stop_at_target=False)
    if switch_round is not None:
        policy = PiecewiseStepSize(values=[1.0, switch_value], boundaries=[switch_round])
        algorithm = build_algorithm("fedadmm", rho=rho, server_step_size=policy)
        results[f"eta=1.0->{switch_value}@{switch_round}"] = run_single(
            config, algorithm, stop_at_target=False
        )
    return results


def run_local_epochs_study(
    config: ExperimentConfig,
    epoch_counts: Sequence[int] = (1, 5, 10),
    rho: float = 0.01,
) -> dict[int, SimulationResult]:
    """Table IV / Fig. 7: rounds to target for FedADMM at several E values."""
    results: dict[int, SimulationResult] = {}
    for epochs in epoch_counts:
        run_config = config.with_overrides(
            local_epochs=epochs, name=f"{config.name}-E{epochs}"
        )
        algorithm = build_algorithm("fedadmm", rho=rho)
        results[epochs] = run_single(run_config, algorithm, stop_at_target=True)
    return results


def run_local_init_study(
    config: ExperimentConfig,
    etas: Sequence[float] = (1.0, 0.5),
    rho: float = 0.01,
) -> dict[str, SimulationResult]:
    """Fig. 8: warm start (init I, from w_i) vs restart (init II, from θ)."""
    results: dict[str, SimulationResult] = {}
    for eta in etas:
        for warm_start, label in ((True, "I-warm"), (False, "II-restart")):
            algorithm = build_algorithm(
                "fedadmm", rho=rho, server_step_size=eta, warm_start=warm_start
            )
            results[f"{label}-eta={eta}"] = run_single(
                config, algorithm, stop_at_target=False
            )
    return results


def run_rho_sensitivity_table(
    configs: dict[str, ExperimentConfig],
    prox_rhos: Sequence[float] = (0.01, 0.1, 1.0),
    admm_rho: float = 0.01,
) -> dict[str, ComparisonResult]:
    """Table V: FedProx across ρ values vs FedADMM at fixed ρ."""
    algorithms = [AlgorithmSpec("fedadmm", {"rho": admm_rho})]
    algorithms.extend(AlgorithmSpec("fedprox", {"rho": rho}) for rho in prox_rhos)
    return {
        column: run_comparison(config, algorithms) for column, config in configs.items()
    }


def run_rho_schedule_study(
    config: ExperimentConfig,
    constant_rhos: Sequence[float] = (0.01, 0.1),
    switch_round: int | None = 10,
    switch_values: tuple[float, float] = (0.01, 0.1),
) -> dict[str, SimulationResult]:
    """Fig. 9: constant vs dynamically increased ρ for FedADMM."""
    results: dict[str, SimulationResult] = {}
    for rho in constant_rhos:
        algorithm = build_algorithm("fedadmm", rho=rho)
        results[f"rho={rho}"] = run_single(config, algorithm, stop_at_target=False)
    if switch_round is not None:
        schedule = PiecewiseRho(values=list(switch_values), boundaries=[switch_round])
        algorithm = build_algorithm("fedadmm", rho=schedule)
        label = f"rho={switch_values[0]}->{switch_values[1]}@{switch_round}"
        results[label] = run_single(config, algorithm, stop_at_target=False)
    return results


def run_systems_study(
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
    dropout_rates: Sequence[float] = (0.0, 0.2, 0.4),
) -> dict[float, ComparisonResult]:
    """System-heterogeneity study: the comparison across client dropout rates.

    Every other systems knob (codec, network model, executor) is taken from
    ``config``; runs do not stop at the target so that final accuracies are
    comparable across rates.  This is the scenario behind the paper's
    robustness claim: FedADMM should degrade more gracefully than
    FedAvg/SCAFFOLD as participation gets less reliable.
    """
    results: dict[float, ComparisonResult] = {}
    for rate in dropout_rates:
        run_config = config.with_overrides(
            dropout=rate, name=f"{config.name}-dropout{rate}"
        )
        results[rate] = run_comparison(run_config, algorithms, stop_at_target=False)
    return results


def run_async_study(
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
    stop_at_target: bool = True,
) -> dict[str, ComparisonResult]:
    """Sync vs async time-to-target under the same heterogeneity profile.

    Every algorithm runs twice on identical data, model initialisation, and
    network model: once with the lock-step synchronous engine and once with
    the event-driven asynchronous engine (same per-aggregation upload count
    — the async buffer defaults to the sync cohort size).  The interesting
    comparison is ``history.seconds_to_accuracy(target)``: under a
    heavy-tailed straggler profile the async engine stops paying for the
    slowest client of every round.
    """
    if not config.async_mode:
        raise ConfigurationError(
            "run_async_study expects a config with async_mode=True "
            "(see async_config)"
        )
    sync_config = config.with_overrides(
        async_mode=False, name=f"{config.name}-sync"
    )
    async_config_ = config.with_overrides(name=f"{config.name}-async")
    return {
        "sync": run_comparison(sync_config, algorithms, stop_at_target=stop_at_target),
        "async": run_comparison(
            async_config_, algorithms, stop_at_target=stop_at_target
        ),
    }


def run_imbalanced_study(
    config: ExperimentConfig,
    algorithms: Sequence[AlgorithmSpec],
) -> ComparisonResult:
    """Table VI / Fig. 10: the imbalanced-volume setting."""
    if config.partition != "imbalanced":
        raise ConfigurationError(
            "run_imbalanced_study expects a config using the 'imbalanced' partition"
        )
    return run_comparison(config, algorithms, stop_at_target=False)


# --------------------------------------------------------------------------- #
# Convenience extraction
# --------------------------------------------------------------------------- #
def rounds_summary(
    comparison: ComparisonResult,
) -> dict[str, dict[str, Any]]:
    """Per-algorithm summary: rounds, formatted rounds, speedup vs FedSGD."""
    fedsgd_label = next(
        (label for label in comparison.results if label.startswith("fedsgd")), None
    )
    summary: dict[str, dict[str, Any]] = {}
    for label, result in comparison.results.items():
        metric = rounds_to_target(
            result.history,
            comparison.config.target_accuracy,
            budget=comparison.config.num_rounds,
        )
        speedup = (
            None
            if fedsgd_label is None
            else speedup_vs_reference(
                metric.rounds, comparison.rounds(fedsgd_label)
            )
        )
        summary[label] = {
            "rounds": metric.rounds,
            "formatted": format_rounds(metric),
            "speedup_vs_fedsgd": speedup,
            "final_accuracy": result.history.final_accuracy(),
            "best_accuracy": result.history.best_accuracy(),
        }
    return summary
