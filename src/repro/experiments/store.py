"""Persistent, content-addressed experiment store.

Every sweep point (a :class:`~repro.experiments.orchestrator.RunSpec`) is
addressed by a stable hash of its *content*: the full
:class:`~repro.experiments.configs.ExperimentConfig` (which includes the
seed), the algorithm spec, the stop-at-target flag, and the code-relevant
package version.  Two invocations that would train the same thing hash to
the same key, so a store can answer "has this exact run already been
done?" across process boundaries and interruptions — the enabling layer
for resumable (``--resume``) and parallel (``--jobs``) sweeps.

On disk a store is one directory::

    <root>/runs.jsonl        append-only JSON-lines status transitions
    <root>/results/<key>.json  one atomically-written result payload per run

The index is an append-only log: each line records one
:class:`RunStatus` transition (``pending`` → ``running`` → ``done`` /
``failed``) and replaying the log last-wins yields the current state.
Appends are single ``write`` calls of one newline-terminated line, and
:meth:`ExperimentStore.records` discards a torn final line, so a crash
mid-append can never corrupt earlier records.  Result payloads are
written to a temporary file and ``os.replace``-d into place *before* the
``done`` line is appended; a crash between the two leaves the run
``running`` and it is simply re-executed on resume.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.federated.evaluation import Evaluation
from repro.federated.history import RoundRecord, TrainingHistory
from repro.federated.messages import CommunicationLedger
from repro.utils.serialization import dumps_strict, to_jsonable
from repro.version import __version__

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.orchestrator import RunSpec
    from repro.federated.engine import SimulationResult


class RunStatus(str, Enum):
    """Lifecycle of one stored run."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


#: Statuses whose specs must be (re-)executed when a sweep is resumed:
#: everything except ``done`` — a ``running`` record with no result means
#: the worker died mid-run, and ``failed`` runs deserve another attempt.
RERUN_STATUSES = (RunStatus.PENDING, RunStatus.RUNNING, RunStatus.FAILED)


@dataclass
class RunRecord:
    """Current state of one run, replayed from the JSON-lines index."""

    key: str
    status: RunStatus
    study: str = ""
    spec_key: tuple = ()
    config_name: str = ""
    algorithm: str = ""
    seed: int = 0
    updated_at: float = 0.0
    duration_s: float | None = None
    error: str | None = None

    def to_line(self) -> str:
        """Serialise as one newline-terminated JSON line."""
        payload = asdict(self)
        payload["status"] = self.status.value
        payload["spec_key"] = list(self.spec_key)
        return dumps_strict(payload, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: dict) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in payload.items() if k in known}
        kwargs["status"] = RunStatus(kwargs["status"])
        kwargs["spec_key"] = tuple(kwargs.get("spec_key", ()))
        return cls(**kwargs)


# --------------------------------------------------------------------------- #
# Result (de)serialisation
# --------------------------------------------------------------------------- #
def result_to_payload(result: "SimulationResult") -> dict:
    """Serialise a :class:`SimulationResult` into a JSON-safe payload.

    The payload round-trips bit-identically: JSON floats are written with
    ``repr`` precision, which reconstructs the exact IEEE-754 double, so a
    history loaded from the store compares equal to the freshly computed
    one (the property the resume tests pin).
    """
    return {
        "algorithm": result.algorithm,
        "history": {
            "algorithm": result.history.algorithm,
            "records": [to_jsonable(rec) for rec in result.history.records],
        },
        "final_params": result.final_params.tolist(),
        "ledger": to_jsonable(result.ledger),
        "final_evaluation": to_jsonable(result.final_evaluation),
        "rounds_run": result.rounds_run,
        "target_accuracy": result.target_accuracy,
        "rounds_to_target": result.rounds_to_target,
        "metadata": to_jsonable(result.metadata),
    }


def payload_to_result(payload: dict) -> "SimulationResult":
    """Reconstruct a :class:`SimulationResult` written by :func:`result_to_payload`."""
    from repro.federated.engine import SimulationResult

    records = [
        RoundRecord(**{**rec, "dropped_clients": tuple(rec.get("dropped_clients", ()))})
        for rec in payload["history"]["records"]
    ]
    history = TrainingHistory(
        algorithm=payload["history"]["algorithm"], records=records
    )
    evaluation = (
        Evaluation(**payload["final_evaluation"])
        if payload["final_evaluation"] is not None
        else None
    )
    return SimulationResult(
        algorithm=payload["algorithm"],
        history=history,
        final_params=np.asarray(payload["final_params"], dtype=np.float64),
        ledger=CommunicationLedger(**payload["ledger"]),
        final_evaluation=evaluation,
        rounds_run=payload["rounds_run"],
        target_accuracy=payload["target_accuracy"],
        rounds_to_target=payload["rounds_to_target"],
        metadata=payload.get("metadata", {}),
    )


def _canonical(obj: object) -> object:
    """Like :func:`to_jsonable`, but address-free for arbitrary objects.

    ``to_jsonable`` falls back to ``str`` for unknown objects, which for
    plain classes is the default repr — including the instance's memory
    address.  Content keys must be stable across processes, so objects
    with instance state (e.g. the ``PiecewiseRho``/``PiecewiseStepSize``
    policies carried in algorithm kwargs) serialise as their qualified
    type plus their recursively-canonicalised ``__dict__`` instead.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: _canonical(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): _canonical(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        # Raw set iteration order varies with per-process hash
        # randomisation; sort by canonical JSON form to keep keys stable.
        return sorted(
            (_canonical(item) for item in obj),
            key=lambda item: json.dumps(item, sort_keys=True),
        )
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return {
            "__type__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "state": _canonical(state),
        }
    return str(obj)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader can never observe a partial file: either the old content (or
    absence) or the complete new content.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ExperimentStore:
    """Content-addressed run store backing resumable, parallel sweeps."""

    INDEX_NAME = "runs.jsonl"
    RESULTS_DIR = "results"

    def __init__(self, root: str | Path, version: str = __version__):
        self.root = Path(root)
        self.version = version
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def key_for(self, spec: "RunSpec") -> str:
        """Stable content hash of one sweep point.

        Covers the full config (seed included), the algorithm name and
        constructor kwargs, the stop-at-target flag, and the package
        version, so a code release invalidates cached results.
        """
        content = {
            "config": _canonical(spec.config),
            "algorithm": {
                "name": spec.algorithm.name,
                "kwargs": _canonical(spec.algorithm.kwargs),
            },
            "stop_at_target": spec.stop_at_target,
            "version": self.version,
        }
        canonical = json.dumps(content, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]

    # ------------------------------------------------------------------ #
    # Index
    # ------------------------------------------------------------------ #
    @property
    def index_path(self) -> Path:
        return self.root / self.INDEX_NAME

    def _result_path(self, key: str) -> Path:
        return self.root / self.RESULTS_DIR / f"{key}.json"

    def _append(self, record: RunRecord) -> None:
        # One write() of one newline-terminated line: a crash mid-append
        # leaves at most a torn *final* line, which records() discards.
        # If a previous crash left such a torn line, terminate it first so
        # the new record starts on its own line instead of extending it.
        needs_newline = False
        if self.index_path.exists():
            with self.index_path.open("rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(-1, os.SEEK_END)
                    needs_newline = handle.read(1) != b"\n"
        with self.index_path.open("a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(record.to_line())
            handle.flush()

    def records(self) -> dict[str, RunRecord]:
        """Replay the index log; the last record per key wins."""
        state: dict[str, RunRecord] = {}
        if not self.index_path.exists():
            return state
        text = self.index_path.read_text(encoding="utf-8")
        lines = text.split("\n")
        if lines and lines[-1]:
            # No trailing newline: the final append was interrupted.
            lines = lines[:-1]
        for line in lines:
            if not line:
                continue
            try:
                payload = json.loads(line)
                record = RunRecord.from_payload(payload)
            except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                continue  # skip corrupt lines rather than losing the store
            state[record.key] = record
        return state

    def record(self, key: str) -> RunRecord | None:
        """The current state of one run, or ``None`` if never seen."""
        return self.records().get(key)

    def mark(
        self,
        spec: "RunSpec",
        status: RunStatus,
        duration_s: float | None = None,
        error: str | None = None,
    ) -> RunRecord:
        """Append one status transition for ``spec`` and return the record."""
        record = RunRecord(
            key=self.key_for(spec),
            status=status,
            study=spec.study,
            spec_key=spec.key,
            config_name=spec.config.name,
            algorithm=spec.algorithm.label(),
            seed=spec.config.seed,
            updated_at=time.time(),
            duration_s=duration_s,
            error=error,
        )
        self._append(record)
        return record

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def save_result(
        self, spec: "RunSpec", result: "SimulationResult", duration_s: float | None = None
    ) -> RunRecord:
        """Persist one finished run: payload first (atomic), then the ``done`` line."""
        key = self.key_for(spec)
        payload = result_to_payload(result)
        _atomic_write_text(
            self._result_path(key), dumps_strict(payload, sort_keys=True)
        )
        return self.mark(spec, RunStatus.DONE, duration_s=duration_s)

    def has_result(self, key: str, records: dict[str, RunRecord] | None = None) -> bool:
        """Whether ``key`` is ``done`` *and* its payload file exists.

        Pass a ``records()`` snapshot when checking many keys so the
        JSON-lines index is replayed once, not once per key.
        """
        record = (records if records is not None else self.records()).get(key)
        return (
            record is not None
            and record.status is RunStatus.DONE
            and self._result_path(key).exists()
        )

    def load_result(self, key: str) -> "SimulationResult":
        """Load one stored result; unknown keys raise ``ConfigurationError``."""
        path = self._result_path(key)
        if not path.exists():
            raise ConfigurationError(f"no stored result for run {key!r}")
        return payload_to_result(json.loads(path.read_text(encoding="utf-8")))

    # ------------------------------------------------------------------ #
    # Maintenance (the `repro runs` subcommand)
    # ------------------------------------------------------------------ #
    def clean(self, statuses: Iterable[RunStatus] | None = None) -> list[str]:
        """Drop runs in ``statuses`` (default: every non-``done`` status).

        The index is compacted (rewritten atomically with one line per
        surviving run) and the dropped runs' payload files are removed.
        Returns the dropped keys.
        """
        drop = set(statuses) if statuses is not None else set(RERUN_STATUSES)
        state = self.records()
        dropped = [key for key, rec in state.items() if rec.status in drop]
        survivors = [rec for key, rec in state.items() if key not in set(dropped)]
        _atomic_write_text(
            self.index_path, "".join(rec.to_line() for rec in survivors)
        )
        for key in dropped:
            try:
                self._result_path(key).unlink()
            except FileNotFoundError:
                pass
        return dropped

    def summary(self) -> dict[str, int]:
        """Run counts per status value (for listings and tests)."""
        counts: dict[str, int] = {status.value: 0 for status in RunStatus}
        for record in self.records().values():
            counts[record.status.value] += 1
        return counts
