"""Experiment configurations and per-table/figure presets.

The ``scale`` argument of every preset selects between

* ``"bench"`` — small synthetic datasets, tens of clients, MLP models; the
  whole suite regenerates on a laptop CPU in minutes.  This is what the
  ``benchmarks/`` directory runs.
* ``"paper"`` — the paper's client populations (100–1000), sample counts, and
  CNN architectures; provided for completeness, expect long runtimes.

Absolute round counts at ``"bench"`` scale differ from the paper (smaller
models, synthetic data); the *orderings and ratios* between algorithms are
what the reproduction checks, as recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm name plus constructor keyword arguments."""

    name: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        """Short label for table rows (e.g. ``fedprox(rho=0.1)``)."""
        if not self.kwargs:
            return self.name
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.kwargs.items()))
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one federated training run (minus the algorithm)."""

    name: str
    dataset: str = "blobs"
    n_train: int = 2000
    n_test: int = 500
    model: str = "mlp"
    model_kwargs: dict[str, Any] = field(default_factory=dict)
    num_clients: int = 30
    partition: str = "iid"
    partition_kwargs: dict[str, Any] = field(default_factory=dict)
    client_fraction: float = 0.1
    local_epochs: int = 5
    system_heterogeneity: bool = True
    batch_size: int | None = 20
    learning_rate: float = 0.1
    num_rounds: int = 40
    target_accuracy: float = 0.80
    eval_every: int = 1
    seed: int = 0
    # Client-systems layer (see repro.systems); the defaults reproduce the
    # idealised synchronous engine with no compression, faults, or clock.
    codec: str | None = None
    codec_kwargs: dict[str, Any] = field(default_factory=dict)
    dropout: float = 0.0
    deadline_s: float | None = None
    network: str | None = None
    executor: str = "serial"
    max_workers: int | None = None
    # Array backend for the vectorized executor's stacked kernels (see
    # repro.nn.backend).  None defers to the REPRO_BACKEND environment
    # variable and then the "numpy" default; per-task executors always run
    # the serial NumPy model code and ignore this field.
    backend: str | None = None
    # Execution plan (see repro.federated.plans): "sync" is the bit-identical
    # lock-step round loop, "semisync" the deadline-bounded plan with
    # FedBuff-weighted late arrivals, "async" the event-driven buffered plan.
    # ``async_mode`` is the legacy boolean spelling of mode="async"; the two
    # fields are kept consistent automatically.
    mode: str = "sync"
    async_mode: bool = False
    buffer_size: int | None = None
    max_concurrency: int | None = None
    staleness: str = "polynomial"
    staleness_exponent: float = 0.5
    # Semi-synchronous plan only: the per-round aggregation deadline in
    # simulated seconds (None derives it from the network model's median
    # predicted client duration).
    round_deadline_s: float | None = None
    # Topology of the synchronous round: "flat" is the single-server
    # SyncPlan, "hierarchical" shards the population across num_shards
    # edge aggregators with streaming constant-memory aggregation
    # (repro.federated.plans.HierarchicalPlan).  Only meaningful with
    # mode="sync"; a 1-shard hierarchy is bit-identical to flat.
    plan: str = "flat"
    num_shards: int = 1
    # Adversarial federation (see repro.systems.adversaries): a behaviour
    # from ADVERSARY_REGISTRY exhibited by round(adversary_fraction * m)
    # clients, and an optional robust-aggregation defense from
    # DEFENSE_REGISTRY wrapped around the algorithm's server-side
    # combination.  Defenses rank one synchronous cohort's updates against
    # each other, so defense requires mode="sync".
    adversary: str | None = None
    adversary_fraction: float = 0.0
    defense: str | None = None

    def __post_init__(self) -> None:
        # Normalise the two plan spellings: async_mode=True is shorthand for
        # mode="async", and mode is always the authoritative field.
        if self.async_mode and self.mode == "sync":
            object.__setattr__(self, "mode", "async")
        object.__setattr__(self, "async_mode", self.mode == "async")
        if self.mode not in ("sync", "semisync", "async"):
            raise ConfigurationError(
                f"mode must be one of ('sync', 'semisync', 'async'), "
                f"got {self.mode!r}"
            )
        if self.round_deadline_s is not None and self.round_deadline_s <= 0:
            raise ConfigurationError("round_deadline_s must be positive")
        if self.num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if not 0 < self.client_fraction <= 1:
            raise ConfigurationError("client_fraction must lie in (0, 1]")
        if self.local_epochs <= 0:
            raise ConfigurationError("local_epochs must be positive")
        if self.num_rounds <= 0:
            raise ConfigurationError("num_rounds must be positive")
        if not 0 < self.target_accuracy <= 1:
            raise ConfigurationError("target_accuracy must lie in (0, 1]")
        if not 0 <= self.dropout <= 1:
            raise ConfigurationError("dropout must lie in [0, 1]")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ConfigurationError("deadline_s must be non-negative")
        if self.buffer_size is not None and self.buffer_size <= 0:
            raise ConfigurationError("buffer_size must be positive")
        if self.max_concurrency is not None and self.max_concurrency <= 0:
            raise ConfigurationError("max_concurrency must be positive")
        if self.staleness_exponent < 0:
            raise ConfigurationError("staleness_exponent must be non-negative")
        if self.plan not in ("flat", "hierarchical"):
            raise ConfigurationError(
                f"plan must be 'flat' or 'hierarchical', got {self.plan!r}"
            )
        if self.num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if self.num_shards > self.num_clients:
            raise ConfigurationError(
                f"num_shards {self.num_shards} exceeds num_clients "
                f"{self.num_clients}"
            )
        if self.plan == "hierarchical" and self.mode != "sync":
            raise ConfigurationError(
                "the hierarchical plan is a sharded synchronous round; "
                f"it cannot be combined with mode={self.mode!r}"
            )
        if not 0 <= self.adversary_fraction <= 1:
            raise ConfigurationError("adversary_fraction must lie in [0, 1]")
        if self.adversary is not None or self.defense is not None:
            from repro.systems.adversaries import (
                ADVERSARY_REGISTRY,
                DEFENSE_REGISTRY,
            )

            if self.adversary is not None:
                if self.adversary not in ADVERSARY_REGISTRY:
                    raise ConfigurationError(
                        f"unknown adversary {self.adversary!r}; "
                        f"available: {sorted(ADVERSARY_REGISTRY)}"
                    )
                if self.adversary_fraction <= 0:
                    raise ConfigurationError(
                        "an adversary needs adversary_fraction > 0 "
                        "(the fraction of clients that misbehave)"
                    )
            if self.defense is not None:
                if self.defense not in DEFENSE_REGISTRY:
                    raise ConfigurationError(
                        f"unknown defense {self.defense!r}; "
                        f"available: {sorted(DEFENSE_REGISTRY)}"
                    )
                if self.mode != "sync":
                    raise ConfigurationError(
                        "robust aggregation defenses rank one synchronous "
                        "cohort's updates against each other; they cannot "
                        f"be combined with mode={self.mode!r}"
                    )
        if self.backend is not None:
            from repro.nn.backend import BACKEND_REGISTRY

            if self.backend not in BACKEND_REGISTRY:
                raise ConfigurationError(
                    f"unknown backend {self.backend!r}; "
                    f"available: {sorted(BACKEND_REGISTRY)}"
                )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given fields replaced.

        Overriding either plan spelling (``mode`` or the legacy
        ``async_mode``) updates the other, so ``async_mode=False`` really
        does return a synchronous config.
        """
        if "async_mode" in kwargs and "mode" not in kwargs:
            kwargs["mode"] = "async" if kwargs["async_mode"] else "sync"
        if "mode" in kwargs and "async_mode" not in kwargs:
            kwargs["async_mode"] = kwargs["mode"] == "async"
        return replace(self, **kwargs)


def default_algorithms(
    admm_rho: float = 0.01,
    prox_rho: float = 0.1,
    include_fedsgd: bool = True,
    include_scaffold: bool = True,
) -> list[AlgorithmSpec]:
    """The paper's comparison set: FedSGD, FedADMM, FedAvg, FedProx, SCAFFOLD."""
    specs: list[AlgorithmSpec] = []
    if include_fedsgd:
        specs.append(AlgorithmSpec("fedsgd", {"server_learning_rate": 0.5}))
    specs.append(AlgorithmSpec("fedadmm", {"rho": admm_rho}))
    specs.append(AlgorithmSpec("fedavg", {}))
    specs.append(AlgorithmSpec("fedprox", {"rho": prox_rho}))
    if include_scaffold:
        specs.append(AlgorithmSpec("scaffold", {}))
    return specs


# --------------------------------------------------------------------------- #
# Scale handling
# --------------------------------------------------------------------------- #
_SCALES = ("bench", "paper")

# Target accuracies on the synthetic stand-ins at bench scale.  They play the
# role of the paper's 97% / 80% / 45% targets: reachable by every algorithm
# within the round budget, but only after meaningful training.
_BENCH_TARGETS = {"mnist": 0.85, "fmnist": 0.75, "cifar10": 0.65, "blobs": 0.80}
_PAPER_TARGETS = {"mnist": 0.97, "fmnist": 0.80, "cifar10": 0.45, "blobs": 0.90}


def _check_scale(scale: str) -> None:
    if scale not in _SCALES:
        raise ConfigurationError(f"scale must be one of {_SCALES}, got {scale!r}")


def _model_for(dataset: str, scale: str) -> tuple[str, dict[str, Any]]:
    if scale == "paper":
        if dataset in ("mnist", "fmnist"):
            return "cnn1", {}
        if dataset == "cifar10":
            return "cnn2", {}
        return "mlp", {"input_dim": 32, "hidden_dims": (64,)}
    # Bench scale: small MLPs on flattened synthetic images.
    dims = {"mnist": 784, "fmnist": 784, "cifar10": 3072, "blobs": 32}
    return "mlp", {"input_dim": dims[dataset], "hidden_dims": (32,)}


def _base_config(
    name: str,
    dataset: str,
    num_clients: int,
    non_iid: bool,
    scale: str,
    seed: int,
) -> ExperimentConfig:
    _check_scale(scale)
    model, model_kwargs = _model_for(dataset, scale)
    if scale == "paper":
        n_train = 60000 if dataset in ("mnist", "fmnist") else 50000
        n_test = 10000
        num_rounds = 100
        target = _PAPER_TARGETS[dataset]
    else:
        n_train = 2000
        n_test = 600
        num_rounds = 40
        target = _BENCH_TARGETS[dataset]
    return ExperimentConfig(
        name=name,
        dataset=dataset,
        n_train=n_train,
        n_test=n_test,
        model=model,
        model_kwargs=model_kwargs,
        num_clients=num_clients,
        partition="shard" if non_iid else "iid",
        partition_kwargs={"shards_per_client": 2} if non_iid else {},
        client_fraction=0.1,
        local_epochs=5,
        system_heterogeneity=True,
        batch_size=20,
        learning_rate=0.1,
        num_rounds=num_rounds,
        target_accuracy=target,
        eval_every=1,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Per-table / per-figure presets
# --------------------------------------------------------------------------- #
def table3_config(
    dataset: str = "mnist",
    num_clients: int | None = None,
    non_iid: bool = False,
    scale: str = "bench",
    seed: int = 0,
) -> ExperimentConfig:
    """Table III: rounds to target accuracy per dataset / population / distribution.

    At paper scale the populations are 100 (MNIST) and 1,000 (all datasets)
    with E=5, B=200 (100 clients) or E=20, B=10 / full-batch (1,000 clients);
    at bench scale the populations default to 30 (stand-in for 100) and the
    local work is E=5, B=20.
    """
    _check_scale(scale)
    if num_clients is None:
        num_clients = 100 if scale == "paper" else 30
    config = _base_config(
        name=f"table3-{dataset}-{num_clients}clients-{'noniid' if non_iid else 'iid'}",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )
    if scale == "paper" and num_clients >= 1000:
        config = config.with_overrides(
            local_epochs=20, batch_size=10 if non_iid else None
        )
    return config


def fig3_config(
    dataset: str = "fmnist",
    num_clients: int = 30,
    non_iid: bool = True,
    scale: str = "bench",
    seed: int = 0,
) -> ExperimentConfig:
    """Fig. 3 / Fig. 4: convergence paths and rounds-to-target vs population."""
    config = _base_config(
        name=f"fig3-{dataset}-{num_clients}clients",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )
    return config


def fig5_config(
    dataset: str = "fmnist",
    non_iid: bool = True,
    scale: str = "bench",
    seed: int = 0,
) -> ExperimentConfig:
    """Fig. 5: adaptability to heterogeneous data (m=200, E=10, B=50 in the paper)."""
    _check_scale(scale)
    num_clients = 200 if scale == "paper" else 40
    config = _base_config(
        name=f"fig5-{dataset}-{'noniid' if non_iid else 'iid'}",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )
    return config.with_overrides(
        local_epochs=10 if scale == "paper" else 5,
        batch_size=50 if scale == "paper" else 20,
    )


def fig6_config(
    dataset: str = "mnist", non_iid: bool = True, scale: str = "bench", seed: int = 0
) -> ExperimentConfig:
    """Fig. 6: server step-size study in a 100-client system (30 at bench scale)."""
    _check_scale(scale)
    num_clients = 100 if scale == "paper" else 30
    return _base_config(
        name=f"fig6-{dataset}-{'noniid' if non_iid else 'iid'}",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )


def table4_config(
    dataset: str = "mnist", non_iid: bool = False, scale: str = "bench", seed: int = 0
) -> ExperimentConfig:
    """Table IV / Fig. 7: effect of the local epoch number E on FedADMM."""
    _check_scale(scale)
    num_clients = 100 if scale == "paper" else 30
    config = _base_config(
        name=f"table4-{dataset}-{'noniid' if non_iid else 'iid'}",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )
    # The local-work study disables the uniform 1..E draw so the realised
    # epochs equal E exactly.
    return config.with_overrides(system_heterogeneity=False)


def fig8_config(
    dataset: str = "mnist", non_iid: bool = True, scale: str = "bench", seed: int = 0
) -> ExperimentConfig:
    """Fig. 8: local-training initialisation (warm start vs restart from θ)."""
    return fig6_config(dataset=dataset, non_iid=non_iid, scale=scale, seed=seed)


def table5_config(
    dataset: str = "fmnist",
    num_clients: int | None = None,
    non_iid: bool = True,
    scale: str = "bench",
    seed: int = 0,
) -> ExperimentConfig:
    """Table V: ρ sensitivity of FedProx vs fixed-ρ FedADMM (200/500 clients)."""
    _check_scale(scale)
    if num_clients is None:
        num_clients = 200 if scale == "paper" else 40
    return _base_config(
        name=f"table5-{dataset}-{num_clients}clients",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )


def fig9_config(
    dataset: str = "mnist", non_iid: bool = True, scale: str = "bench", seed: int = 0
) -> ExperimentConfig:
    """Fig. 9: dynamic ρ adaptation for FedADMM."""
    return fig6_config(dataset=dataset, non_iid=non_iid, scale=scale, seed=seed)


def table6_config(
    dataset: str = "fmnist", scale: str = "bench", seed: int = 0
) -> ExperimentConfig:
    """Table VI / Fig. 10: imbalanced data volumes across 200 clients (40 at bench).

    The imbalanced partitioner assigns group-indexed shard counts; E=10, B=50
    in the paper.
    """
    _check_scale(scale)
    num_clients = 200 if scale == "paper" else 40
    num_groups = 100 if scale == "paper" else 20
    config = _base_config(
        name=f"table6-{dataset}-imbalanced",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=False,
        scale=scale,
        seed=seed,
    )
    return config.with_overrides(
        partition="imbalanced",
        partition_kwargs={"num_groups": num_groups},
        local_epochs=10 if scale == "paper" else 5,
        batch_size=50 if scale == "paper" else 20,
    )


def async_config(
    dataset: str = "blobs",
    non_iid: bool = True,
    scale: str = "bench",
    seed: int = 0,
    buffer_size: int | None = None,
    max_concurrency: int | None = None,
    staleness: str = "polynomial",
) -> ExperimentConfig:
    """Asynchronous-federation scenario: sync vs async under stragglers.

    A heavy-tailed log-normal network makes synchronous rounds
    straggler-dominated; the async engine's buffered aggregation should
    reach the same accuracy in less simulated wall-clock.  ``buffer_size``
    defaults to the synchronous per-round cohort (fraction x population) so
    each aggregation consumes the same number of uploads in both modes.
    """
    _check_scale(scale)
    num_clients = 100 if scale == "paper" else 30
    config = _base_config(
        name=f"async-{dataset}-{'noniid' if non_iid else 'iid'}",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )
    return config.with_overrides(
        client_fraction=0.2,
        network="lognormal",
        async_mode=True,
        buffer_size=buffer_size,
        max_concurrency=max_concurrency,
        staleness=staleness,
    )


def semisync_config(
    dataset: str = "blobs",
    non_iid: bool = True,
    scale: str = "bench",
    seed: int = 0,
    round_deadline_s: float | None = None,
    staleness: str = "polynomial",
) -> ExperimentConfig:
    """Semi-synchronous scenario: deadline-bounded rounds under stragglers.

    The same heavy-tailed log-normal network as :func:`async_config`, but
    driven by the deadline-bounded semi-synchronous plan: each round closes
    at its deadline (derived from the median predicted client duration when
    ``round_deadline_s`` is None) and stragglers deliver into later rounds
    as staleness-weighted late arrivals.
    """
    _check_scale(scale)
    num_clients = 100 if scale == "paper" else 30
    config = _base_config(
        name=f"semisync-{dataset}-{'noniid' if non_iid else 'iid'}",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )
    return config.with_overrides(
        client_fraction=0.2,
        network="lognormal",
        mode="semisync",
        round_deadline_s=round_deadline_s,
        staleness=staleness,
    )


def serve_config(
    dataset: str = "blobs",
    non_iid: bool = True,
    scale: str = "bench",
    seed: int = 0,
    codec: str | None = "float16",
    network: str | None = "lognormal",
    mode: str = "sync",
) -> ExperimentConfig:
    """Networked-serving scenario for the :mod:`repro.serve` runtime.

    A small population that a couple of worker processes can serve at
    interactive speed, with a heavy-tailed log-normal network so the load
    generator replays realistic straggler traffic.  ``codec="float16"``
    by default because its real packed bytes equal the ledger's nominal
    wire bytes exactly (see :func:`repro.serve.protocol.payload_wire_bytes`).
    """
    _check_scale(scale)
    num_clients = 100 if scale == "paper" else 12
    config = _base_config(
        name=f"serve-{dataset}-{'noniid' if non_iid else 'iid'}",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )
    return config.with_overrides(
        n_train=600 if scale == "bench" else config.n_train,
        n_test=200 if scale == "bench" else config.n_test,
        client_fraction=0.25,
        local_epochs=2,
        num_rounds=10,
        codec=codec,
        network=network,
        mode=mode,
    )


def robustness_config(
    dataset: str = "blobs",
    non_iid: bool = True,
    scale: str = "bench",
    seed: int = 0,
    adversary: str | None = "sign_flip",
    adversary_fraction: float = 0.2,
    defense: str | None = None,
) -> ExperimentConfig:
    """Adversarial-federation scenario: byzantine/poisoning clients.

    The regime behind the paper's hostile-participation robustness claims:
    a fifth of the population misbehaves (sign-flipped updates by default)
    and the server optionally screens each cohort with a robust
    aggregation defense.  A larger cohort than the paper presets
    (``client_fraction=0.4``) so the honest majority is statistically
    meaningful per round.
    """
    _check_scale(scale)
    num_clients = 100 if scale == "paper" else 30
    config = _base_config(
        name=f"robustness-{dataset}-{'noniid' if non_iid else 'iid'}",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )
    return config.with_overrides(
        client_fraction=0.4,
        adversary=adversary,
        adversary_fraction=adversary_fraction,
        defense=defense,
    )


def systems_config(
    dataset: str = "blobs",
    non_iid: bool = True,
    scale: str = "bench",
    seed: int = 0,
    codec: str | None = "topk",
    dropout: float = 0.2,
    executor: str = "serial",
) -> ExperimentConfig:
    """System-heterogeneity scenario: compression, faults, and a clock.

    Not a table from the paper but the regime its robustness claims target:
    clients drop mid-round, uploads are compressed on the wire, and a
    heavy-tailed network model yields straggler-dominated round times.
    """
    _check_scale(scale)
    num_clients = 100 if scale == "paper" else 30
    config = _base_config(
        name=f"systems-{dataset}-{'noniid' if non_iid else 'iid'}",
        dataset=dataset,
        num_clients=num_clients,
        non_iid=non_iid,
        scale=scale,
        seed=seed,
    )
    return config.with_overrides(
        client_fraction=0.2,
        codec=codec,
        dropout=dropout,
        network="lognormal",
        executor=executor,
    )
