"""Plain-text table formatting for regenerated results."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.experiments.runner import ComparisonResult, rounds_summary


def format_table(
    rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_render_cell(row.get(col)) for col in columns] for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(cells[i]) for cells in rendered_rows))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(width) for col, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))
        for cells in rendered_rows
    )
    return "\n".join([header, separator, body])


def _render_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def comparison_to_rows(
    comparison: ComparisonResult, column_name: str = "setting"
) -> list[dict[str, Any]]:
    """Turn one :class:`ComparisonResult` into Table III-style rows."""
    summary = rounds_summary(comparison)
    rows: list[dict[str, Any]] = []
    for label, info in summary.items():
        rows.append(
            {
                column_name: comparison.config.name,
                "method": label,
                "rounds": info["formatted"],
                "speedup_vs_fedsgd": info["speedup_vs_fedsgd"],
                "final_accuracy": info["final_accuracy"],
            }
        )
    return rows


def table3_text(comparisons: Mapping[str, ComparisonResult]) -> str:
    """Render a full Table III-style report across several settings."""
    rows: list[dict[str, Any]] = []
    for column, comparison in comparisons.items():
        for row in comparison_to_rows(comparison, column_name="setting"):
            row["setting"] = column
            rows.append(row)
        admm_label = next(
            (label for label in comparison.results if label.startswith("fedadmm")), None
        )
        if admm_label is not None:
            reduction = comparison.reduction_of(admm_label)
            rows.append(
                {
                    "setting": column,
                    "method": "reduction(FedADMM vs best baseline)",
                    "rounds": "-",
                    "speedup_vs_fedsgd": None,
                    "final_accuracy": reduction,
                }
            )
    return format_table(
        rows, columns=["setting", "method", "rounds", "speedup_vs_fedsgd", "final_accuracy"]
    )
