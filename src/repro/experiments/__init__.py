"""Experiment harness: presets, core runner, and the declarative study registry.

Each table and figure of the paper's Section V maps to

* a configuration preset in :mod:`repro.experiments.configs`,
* a sweep function plus a registered :class:`Study` in
  :mod:`repro.experiments.studies` (the :data:`STUDIES` registry), and
* a benchmark under ``benchmarks/`` that calls the sweep and prints the
  regenerated rows/series.

:mod:`repro.experiments.runner` holds the reusable core
(``build_simulation``, ``run_single``, ``run_comparison``); the CLI
exposes every registry entry as a subcommand automatically.
:mod:`repro.experiments.orchestrator` executes a study's sweep points
serially or across a process pool, and
:mod:`repro.experiments.store` persists every finished run in a
content-addressed store so sweeps are resumable (``--jobs``,
``--resume``, ``--store-dir``).

Presets come in two scales: ``"bench"`` (laptop-CPU friendly, used by the
benchmark suite) and ``"paper"`` (the paper's population sizes and sample
counts, for users with more time/hardware).
"""

from repro.experiments.configs import (
    ExperimentConfig,
    AlgorithmSpec,
    default_algorithms,
    table3_config,
    table4_config,
    table5_config,
    table6_config,
    fig3_config,
    fig5_config,
    fig6_config,
    fig8_config,
    fig9_config,
    async_config,
    semisync_config,
    systems_config,
)
from repro.experiments.runner import (
    ComparisonResult,
    build_simulation,
    prepare_environment,
    rounds_summary,
    run_comparison,
    run_single,
)
from repro.experiments.orchestrator import (
    RunSpec,
    SpecEvent,
    SweepOrchestrator,
    execute_spec,
)
from repro.experiments.registry import (
    Study,
    StudyFlag,
    StudyRegistry,
    StudyRequest,
)
from repro.experiments.store import (
    ExperimentStore,
    RunRecord,
    RunStatus,
)
from repro.experiments.studies import (
    STUDIES,
    collect_comparison,
    comparison_specs,
    filter_plan_compatible,
    run_async_study,
    run_heterogeneity_comparison,
    run_imbalanced_study,
    run_local_epochs_study,
    run_local_init_study,
    run_rho_schedule_study,
    run_rho_sensitivity_table,
    run_rounds_to_target_table,
    run_scale_sweep,
    run_semisync_study,
    run_server_stepsize_study,
    run_study,
    run_systems_study,
)
from repro.experiments.tables import format_table, comparison_to_rows
from repro.experiments.figures import accuracy_series, series_to_text

__all__ = [
    # Presets
    "ExperimentConfig",
    "AlgorithmSpec",
    "default_algorithms",
    "table3_config",
    "table4_config",
    "table5_config",
    "table6_config",
    "fig3_config",
    "fig5_config",
    "fig6_config",
    "fig8_config",
    "fig9_config",
    "async_config",
    "semisync_config",
    "systems_config",
    # Core runner
    "ComparisonResult",
    "build_simulation",
    "prepare_environment",
    "rounds_summary",
    "run_comparison",
    "run_single",
    # Registry
    "Study",
    "StudyFlag",
    "StudyRegistry",
    "StudyRequest",
    "STUDIES",
    "run_study",
    "filter_plan_compatible",
    # Orchestration + persistent store
    "RunSpec",
    "SpecEvent",
    "SweepOrchestrator",
    "execute_spec",
    "ExperimentStore",
    "RunRecord",
    "RunStatus",
    "comparison_specs",
    "collect_comparison",
    # Sweeps
    "run_rounds_to_target_table",
    "run_scale_sweep",
    "run_heterogeneity_comparison",
    "run_server_stepsize_study",
    "run_local_epochs_study",
    "run_local_init_study",
    "run_rho_sensitivity_table",
    "run_rho_schedule_study",
    "run_systems_study",
    "run_async_study",
    "run_semisync_study",
    "run_imbalanced_study",
    # Formatting
    "format_table",
    "comparison_to_rows",
    "accuracy_series",
    "series_to_text",
]
