"""Experiment harness: presets, runner, and formatting for every table/figure.

Each table and figure of the paper's Section V maps to

* a configuration preset in :mod:`repro.experiments.configs`,
* a runner entry point in :mod:`repro.experiments.runner`, and
* a benchmark under ``benchmarks/`` that calls the runner and prints the
  regenerated rows/series.

Presets come in two scales: ``"bench"`` (laptop-CPU friendly, used by the
benchmark suite) and ``"paper"`` (the paper's population sizes and sample
counts, for users with more time/hardware).
"""

from repro.experiments.configs import (
    ExperimentConfig,
    AlgorithmSpec,
    default_algorithms,
    table3_config,
    table4_config,
    table5_config,
    table6_config,
    fig3_config,
    fig5_config,
    fig6_config,
    fig8_config,
    fig9_config,
)
from repro.experiments.runner import (
    run_single,
    run_comparison,
    run_rounds_to_target_table,
    run_scale_sweep,
    run_heterogeneity_comparison,
    run_server_stepsize_study,
    run_local_epochs_study,
    run_local_init_study,
    run_rho_sensitivity_table,
    run_rho_schedule_study,
    run_imbalanced_study,
    ComparisonResult,
)
from repro.experiments.tables import format_table, comparison_to_rows
from repro.experiments.figures import accuracy_series, series_to_text

__all__ = [
    "ExperimentConfig",
    "AlgorithmSpec",
    "default_algorithms",
    "table3_config",
    "table4_config",
    "table5_config",
    "table6_config",
    "fig3_config",
    "fig5_config",
    "fig6_config",
    "fig8_config",
    "fig9_config",
    "run_single",
    "run_comparison",
    "run_rounds_to_target_table",
    "run_scale_sweep",
    "run_heterogeneity_comparison",
    "run_server_stepsize_study",
    "run_local_epochs_study",
    "run_local_init_study",
    "run_rho_sensitivity_table",
    "run_rho_schedule_study",
    "run_imbalanced_study",
    "ComparisonResult",
    "format_table",
    "comparison_to_rows",
    "accuracy_series",
    "series_to_text",
]
