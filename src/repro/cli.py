"""Command-line interface for regenerating the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli --list
    python -m repro.cli table3 --dataset mnist --non-iid --rounds 25
    python -m repro.cli fig6 --rounds 30 --output fig6.json
    python -m repro.cli table5 --dataset fmnist --clients 40

Each experiment name corresponds to one of the paper's tables/figures (the
same mapping as the DESIGN.md per-experiment index and the ``benchmarks/``
suite); the command prints the regenerated rows/series and can optionally
save the raw numbers as JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

import numpy as np

from repro.experiments.configs import (
    AlgorithmSpec,
    async_config,
    default_algorithms,
    fig3_config,
    fig5_config,
    fig6_config,
    fig8_config,
    fig9_config,
    systems_config,
    table3_config,
    table4_config,
    table5_config,
    table6_config,
)
from repro.experiments.figures import accuracy_series, series_to_text
from repro.experiments.runner import (
    run_async_study,
    run_comparison,
    run_heterogeneity_comparison,
    run_imbalanced_study,
    run_local_epochs_study,
    run_local_init_study,
    run_rho_schedule_study,
    run_rho_sensitivity_table,
    run_scale_sweep,
    run_server_stepsize_study,
    run_systems_study,
    rounds_summary,
)
from repro.federated.async_engine import STALENESS_REGISTRY
from repro.systems import CODEC_REGISTRY, EXECUTOR_REGISTRY, NETWORK_REGISTRY
from repro.experiments.tables import format_table, table3_text
from repro.utils.serialization import save_json, to_jsonable

EXPERIMENTS = {
    "table1": "Table I   — round-complexity predictors (closed form, no training)",
    "table3": "Table III — rounds to target accuracy for all algorithms",
    "table4": "Table IV / Fig. 7 — FedADMM vs local epoch count E",
    "table5": "Table V   — rho sensitivity of FedProx vs fixed-rho FedADMM",
    "table6": "Table VI / Fig. 10 — imbalanced data volumes",
    "fig3": "Fig. 3/4  — scaling the client population",
    "fig5": "Fig. 5    — IID vs non-IID adaptability",
    "fig6": "Fig. 6    — server step size study",
    "fig8": "Fig. 8    — local initialisation (warm start vs restart)",
    "fig9": "Fig. 9    — dynamic rho schedule",
    "systems": "Systems   — dropout/straggler robustness under the client-systems model",
    "async": "Async     — sync vs event-driven async time-to-target under stragglers",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the FedADMM paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?", choices=sorted(EXPERIMENTS),
                        help="which table/figure to regenerate")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument("--dataset", default="mnist",
                        choices=["mnist", "fmnist", "cifar10", "blobs"])
    parser.add_argument("--non-iid", action="store_true",
                        help="use the two-shards-per-client non-IID partition")
    parser.add_argument("--scale", default="bench", choices=["bench", "paper"],
                        help="bench = laptop-friendly presets, paper = full scale")
    parser.add_argument("--clients", type=int, default=None,
                        help="override the preset client population")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the preset round budget")
    parser.add_argument("--rho", type=float, default=0.3,
                        help="FedADMM proximal coefficient (bench default 0.3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None,
                        help="optional path to save the raw results as JSON")
    systems = parser.add_argument_group(
        "client-systems layer (see repro.systems)")
    systems.add_argument("--codec", default=None, choices=sorted(CODEC_REGISTRY),
                         help="compress uploads with this codec and account "
                              "post-compression wire bytes")
    systems.add_argument("--dropout", type=float, default=None,
                         help="per-client per-round mid-round crash probability")
    systems.add_argument("--deadline", type=float, default=None,
                         help="round deadline in simulated seconds; slower "
                              "clients are dropped as stragglers")
    systems.add_argument("--network", default=None, choices=sorted(NETWORK_REGISTRY),
                         help="per-client bandwidth/latency/compute model "
                              "producing simulated round durations")
    systems.add_argument("--executor", default=None, choices=sorted(EXECUTOR_REGISTRY),
                         help="how local updates run: serial, thread, or process pool")
    async_group = parser.add_argument_group(
        "asynchronous engine (see repro.federated.async_engine)")
    async_group.add_argument("--async", dest="async_mode", action="store_true",
                             help="use the event-driven asynchronous engine "
                                  "instead of lock-step synchronous rounds")
    async_group.add_argument("--buffer-size", type=int, default=None,
                             help="updates aggregated per model version "
                                  "(default: the sync per-round cohort size)")
    async_group.add_argument("--max-concurrency", type=int, default=None,
                             help="clients training at any simulated instant "
                                  "(default: twice the buffer size)")
    async_group.add_argument("--staleness", default=None,
                             choices=sorted(STALENESS_REGISTRY),
                             help="staleness weighting for buffered updates "
                                  "(default: polynomial decay)")
    return parser


def _apply_overrides(config, args):
    overrides: dict[str, Any] = {"seed": args.seed}
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.clients is not None:
        overrides["num_clients"] = args.clients
    if args.codec is not None:
        overrides["codec"] = args.codec
    if args.dropout is not None:
        overrides["dropout"] = args.dropout
    if args.deadline is not None:
        overrides["deadline_s"] = args.deadline
    if args.network is not None:
        overrides["network"] = args.network
    if args.executor is not None:
        overrides["executor"] = args.executor
    if args.async_mode:
        overrides["async_mode"] = True
    if args.buffer_size is not None:
        overrides["buffer_size"] = args.buffer_size
    if args.max_concurrency is not None:
        overrides["max_concurrency"] = args.max_concurrency
    if args.staleness is not None:
        overrides["staleness"] = args.staleness
    return config.with_overrides(**overrides)


def _run_table1() -> dict:
    from repro.core.convergence import COMPLEXITY_TABLE, round_complexity

    rows = []
    for epsilon in (1e-2, 1e-3, 1e-4):
        for method in COMPLEXITY_TABLE:
            rows.append(
                {
                    "epsilon": epsilon,
                    "method": method,
                    "predicted_rounds": round_complexity(
                        method, epsilon, num_clients=1000, num_selected=100,
                        dissimilarity_b=3.0, gradient_bound_g=3.0,
                    ),
                }
            )
    print(format_table(rows))
    return {"rows": rows}


def _comparison_report(comparison) -> dict:
    print(table3_text({comparison.config.name: comparison}))
    return {
        "config": comparison.config.name,
        "summary": rounds_summary(comparison),
    }


def _series_report(results) -> dict:
    series = {label: accuracy_series(result) for label, result in results.items()}
    print(series_to_text(series, max_points=15))
    return {"series": series}


def _filter_async_compatible(specs: list[AlgorithmSpec], async_mode: bool):
    """Drop algorithms that opt out of async aggregation when --async is on."""
    if not async_mode:
        return specs
    from repro.algorithms import ALGORITHM_REGISTRY

    kept, skipped = [], []
    for spec in specs:
        if ALGORITHM_REGISTRY[spec.name].supports_async:
            kept.append(spec)
        else:
            skipped.append(spec.name)
    if skipped:
        print(f"note: --async skips {', '.join(skipped)} "
              f"(no asynchronous aggregation support)")
    return kept


def run_experiment(name: str, args) -> dict:
    """Run one named experiment and return a JSON-serialisable result summary."""
    admm_rho = args.rho
    if name == "table1":
        return _run_table1()
    if name == "table3":
        config = _apply_overrides(
            table3_config(args.dataset, non_iid=args.non_iid, scale=args.scale,
                          num_clients=args.clients), args)
        return _comparison_report(
            run_comparison(
                config,
                _filter_async_compatible(
                    default_algorithms(admm_rho=admm_rho), args.async_mode
                ),
            )
        )
    if name == "table4":
        config = _apply_overrides(
            table4_config(args.dataset, non_iid=args.non_iid, scale=args.scale), args)
        results = run_local_epochs_study(config, rho=admm_rho)
        rows = [
            {"E": epochs, "rounds_to_target": result.rounds_to_target,
             "final_accuracy": result.history.final_accuracy()}
            for epochs, result in results.items()
        ]
        print(format_table(rows))
        return {"rows": rows}
    if name == "table5":
        config = _apply_overrides(
            table5_config(args.dataset, num_clients=args.clients,
                          non_iid=True, scale=args.scale), args)
        table = run_rho_sensitivity_table({config.name: config}, admm_rho=admm_rho)
        return {
            column: _comparison_report(comparison) for column, comparison in table.items()
        }
    if name == "table6":
        config = _apply_overrides(table6_config(args.dataset, scale=args.scale), args)
        comparison = run_imbalanced_study(
            config,
            _filter_async_compatible(
                [AlgorithmSpec("fedadmm", {"rho": admm_rho}),
                 AlgorithmSpec("fedavg", {}),
                 AlgorithmSpec("fedprox", {"rho": 0.1}),
                 AlgorithmSpec("scaffold", {})],
                args.async_mode,
            ),
        )
        print(format_table([comparison.partition_stats.as_table_row()]))
        return _comparison_report(comparison)
    if name == "fig3":
        base = _apply_overrides(
            fig3_config(args.dataset, non_iid=args.non_iid, scale=args.scale), args)
        populations = [base.num_clients, base.num_clients * 2]
        sweeps = run_scale_sweep(
            base, populations,
            [AlgorithmSpec("fedadmm", {"rho": admm_rho}), AlgorithmSpec("fedavg", {})],
        )
        return {
            str(population): _comparison_report(comparison)
            for population, comparison in sweeps.items()
        }
    if name == "fig5":
        config_iid = _apply_overrides(
            fig5_config(args.dataset, non_iid=False, scale=args.scale), args)
        config_non_iid = _apply_overrides(
            fig5_config(args.dataset, non_iid=True, scale=args.scale), args)
        outcome = run_heterogeneity_comparison(
            config_iid, config_non_iid,
            _filter_async_compatible(
                [AlgorithmSpec("fedadmm", {"rho": admm_rho}),
                 AlgorithmSpec("fedavg", {}),
                 AlgorithmSpec("fedprox", {"rho": 0.1}),
                 AlgorithmSpec("scaffold", {})],
                args.async_mode,
            ),
        )
        return {
            setting: _comparison_report(comparison) for setting, comparison in outcome.items()
        }
    if name == "fig6":
        config = _apply_overrides(
            fig6_config(args.dataset, non_iid=args.non_iid, scale=args.scale), args)
        results = run_server_stepsize_study(
            config, switch_round=config.num_rounds // 2, rho=admm_rho)
        return _series_report(results)
    if name == "fig8":
        config = _apply_overrides(
            fig8_config(args.dataset, non_iid=True, scale=args.scale), args)
        return _series_report(run_local_init_study(config, rho=admm_rho))
    if name == "systems":
        config = _apply_overrides(
            systems_config(args.dataset, non_iid=args.non_iid, scale=args.scale), args)
        studies = run_systems_study(
            config,
            _filter_async_compatible(
                [AlgorithmSpec("fedadmm", {"rho": admm_rho}),
                 AlgorithmSpec("fedavg", {}),
                 AlgorithmSpec("scaffold", {})],
                args.async_mode,
            ),
            dropout_rates=(0.0, config.dropout) if config.dropout > 0 else (0.0,),
        )
        rows = []
        for rate, comparison in studies.items():
            for label, result in comparison.results.items():
                rows.append(
                    {
                        "dropout": rate,
                        "algorithm": label,
                        "final_accuracy": result.history.final_accuracy(),
                        "raw_upload_MB": result.ledger.upload_bytes / 1e6,
                        "wire_upload_MB": result.ledger.upload_wire_bytes / 1e6,
                        "sim_minutes": result.simulated_seconds / 60.0,
                        "clients_dropped": result.history.total_dropped(),
                    }
                )
        print(format_table(rows))
        return {"rows": rows}
    if name == "async":
        # The preset sets async_mode; _apply_overrides threads the --async
        # group flags (buffer size, concurrency, staleness) like any other.
        config = _apply_overrides(
            async_config(args.dataset, non_iid=args.non_iid, scale=args.scale),
            args)
        studies = run_async_study(
            config,
            [AlgorithmSpec("fedadmm", {"rho": admm_rho}), AlgorithmSpec("fedavg", {}),
             AlgorithmSpec("fedprox", {"rho": 0.1})],
            stop_at_target=True,
        )
        rows = []
        for mode, comparison in studies.items():
            for label, result in comparison.results.items():
                seconds = result.history.seconds_to_accuracy(
                    comparison.config.target_accuracy
                )
                rows.append(
                    {
                        "mode": mode,
                        "algorithm": label,
                        "rounds_to_target": result.rounds_to_target,
                        "seconds_to_target": (
                            None if seconds is None else round(seconds, 1)
                        ),
                        "final_accuracy": round(result.history.final_accuracy(), 4),
                        "mean_staleness": round(
                            float(np.nanmean(result.history.stalenesses))
                            if len(result.history)
                            else 0.0,
                            2,
                        ),
                        "max_staleness": result.history.max_staleness(),
                    }
                )
        print(format_table(rows))
        return {"rows": rows}
    if name == "fig9":
        config = _apply_overrides(
            fig9_config(args.dataset, non_iid=True, scale=args.scale), args)
        results = run_rho_schedule_study(
            config, constant_rhos=(admm_rho / 3, admm_rho),
            switch_round=config.num_rounds // 2,
            switch_values=(admm_rho / 3, admm_rho))
        return _series_report(results)
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        print("Available experiments:\n")
        for name, description in sorted(EXPERIMENTS.items()):
            print(f"  {name:8s} {description}")
        return 0
    result = run_experiment(args.experiment, args)
    if args.output:
        path = save_json(to_jsonable(result), args.output)
        print(f"\nSaved raw results to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
