"""Command-line interface for regenerating the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli --list
    python -m repro.cli table3 --dataset mnist --non-iid --rounds 25
    python -m repro.cli fig6 --rounds 30 --etas 0.5 1.0 --output fig6.json
    python -m repro.cli semisync --dataset blobs --clients 8 --rounds 3

Every subcommand is generated from the declarative
:data:`~repro.experiments.studies.STUDIES` registry: one subcommand per
registered study, each carrying the shared flag groups (scale, systems
layer, execution plan) plus the study's own extra flags.  Adding a study
to the registry exposes it here with no CLI edits.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.experiments.registry import StudyRequest
from repro.experiments.studies import STUDIES
from repro.federated.staleness import STALENESS_REGISTRY
from repro.systems import CODEC_REGISTRY, EXECUTOR_REGISTRY, NETWORK_REGISTRY
from repro.utils.serialization import save_json, to_jsonable

#: Name → one-line description of every runnable experiment (registry view).
EXPERIMENTS: dict[str, str] = STUDIES.descriptions()


def _shared_flags() -> argparse.ArgumentParser:
    """The flag groups every study subcommand inherits."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--dataset", default="mnist",
                        choices=["mnist", "fmnist", "cifar10", "blobs"])
    common.add_argument("--non-iid", action="store_true",
                        help="use the two-shards-per-client non-IID partition")
    common.add_argument("--scale", default="bench", choices=["bench", "paper"],
                        help="bench = laptop-friendly presets, paper = full scale")
    common.add_argument("--clients", type=int, default=None,
                        help="override the preset client population")
    common.add_argument("--rounds", type=int, default=None,
                        help="override the preset round budget")
    common.add_argument("--rho", type=float, default=0.3,
                        help="FedADMM proximal coefficient (bench default 0.3)")
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--output", default=None,
                        help="optional path to save the raw results as JSON")
    systems = common.add_argument_group(
        "client-systems layer (see repro.systems)")
    systems.add_argument("--codec", default=None, choices=sorted(CODEC_REGISTRY),
                         help="compress uploads with this codec and account "
                              "post-compression wire bytes")
    systems.add_argument("--dropout", type=float, default=None,
                         help="per-client per-round mid-round crash probability")
    systems.add_argument("--deadline", type=float, default=None, dest="deadline_s",
                         help="fault deadline in simulated seconds; slower "
                              "clients are dropped as stragglers")
    systems.add_argument("--network", default=None, choices=sorted(NETWORK_REGISTRY),
                         help="per-client bandwidth/latency/compute model "
                              "producing simulated round durations")
    systems.add_argument("--executor", default=None, choices=sorted(EXECUTOR_REGISTRY),
                         help="how local updates run: serial, thread, or process pool")
    plan = common.add_argument_group(
        "execution plan (see repro.federated.plans)")
    plan.add_argument("--mode", default=None,
                      choices=["sync", "semisync", "async"],
                      help="round-loop strategy: lock-step sync, "
                           "deadline-bounded semisync, or event-driven async")
    plan.add_argument("--async", dest="async_mode", action="store_true",
                      help="shorthand for --mode async")
    plan.add_argument("--buffer-size", type=int, default=None,
                      help="async: updates aggregated per model version "
                           "(default: the sync per-round cohort size)")
    plan.add_argument("--max-concurrency", type=int, default=None,
                      help="async: clients training at any simulated instant "
                           "(default: twice the buffer size)")
    plan.add_argument("--staleness", default=None,
                      choices=sorted(STALENESS_REGISTRY),
                      help="staleness weighting for buffered updates "
                           "(default: polynomial decay)")
    plan.add_argument("--round-deadline", type=float, default=None,
                      dest="round_deadline_s",
                      help="semisync: per-round aggregation deadline in "
                           "simulated seconds (default: derived from the "
                           "network model's median client duration)")
    return common


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the FedADMM paper's tables and figures.",
    )
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    shared = _shared_flags()
    subparsers = parser.add_subparsers(dest="experiment", metavar="experiment")
    for study in STUDIES:
        sub = subparsers.add_parser(
            study.name, help=study.description, parents=[shared],
            description=study.description,
        )
        for flag in study.flags:
            sub.add_argument(flag.name, **flag.kwargs)
    return parser


def run_experiment(name: str, args: Any) -> dict:
    """Run one named experiment and return a JSON-serialisable result summary."""
    study = STUDIES.get(name)  # unknown names raise ValueError
    request = StudyRequest.from_args(args, option_names=study.option_names())
    return STUDIES.run(name, request)


def _print_listing() -> None:
    print("Available experiments:\n")
    for name, description in sorted(EXPERIMENTS.items()):
        print(f"  {name:8s} {description}")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        _print_listing()
        return 0
    result = run_experiment(args.experiment, args)
    if args.output:
        path = save_json(to_jsonable(result), args.output)
        print(f"\nSaved raw results to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
