"""Command-line interface for regenerating the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli --list
    python -m repro.cli table3 --dataset mnist --non-iid --rounds 25
    python -m repro.cli fig6 --rounds 30 --etas 0.5 1.0 --output fig6.json
    python -m repro.cli semisync --dataset blobs --clients 8 --rounds 3

    # Parallel, resumable sweeps against a persistent run store
    python -m repro.cli table3 --jobs 4 --store-dir runs/
    python -m repro.cli table3 --jobs 4 --store-dir runs/ --resume
    python -m repro.cli runs list --store-dir runs/
    python -m repro.cli runs show <key> --store-dir runs/
    python -m repro.cli runs clean --store-dir runs/

    # The networked runtime (see repro.serve and docs/tutorials/serving.md)
    python -m repro.cli serve --rounds 5 --workers 2
    python -m repro.cli worker http://127.0.0.1:8765
    python -m repro.cli loadtest --budget 10 --workers 4

Every study subcommand is generated from the declarative
:data:`~repro.experiments.studies.STUDIES` registry: one subcommand per
registered study, each carrying the shared flag groups (scale, systems
layer, execution plan, orchestration) plus the study's own extra flags.
Adding a study to the registry exposes it here with no CLI edits.  The
extra ``runs`` subcommand inspects and maintains the persistent
:class:`~repro.experiments.store.ExperimentStore` behind ``--store-dir``
/ ``--resume``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any

from repro.exceptions import ConfigurationError, ProtocolError
from repro.experiments.orchestrator import SpecEvent, SweepOrchestrator
from repro.experiments.registry import StudyRequest
from repro.experiments.store import ExperimentStore, RunStatus
from repro.experiments.studies import STUDIES
from repro.experiments.tables import format_table
from repro.federated.staleness import STALENESS_REGISTRY
from repro.obs import MetricsRegistry, Profiler, Tracer, observe
from repro.nn.backend import BACKEND_REGISTRY
from repro.systems import CODEC_REGISTRY, EXECUTOR_REGISTRY, NETWORK_REGISTRY
from repro.utils.serialization import save_json, to_jsonable

#: Name → one-line description of every runnable experiment (registry view).
EXPERIMENTS: dict[str, str] = STUDIES.descriptions()

#: Where run records land when ``--resume`` is given without ``--store-dir``.
DEFAULT_STORE_DIR = ".repro_runs"


def _shared_flags() -> argparse.ArgumentParser:
    """The flag groups every study subcommand inherits."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--dataset", default="mnist",
                        choices=["mnist", "fmnist", "cifar10", "blobs"])
    common.add_argument("--non-iid", action="store_true",
                        help="use the two-shards-per-client non-IID partition")
    common.add_argument("--scale", default="bench", choices=["bench", "paper"],
                        help="bench = laptop-friendly presets, paper = full scale")
    common.add_argument("--clients", type=int, default=None,
                        help="override the preset client population")
    common.add_argument("--rounds", type=int, default=None,
                        help="override the preset round budget")
    common.add_argument("--rho", type=float, default=0.3,
                        help="FedADMM proximal coefficient (bench default 0.3)")
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--output", default=None,
                        help="optional path to save the raw results as JSON")
    systems = common.add_argument_group(
        "client-systems layer (see repro.systems)")
    systems.add_argument("--codec", default=None, choices=sorted(CODEC_REGISTRY),
                         help="compress uploads with this codec and account "
                              "post-compression wire bytes")
    systems.add_argument("--dropout", type=float, default=None,
                         help="per-client per-round mid-round crash probability")
    systems.add_argument("--deadline", type=float, default=None, dest="deadline_s",
                         help="fault deadline in simulated seconds; slower "
                              "clients are dropped as stragglers")
    systems.add_argument("--network", default=None, choices=sorted(NETWORK_REGISTRY),
                         help="per-client bandwidth/latency/compute model "
                              "producing simulated round durations")
    systems.add_argument("--adversary", default=None,
                         help="adversarial client behaviour "
                              "(sign_flip, gaussian_noise, scale, label_flip); "
                              "see docs/tutorials/robustness.md")
    systems.add_argument("--adversary-fraction", type=float, default=None,
                         dest="adversary_fraction",
                         help="fraction of the population that misbehaves "
                              "(preset default 0.2 on the robustness study)")
    systems.add_argument("--defense", default=None,
                         help="robust aggregation defense "
                              "(median, trimmed_mean, norm_clip); unknown "
                              "names fail fast with exit code 2")
    systems.add_argument("--executor", default=None, choices=sorted(EXECUTOR_REGISTRY),
                         help="how local updates run: serial, thread/process "
                              "pool, or vectorized (stacked-NumPy cohorts)")
    systems.add_argument("--backend", default=None, choices=sorted(BACKEND_REGISTRY),
                         help="array backend for the vectorized executor's "
                              "stacked kernels (default: REPRO_BACKEND env "
                              "var, then numpy)")
    plan = common.add_argument_group(
        "execution plan (see repro.federated.plans)")
    plan.add_argument("--mode", default=None,
                      choices=["sync", "semisync", "async"],
                      help="round-loop strategy: lock-step sync, "
                           "deadline-bounded semisync, or event-driven async")
    plan.add_argument("--async", dest="async_mode", action="store_true",
                      help="shorthand for --mode async")
    plan.add_argument("--plan", default=None, dest="plan",
                      choices=["flat", "hierarchical"],
                      help="sync-round topology: flat single server, or "
                           "hierarchical sharded edge aggregators with "
                           "streaming constant-memory aggregation")
    plan.add_argument("--shards", type=int, default=None, dest="num_shards",
                      help="hierarchical: number of edge aggregator shards "
                           "the population is split across (default 1)")
    plan.add_argument("--buffer-size", type=int, default=None,
                      help="async: updates aggregated per model version "
                           "(default: the sync per-round cohort size)")
    plan.add_argument("--max-concurrency", type=int, default=None,
                      help="async: clients training at any simulated instant "
                           "(default: twice the buffer size)")
    plan.add_argument("--staleness", default=None,
                      choices=sorted(STALENESS_REGISTRY),
                      help="staleness weighting for buffered updates "
                           "(default: polynomial decay)")
    plan.add_argument("--round-deadline", type=float, default=None,
                      dest="round_deadline_s",
                      help="semisync: per-round aggregation deadline in "
                           "simulated seconds (default: derived from the "
                           "network model's median client duration)")
    orchestration = common.add_argument_group(
        "sweep orchestration (see repro.experiments.orchestrator)")
    orchestration.add_argument("--jobs", type=int, default=1,
                               help="run the study's sweep points across N "
                                    "worker processes (default: 1, serial "
                                    "and bit-identical to --jobs N)")
    orchestration.add_argument("--resume", action="store_true",
                               help="skip sweep points already done in the "
                                    "run store; re-run failed/interrupted "
                                    "ones (implies a store)")
    orchestration.add_argument("--store-dir", default=None,
                               help="persist per-run records/results in this "
                                    f"directory (default with --resume: "
                                    f"{DEFAULT_STORE_DIR})")
    orchestration.add_argument("--progress", action="store_true",
                               help="stream per-spec [k/n] progress lines "
                                    "with durations and an ETA, even for "
                                    "plain serial invocations")
    obs = common.add_argument_group(
        "observability (see repro.obs and docs/tutorials/observability.md)")
    obs.add_argument("--trace", default=None, dest="trace_path", metavar="PATH",
                     help="record spans and write a Chrome trace_event JSON "
                          "here (open in chrome://tracing or Perfetto); a "
                          "raw span log lands next to it at PATH.spans.jsonl")
    obs.add_argument("--metrics", default=None, dest="metrics_path",
                     metavar="PATH",
                     help="record runtime counters/gauges/histograms and "
                          "write the JSON snapshot here")
    return common


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the FedADMM paper's tables and figures.",
    )
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    shared = _shared_flags()
    subparsers = parser.add_subparsers(dest="experiment", metavar="experiment")
    for study in STUDIES:
        sub = subparsers.add_parser(
            study.name, help=study.description, parents=[shared],
            description=study.description,
        )
        for flag in study.flags:
            sub.add_argument(flag.name, **flag.kwargs)
    profile = subparsers.add_parser(
        "profile", parents=[shared],
        help="run a study under the profiler and print its hot-spot table",
        description="Run one study with per-phase and per-kernel timing "
                    "enabled, then print where the wall-clock went.",
    )
    profile.add_argument("study", choices=sorted(EXPERIMENTS),
                         help="the study to profile")
    profile.add_argument("--top", type=int, default=None,
                         help="show only the N hottest entries")
    runs = subparsers.add_parser(
        "runs", help="inspect/maintain the persistent run store",
        description="List, show, and clean the run records behind "
                    "--store-dir / --resume.",
    )
    runs.add_argument("action", choices=["list", "show", "clean"])
    runs.add_argument("key", nargs="?", default=None,
                      help="run key (for `runs show`)")
    runs.add_argument("--store-dir", default=DEFAULT_STORE_DIR,
                      help=f"store directory (default: {DEFAULT_STORE_DIR})")
    runs.add_argument("--status", nargs="+", default=None,
                      choices=[status.value for status in RunStatus],
                      help="list: only these statuses; "
                           "clean: drop these statuses "
                           "(default: pending/running/failed)")
    _add_contributions_parser(subparsers)
    _add_serve_parsers(subparsers)
    return parser


def _add_contributions_parser(subparsers) -> None:
    """The `contributions` subcommand (client data valuation)."""
    from repro.algorithms import ALGORITHM_REGISTRY

    contributions = subparsers.add_parser(
        "contributions",
        help="score each client's contribution (leave-one-out / Shapley)",
        description="Value every client's participation by re-running the "
                    "federation on client coalitions: leave-one-out "
                    "deltas or truncated Monte-Carlo Shapley scores. "
                    "Coalition utilities are cached as stored run "
                    "histories under --store-dir, so repeat invocations "
                    "reuse every run already paid for "
                    "(see docs/tutorials/robustness.md).",
    )
    contributions.add_argument("--method", default="loo",
                               choices=["loo", "shapley"])
    contributions.add_argument("--dataset", default="blobs",
                               choices=["mnist", "fmnist", "cifar10", "blobs"])
    contributions.add_argument("--iid", action="store_true",
                               help="use the IID partition "
                                    "(default: non-IID shards)")
    contributions.add_argument("--clients", type=int, default=8,
                               help="population size to value (each "
                                    "coalition is a full run; keep small)")
    contributions.add_argument("--rounds", type=int, default=5,
                               help="rounds per coalition run")
    contributions.add_argument("--algorithm", default="fedavg",
                               choices=sorted(ALGORITHM_REGISTRY))
    contributions.add_argument("--rho", type=float, default=0.3,
                               help="FedADMM proximal coefficient")
    contributions.add_argument("--seed", type=int, default=0)
    contributions.add_argument("--adversary", default=None,
                               help="inject adversarial clients first "
                                    "(they should score near zero)")
    contributions.add_argument("--adversary-fraction", type=float,
                               default=0.2, dest="adversary_fraction")
    contributions.add_argument("--defense", default=None,
                               help="robust aggregation defense for the "
                                    "coalition runs")
    contributions.add_argument("--permutations", type=int, default=10,
                               help="Shapley: sampled permutations")
    contributions.add_argument("--tolerance", type=float, default=0.01,
                               help="Shapley: truncate a permutation walk "
                                    "once the prefix utility is this close "
                                    "to the full-coalition utility")
    contributions.add_argument("--store-dir", default=None,
                               help="cache coalition utilities here "
                                    "(default: in-memory only)")
    contributions.add_argument("--output", default=None,
                               help="optional path to save the report JSON")


def _add_serve_parsers(subparsers) -> None:
    """The networked-runtime subcommands (see repro.serve)."""
    from repro.algorithms import ALGORITHM_REGISTRY

    def add_scenario_flags(sub):
        sub.add_argument("--algorithm", default="fedavg",
                         choices=sorted(ALGORITHM_REGISTRY))
        sub.add_argument("--rho", type=float, default=0.3,
                         help="FedADMM proximal coefficient")
        sub.add_argument("--dataset", default="blobs",
                         choices=["mnist", "fmnist", "cifar10", "blobs"])
        sub.add_argument("--iid", action="store_true",
                         help="use the IID partition (default: non-IID shards)")
        sub.add_argument("--codec", default="float16",
                         choices=sorted(CODEC_REGISTRY) + ["none"],
                         help="upload codec; 'none' ships raw float64")
        sub.add_argument("--mode", default="sync",
                         choices=["sync", "semisync", "async"])
        sub.add_argument("--rounds", type=int, default=None,
                         help="override the scenario's round budget")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--output", default=None,
                         help="optional path to save the result/report JSON")

    serve = subparsers.add_parser(
        "serve", help="run a federation server with optional local workers",
        description="Serve one federated run over loopback/LAN HTTP: the "
                    "composition root drives rounds while worker processes "
                    "pull seeded tasks and push codec-encoded deltas "
                    "(see docs/tutorials/serving.md).",
    )
    add_scenario_flags(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default: an ephemeral free port)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes to spawn locally; 0 means "
                            "workers attach externally via `repro worker`")
    serve.add_argument("--lease-s", type=float, default=30.0,
                       help="task lease; a silent worker's task is "
                            "reclaimed after this many seconds")
    serve.add_argument("--store-dir", default=None,
                       help="checkpoint every round into this run store")
    serve.add_argument("--resume", action="store_true",
                       help="resume from the --store-dir checkpoint")

    worker = subparsers.add_parser(
        "worker", help="attach a worker process to a federation server",
        description="Pull seeded local-update tasks from a running "
                    "`repro serve` server and push encoded deltas back.",
    )
    worker.add_argument("url", help="server URL, e.g. http://127.0.0.1:8765")
    worker.add_argument("--max-tasks", type=int, default=None)
    worker.add_argument("--poll-interval", type=float, default=0.05)
    worker.add_argument("--worker-id", default=None)

    loadtest = subparsers.add_parser(
        "loadtest", help="drive a server with replayed heterogeneous traffic",
        description="Run server + paced workers replaying the lognormal "
                    "client profiles; report sustained rounds/sec, p99 "
                    "round latency, and real-vs-ledger wire bytes.",
    )
    add_scenario_flags(loadtest)
    loadtest.add_argument("--workers", type=int, default=2)
    loadtest.add_argument("--budget", type=float, default=10.0,
                          dest="simulated_budget_s",
                          help="stop once this much simulated time has "
                               "accumulated (default: 10s)")
    loadtest.add_argument("--max-rounds", type=int, default=None,
                          help="hard cap on rounds regardless of budget")
    loadtest.add_argument("--time-scale", type=float, default=0.01,
                          help="real seconds slept per simulated second "
                               "of a client's round profile")


def _format_duration(seconds: float) -> str:
    """Compact human-readable duration: ``42.1s``, ``3m10s``, ``1h02m``."""
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _progress_printer(event: SpecEvent) -> None:
    """Render one orchestrator progress event as a ``[k/n]`` line."""
    if event.event == "start":
        return
    position = f"[{event.index + 1}/{event.total}]"
    elapsed = "" if event.elapsed_s is None else f" {event.elapsed_s:.1f}s"
    eta = "" if event.eta_s is None else f" (eta {_format_duration(event.eta_s)})"
    suffix = f" ({event.error.splitlines()[-1]})" if event.error else ""
    print(f"{position} {event.event:7s} {event.spec.label()}{elapsed}{eta}{suffix}")


def build_orchestrator(args: Any) -> SweepOrchestrator | None:
    """Construct the sweep orchestrator the given CLI flags ask for.

    Returns ``None`` when no orchestration flag was used, so plain
    invocations keep the exact historical output (no progress lines, no
    store writes).
    """
    jobs = getattr(args, "jobs", None)
    jobs = 1 if jobs is None else jobs
    resume = getattr(args, "resume", False)
    store_dir = getattr(args, "store_dir", None)
    want_progress = getattr(args, "progress", False)
    if jobs == 1 and not resume and store_dir is None and not want_progress:
        return None
    if store_dir is None and resume:
        store_dir = DEFAULT_STORE_DIR
    store = ExperimentStore(store_dir) if store_dir is not None else None
    return SweepOrchestrator(
        jobs=jobs, store=store, resume=resume, progress=_progress_printer
    )


def run_experiment(name: str, args: Any) -> dict:
    """Run one named experiment and return a JSON-serialisable result summary."""
    study = STUDIES.get(name)  # unknown names raise ValueError
    request = StudyRequest.from_args(args, option_names=study.option_names())
    return STUDIES.run(name, request, orchestrator=build_orchestrator(args))


# --------------------------------------------------------------------------- #
# The `runs` subcommand (store inspection/maintenance)
# --------------------------------------------------------------------------- #
def _record_row(record) -> dict:
    return {
        "key": record.key,
        "status": record.status.value,
        "study": record.study,
        "spec": "/".join(str(part) for part in record.spec_key),
        "algorithm": record.algorithm,
        "seed": record.seed,
        "duration_s": (
            "-" if record.duration_s is None else f"{record.duration_s:.1f}"
        ),
    }


def _format_bytes(count: float) -> str:
    """Human-readable byte count (``12.3 MiB``)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - loop always returns


def _print_wire_totals(result) -> None:
    """Wire-byte totals, preferring the run's metrics snapshot when saved."""
    snapshot = result.metadata.get("metrics")
    if isinstance(snapshot, dict):
        counters = snapshot.get("counters", {})
        uploads = sum(
            value for name, value in counters.items()
            if name.startswith("wire.upload_bytes.")
        )
        downloads = counters.get("wire.download_bytes", 0.0)
        if uploads or downloads:
            print(f"upload_wire_bytes: {_format_bytes(uploads)} (from metrics)")
            print(f"download_wire_bytes: {_format_bytes(downloads)} (from metrics)")
            return
    print(
        "upload_wire_bytes: "
        f"{_format_bytes(result.history.total_upload_wire_bytes())}"
    )


def handle_runs(args: Any) -> int:
    """Implement ``repro runs list|show|clean``."""
    store = ExperimentStore(args.store_dir)
    if args.action == "list":
        records = store.records()
        wanted = set(args.status) if args.status else None
        rows = [
            _record_row(record)
            for record in records.values()
            if wanted is None or record.status.value in wanted
        ]
        if rows:
            print(format_table(rows))
        counts = ", ".join(
            f"{status}={count}" for status, count in store.summary().items()
        )
        print(f"{len(rows)} run(s) listed ({counts}) in {store.root}")
        return 0
    if args.action == "show":
        if not args.key:
            print("error: `runs show` needs a run key", file=sys.stderr)
            return 2
        record = store.record(args.key)
        if record is None:
            print(f"error: no run {args.key!r} in {store.root}", file=sys.stderr)
            return 1
        print(format_table([_record_row(record)]))
        if record.updated_at:
            age = max(0.0, time.time() - record.updated_at)
            print(f"\nstatus: {record.status.value} "
                  f"(as of {_format_duration(age)} ago)")
        if record.duration_s is not None:
            print(f"run duration: {_format_duration(record.duration_s)}")
        if record.error:
            print(f"\nerror:\n{record.error}")
        if store.has_result(record.key):
            result = store.load_result(record.key)
            print(f"\nrounds_run: {result.rounds_run}")
            print(f"rounds_to_target: {result.rounds_to_target}")
            print(f"final_accuracy: {result.history.final_accuracy():.4f}")
            print(f"simulated_seconds: {result.simulated_seconds:.1f}")
            _print_wire_totals(result)
        return 0
    # clean
    statuses = (
        [RunStatus(value) for value in args.status] if args.status else None
    )
    dropped = store.clean(statuses)
    print(f"dropped {len(dropped)} run(s) from {store.root}")
    return 0


# --------------------------------------------------------------------------- #
# The serve layer subcommands (`serve`, `worker`, `loadtest`)
# --------------------------------------------------------------------------- #
def _serve_scenario(args):
    """(config, spec) for the serve/loadtest flags."""
    from repro.experiments.configs import AlgorithmSpec, serve_config

    config = serve_config(
        dataset=args.dataset,
        non_iid=not args.iid,
        seed=args.seed,
        codec=None if args.codec == "none" else args.codec,
        mode=args.mode,
    )
    if args.rounds is not None:
        config = config.with_overrides(num_rounds=args.rounds)
    kwargs = {"rho": args.rho} if args.algorithm == "fedadmm" else {}
    return config, AlgorithmSpec(args.algorithm, kwargs)


def handle_serve(args: Any) -> int:
    """Implement ``repro serve``: server plus optional local workers."""
    import multiprocessing

    from repro.serve.server import FederationServer
    from repro.serve.worker import run_worker

    config, spec = _serve_scenario(args)
    server = FederationServer(
        config, spec,
        host=args.host, port=args.port,
        lease_s=args.lease_s,
        store_dir=args.store_dir, resume=args.resume,
    )
    server.start()
    print(f"serving {config.name} / {spec.label()} at {server.url}")
    if server.resumed_from_round:
        print(f"resumed from round {server.resumed_from_round}")
    workers = [
        multiprocessing.Process(
            target=run_worker,
            kwargs=dict(url=server.url, worker_id=f"local-{index}"),
            daemon=True,
        )
        for index in range(args.workers)
    ]
    for process in workers:
        process.start()
    try:
        result = server.wait()
    except KeyboardInterrupt:
        print("\ninterrupted; finishing the in-flight round ...")
        server.request_stop()
        result = server.wait(timeout=60)
    finally:
        server.stop()
        for process in workers:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
    print(f"rounds_run: {result.rounds_run}")
    print(f"final_accuracy: {result.history.final_accuracy():.4f}")
    print(f"upload_wire_bytes: {_format_bytes(result.ledger.upload_wire_bytes)}")
    counters = server.metrics.snapshot()["counters"]
    codec_name = result.metadata.get("codec") or "raw"
    real = counters.get(f"serve.payload_bytes.{codec_name}", 0)
    print(f"real_upload_payload_bytes: {_format_bytes(real)}")
    if args.output:
        path = save_json(to_jsonable(server.status_snapshot()), args.output)
        print(f"Saved serve status to {path}")
    return 0


def handle_worker(args: Any) -> int:
    """Implement ``repro worker``: attach to a running server."""
    from repro.serve.worker import run_worker

    completed = run_worker(
        args.url,
        max_tasks=args.max_tasks,
        poll_interval=args.poll_interval,
        worker_id=args.worker_id,
    )
    print(f"completed {completed} task(s)")
    return 0


def handle_loadtest(args: Any) -> int:
    """Implement ``repro loadtest``: paced traffic replay + report."""
    from repro.serve.loadgen import run_load_test

    config, spec = _serve_scenario(args)
    report = run_load_test(
        config, spec,
        num_workers=args.workers,
        simulated_budget_s=args.simulated_budget_s,
        max_rounds=args.max_rounds,
        time_scale=args.time_scale,
    )
    payload = report.to_payload()
    for key, value in payload.items():
        print(f"{key}: {value}")
    if args.output:
        path = save_json(payload, args.output)
        print(f"Saved load report to {path}")
    return 0


# --------------------------------------------------------------------------- #
# The `contributions` subcommand (client data valuation)
# --------------------------------------------------------------------------- #
def handle_contributions(args: Any) -> int:
    """Implement ``repro contributions``: leave-one-out / Shapley valuation."""
    from pathlib import Path

    from repro.experiments.configs import AlgorithmSpec, robustness_config
    from repro.experiments.contributions import UtilityCache, compute_contributions

    config = robustness_config(
        dataset=args.dataset,
        non_iid=not args.iid,
        seed=args.seed,
        adversary=args.adversary,
        adversary_fraction=args.adversary_fraction if args.adversary else 0.0,
        defense=args.defense,
    )
    config = config.with_overrides(
        name=f"contributions-{args.dataset}-{'iid' if args.iid else 'noniid'}",
        num_clients=args.clients,
        num_rounds=args.rounds,
    )
    kwargs = {"rho": args.rho} if args.algorithm == "fedadmm" else {}
    spec = AlgorithmSpec(args.algorithm, kwargs)
    cache = UtilityCache(
        Path(args.store_dir) / "contributions"
        / f"{config.name}-{spec.label()}-n{config.num_clients}"
          f"-r{config.num_rounds}-s{config.seed}.json"
        if args.store_dir is not None
        else None
    )
    report = compute_contributions(
        config, spec,
        method=args.method,
        permutations=args.permutations,
        tolerance=args.tolerance,
        cache=cache,
    )
    print(f"{args.method} contribution scores for {config.name} / "
          f"{spec.label()} ({args.clients} clients, {args.rounds} rounds)")
    print(f"utility(all clients) = {report.utility_full:.4f}   "
          f"utility(no clients) = {report.utility_empty:.4f}")
    rows = [
        {"client": client, "score": f"{score:+.4f}"}
        for client, score in report.ranked()
    ]
    print(format_table(rows))
    reuse = f", {report.runs_reused} reused from cache" if report.runs_reused else ""
    print(f"{report.runs_executed} coalition run(s) executed{reuse}")
    if args.method == "shapley":
        print(f"permutations: {report.permutations} "
              f"(truncated walks: {report.metadata['truncated_walks']})")
    if args.output:
        path = save_json(report.to_payload(), args.output)
        print(f"Saved contribution report to {path}")
    return 0


def _support_summary(study) -> str:
    """One-line modes/executors support summary for a study listing."""
    if not study.modes and not study.executors:
        return "closed form (no training; plan/executor flags rejected)"
    return (
        f"modes: {'|'.join(study.modes)}   "
        f"executors: {'|'.join(study.executors)}"
    )


def _print_listing() -> None:
    print("Available experiments:\n")
    for study in sorted(STUDIES, key=lambda s: s.name):
        print(f"  {study.name:8s} {study.description}")
        print(f"  {'':8s}   {_support_summary(study)}")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        _print_listing()
        return 0
    if args.experiment == "runs":
        return handle_runs(args)
    if args.experiment in ("serve", "worker", "loadtest", "contributions"):
        handler = {
            "serve": handle_serve,
            "worker": handle_worker,
            "loadtest": handle_loadtest,
            "contributions": handle_contributions,
        }[args.experiment]
        try:
            return handler(args)
        except (ConfigurationError, ProtocolError) as exc:
            # Same fail-fast contract as the study subcommands: bad flag
            # values and unreachable/incompatible servers die with one
            # clear line, not a traceback.
            print(f"error: {exc}", file=sys.stderr)
            return 2

    profiling = args.experiment == "profile"
    study_name = args.study if profiling else args.experiment
    tracer = Tracer() if getattr(args, "trace_path", None) else None
    metrics = MetricsRegistry() if getattr(args, "metrics_path", None) else None
    profiler = Profiler() if profiling else None
    try:
        if getattr(args, "backend", None) is not None:
            # A registered-but-unimportable backend (e.g. --backend torch
            # without the package) must die here with one line, not as a
            # wrapped failure on every sweep point.
            from repro.nn.backend import build_backend

            build_backend(args.backend)
        with observe(tracer=tracer, metrics=metrics, profiler=profiler):
            result = run_experiment(study_name, args)
    except ConfigurationError as exc:
        # Fail fast with one clear line on unsupported flag combinations
        # (e.g. `--mode sync` on the async study) instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if tracer is not None:
        trace_path = tracer.write_chrome_trace(args.trace_path)
        span_log = tracer.write_span_log(f"{args.trace_path}.spans.jsonl")
        print(f"\nWrote Chrome trace to {trace_path} "
              f"({len(tracer)} spans; span log: {span_log})")
    if metrics is not None:
        metrics_path = metrics.write_json(args.metrics_path)
        print(f"Wrote metrics snapshot to {metrics_path}")
    if profiler is not None:
        print(f"\nHot spots for {study_name}:")
        print(profiler.hotspot_table(top=getattr(args, "top", None)))
    if args.output:
        path = save_json(to_jsonable(result), args.output)
        print(f"\nSaved raw results to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
