"""IID partitioning: data evenly and randomly distributed across clients."""

from __future__ import annotations

from repro.datasets.base import Dataset
from repro.partition.base import Partition, Partitioner
from repro.utils.rng import SeedLike, as_rng, permutation_chunks


class IidPartitioner(Partitioner):
    """Shuffle the dataset and split it into near-equal contiguous chunks.

    This matches the paper's IID setting: "data are evenly distributed to
    clients".
    """

    scheme = "iid"

    def partition(
        self, dataset: Dataset, num_clients: int, rng: SeedLike = None
    ) -> Partition:
        self._check_num_clients(num_clients, len(dataset))
        rng = as_rng(rng)
        chunks = permutation_chunks(rng, len(dataset), num_clients)
        partition = Partition(
            client_indices=chunks,
            dataset_size=len(dataset),
            scheme=self.scheme,
        )
        partition.validate()
        return partition
