"""Client data partitioning strategies.

The paper evaluates three distributions of training data across clients:

* **IID** — data evenly and randomly distributed (:class:`IidPartitioner`).
* **non-IID shards** — data sorted by label, split into shards, two shards per
  client (:class:`ShardPartitioner`), the extreme heterogeneity setting.
* **imbalanced volumes** — clients grouped, each group receiving a number of
  shards equal to its group index (:class:`ImbalancedPartitioner`, Table VI).

:class:`DirichletPartitioner` is provided as an extension for the smoother
label-skew setting common in later FL literature.
"""

from repro.partition.base import Partition, Partitioner
from repro.partition.iid import IidPartitioner
from repro.partition.shard import ShardPartitioner
from repro.partition.imbalanced import ImbalancedPartitioner
from repro.partition.dirichlet import DirichletPartitioner
from repro.partition.stats import PartitionStats, compute_partition_stats

__all__ = [
    "Partition",
    "Partitioner",
    "IidPartitioner",
    "ShardPartitioner",
    "ImbalancedPartitioner",
    "DirichletPartitioner",
    "PartitionStats",
    "compute_partition_stats",
    "build_partitioner",
]


def build_partitioner(name: str, **kwargs) -> Partitioner:
    """Construct a partitioner by name (``iid``, ``shard``, ``imbalanced``,
    ``dirichlet``)."""
    from repro.exceptions import ConfigurationError

    registry = {
        "iid": IidPartitioner,
        "shard": ShardPartitioner,
        "imbalanced": ImbalancedPartitioner,
        "dirichlet": DirichletPartitioner,
    }
    key = name.lower()
    if key not in registry:
        raise ConfigurationError(
            f"unknown partitioner {name!r}; available: {sorted(registry)}"
        )
    return registry[key](**kwargs)
