"""Partition data structures and the partitioner interface."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import PartitionError
from repro.utils.rng import SeedLike


@dataclass
class Partition:
    """Assignment of dataset sample indices to clients.

    ``client_indices[i]`` is the sorted array of sample indices owned by
    client ``i``.  A valid partition covers every sample exactly once unless
    it was explicitly built as a sub-sample.
    """

    client_indices: list[np.ndarray]
    dataset_size: int
    scheme: str = "custom"
    metadata: dict = field(default_factory=dict)

    @property
    def num_clients(self) -> int:
        """Number of clients in the partition."""
        return len(self.client_indices)

    def client_sizes(self) -> np.ndarray:
        """Array of per-client sample counts."""
        return np.array([len(idx) for idx in self.client_indices], dtype=np.int64)

    def validate(self, require_cover: bool = True) -> None:
        """Raise :class:`PartitionError` if the partition is inconsistent.

        Checks index bounds, per-client uniqueness, global disjointness, and
        (optionally) that the union covers the full dataset.
        """
        seen = np.zeros(self.dataset_size, dtype=np.int64)
        for client_id, indices in enumerate(self.client_indices):
            if len(indices) == 0:
                continue
            if indices.min() < 0 or indices.max() >= self.dataset_size:
                raise PartitionError(
                    f"client {client_id} has out-of-range indices "
                    f"[{indices.min()}, {indices.max()}] for dataset of size "
                    f"{self.dataset_size}"
                )
            if len(np.unique(indices)) != len(indices):
                raise PartitionError(f"client {client_id} has duplicate indices")
            seen[indices] += 1
        if (seen > 1).any():
            raise PartitionError("some samples are assigned to multiple clients")
        if require_cover and (seen == 0).any():
            missing = int((seen == 0).sum())
            raise PartitionError(f"{missing} samples are not assigned to any client")

    def client_dataset(self, dataset: Dataset, client_id: int) -> Dataset:
        """Materialise client ``client_id``'s local dataset."""
        if not 0 <= client_id < self.num_clients:
            raise PartitionError(
                f"client_id {client_id} out of range [0, {self.num_clients})"
            )
        return dataset.subset(
            self.client_indices[client_id], name=f"{dataset.name}-client{client_id}"
        )

    def client_datasets(self, dataset: Dataset) -> list[Dataset]:
        """Materialise every client's local dataset."""
        return [self.client_dataset(dataset, i) for i in range(self.num_clients)]


class Partitioner:
    """Interface: split a dataset's indices across ``num_clients`` clients."""

    scheme = "base"

    def partition(
        self, dataset: Dataset, num_clients: int, rng: SeedLike = None
    ) -> Partition:
        """Return a :class:`Partition` of ``dataset`` over ``num_clients``."""
        raise NotImplementedError

    @staticmethod
    def _check_num_clients(num_clients: int, dataset_size: int) -> None:
        if num_clients <= 0:
            raise PartitionError(f"num_clients must be positive, got {num_clients}")
        if num_clients > dataset_size:
            raise PartitionError(
                f"cannot split {dataset_size} samples across {num_clients} clients"
            )
