"""Dirichlet label-skew partitioning (extension beyond the paper).

Each class's samples are distributed across clients according to a Dirichlet
(alpha) draw; small alpha gives near-pathological skew, large alpha
approaches IID.  This is the standard smoother alternative to the paper's
two-shard scheme and is used in the extension benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import PartitionError
from repro.partition.base import Partition, Partitioner
from repro.utils.rng import SeedLike, as_rng


class DirichletPartitioner(Partitioner):
    """Per-class Dirichlet allocation of samples to clients."""

    scheme = "dirichlet"

    def __init__(self, alpha: float = 0.5, min_samples_per_client: int = 1):
        if alpha <= 0:
            raise PartitionError(f"alpha must be positive, got {alpha}")
        if min_samples_per_client < 0:
            raise PartitionError(
                f"min_samples_per_client must be non-negative, "
                f"got {min_samples_per_client}"
            )
        self.alpha = alpha
        self.min_samples_per_client = min_samples_per_client

    def partition(
        self, dataset: Dataset, num_clients: int, rng: SeedLike = None
    ) -> Partition:
        self._check_num_clients(num_clients, len(dataset))
        rng = as_rng(rng)
        num_classes = dataset.num_classes

        assignments: list[list[np.ndarray]] = [[] for _ in range(num_clients)]
        for label in range(num_classes):
            class_indices = np.flatnonzero(dataset.labels == label)
            if class_indices.size == 0:
                continue
            rng.shuffle(class_indices)
            proportions = rng.dirichlet(np.full(num_clients, self.alpha))
            # Convert proportions to cut points over this class's samples.
            cuts = (np.cumsum(proportions) * class_indices.size).astype(np.int64)[:-1]
            for client_id, chunk in enumerate(np.split(class_indices, cuts)):
                if chunk.size:
                    assignments[client_id].append(chunk)

        client_indices: list[np.ndarray] = []
        for chunks in assignments:
            if chunks:
                client_indices.append(np.sort(np.concatenate(chunks)))
            else:
                client_indices.append(np.array([], dtype=np.int64))

        # Rebalance clients that fell below the minimum by stealing from the
        # largest clients; keeps the partition a cover.
        self._enforce_minimum(client_indices, rng)

        partition = Partition(
            client_indices=client_indices,
            dataset_size=len(dataset),
            scheme=self.scheme,
            metadata={"alpha": self.alpha},
        )
        partition.validate()
        return partition

    def _enforce_minimum(
        self, client_indices: list[np.ndarray], rng: np.random.Generator
    ) -> None:
        minimum = self.min_samples_per_client
        if minimum == 0:
            return
        for client_id, indices in enumerate(client_indices):
            while len(client_indices[client_id]) < minimum:
                donor = int(np.argmax([len(idx) for idx in client_indices]))
                if donor == client_id or len(client_indices[donor]) <= minimum:
                    break
                donor_indices = client_indices[donor]
                take = rng.integers(0, len(donor_indices))
                moved = donor_indices[take]
                client_indices[donor] = np.delete(donor_indices, take)
                client_indices[client_id] = np.sort(
                    np.append(client_indices[client_id], moved)
                )
