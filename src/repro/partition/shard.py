"""Label-sorted shard partitioning (the paper's non-IID setting).

Training data are sorted by label, divided evenly into shards, and each
client is assigned ``shards_per_client`` shards uniformly at random (two in
the paper).  With two shards per client most clients see at most two classes,
an extreme form of label heterogeneity.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import PartitionError
from repro.partition.base import Partition, Partitioner
from repro.utils.rng import SeedLike, as_rng


class ShardPartitioner(Partitioner):
    """Sort-by-label shard assignment with ``shards_per_client`` shards each."""

    scheme = "shard"

    def __init__(self, shards_per_client: int = 2):
        if shards_per_client <= 0:
            raise PartitionError(
                f"shards_per_client must be positive, got {shards_per_client}"
            )
        self.shards_per_client = shards_per_client

    def partition(
        self, dataset: Dataset, num_clients: int, rng: SeedLike = None
    ) -> Partition:
        self._check_num_clients(num_clients, len(dataset))
        rng = as_rng(rng)

        num_shards = num_clients * self.shards_per_client
        if num_shards > len(dataset):
            raise PartitionError(
                f"cannot build {num_shards} shards from {len(dataset)} samples"
            )

        # Sort indices by label; break ties randomly so repeated runs with
        # different seeds produce different shard contents.
        jitter = rng.random(len(dataset))
        order = np.lexsort((jitter, dataset.labels))
        shards = np.array_split(order, num_shards)

        shard_assignment = rng.permutation(num_shards)
        client_indices: list[np.ndarray] = []
        for client_id in range(num_clients):
            start = client_id * self.shards_per_client
            own = shard_assignment[start : start + self.shards_per_client]
            indices = np.concatenate([shards[s] for s in own])
            client_indices.append(np.sort(indices))

        partition = Partition(
            client_indices=client_indices,
            dataset_size=len(dataset),
            scheme=self.scheme,
            metadata={
                "shards_per_client": self.shards_per_client,
                "num_shards": num_shards,
            },
        )
        partition.validate()
        return partition
