"""Descriptive statistics of a partition (used for Table VI and diagnostics)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset
from repro.partition.base import Partition


@dataclass
class PartitionStats:
    """Summary of how a partition distributes data across clients.

    Mirrors the columns of the paper's Table VI (clients, samples, mean,
    stdev) and adds label-distribution diagnostics.
    """

    num_clients: int
    total_samples: int
    mean_samples: float
    std_samples: float
    min_samples: int
    max_samples: int
    mean_classes_per_client: float
    label_entropy: float

    def as_table_row(self) -> dict[str, float]:
        """Row in the format of the paper's Table VI."""
        return {
            "Clients": self.num_clients,
            "Samples": self.total_samples,
            "Mean": round(self.mean_samples, 2),
            "Stdev": round(self.std_samples, 2),
        }


def _mean_label_entropy(partition: Partition, dataset: Dataset) -> float:
    """Average entropy (nats) of each client's label distribution."""
    entropies = []
    for indices in partition.client_indices:
        if len(indices) == 0:
            continue
        counts = np.bincount(dataset.labels[indices], minlength=dataset.num_classes)
        probs = counts / counts.sum()
        nonzero = probs[probs > 0]
        entropies.append(float(-(nonzero * np.log(nonzero)).sum()))
    return float(np.mean(entropies)) if entropies else 0.0


def compute_partition_stats(partition: Partition, dataset: Dataset) -> PartitionStats:
    """Compute :class:`PartitionStats` for ``partition`` over ``dataset``."""
    sizes = partition.client_sizes()
    classes_per_client = []
    for indices in partition.client_indices:
        if len(indices) == 0:
            classes_per_client.append(0)
        else:
            classes_per_client.append(len(np.unique(dataset.labels[indices])))
    return PartitionStats(
        num_clients=partition.num_clients,
        total_samples=int(sizes.sum()),
        mean_samples=float(sizes.mean()) if sizes.size else 0.0,
        std_samples=float(sizes.std()) if sizes.size else 0.0,
        min_samples=int(sizes.min()) if sizes.size else 0,
        max_samples=int(sizes.max()) if sizes.size else 0,
        mean_classes_per_client=float(np.mean(classes_per_client)),
        label_entropy=_mean_label_entropy(partition, dataset),
    )
