"""Imbalanced-volume partitioning (paper Section V-B, Table VI).

The paper's construction: sort training data by label, divide into a large
number of small shards, split the clients evenly into ``num_groups`` groups,
and give every member of group ``g`` (1-indexed) exactly ``g`` shards — except
the last group, which absorbs whatever shards remain.  The result is both
label-heterogeneous and volume-heterogeneous (std on the order of half the
mean, cf. Table VI).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import PartitionError
from repro.partition.base import Partition, Partitioner
from repro.utils.rng import SeedLike, as_rng


class ImbalancedPartitioner(Partitioner):
    """Group-indexed shard allocation producing imbalanced client volumes."""

    scheme = "imbalanced"

    def __init__(self, num_groups: int = 100, samples_per_shard: int | None = None):
        if num_groups <= 0:
            raise PartitionError(f"num_groups must be positive, got {num_groups}")
        if samples_per_shard is not None and samples_per_shard <= 0:
            raise PartitionError(
                f"samples_per_shard must be positive, got {samples_per_shard}"
            )
        self.num_groups = num_groups
        self.samples_per_shard = samples_per_shard

    def partition(
        self, dataset: Dataset, num_clients: int, rng: SeedLike = None
    ) -> Partition:
        self._check_num_clients(num_clients, len(dataset))
        if num_clients % self.num_groups != 0:
            raise PartitionError(
                f"num_clients ({num_clients}) must be a multiple of num_groups "
                f"({self.num_groups})"
            )
        rng = as_rng(rng)
        group_size = num_clients // self.num_groups

        # Total shards needed if every member of group g gets g shards:
        # group_size * (1 + 2 + ... + num_groups).
        baseline_shards = group_size * self.num_groups * (self.num_groups + 1) // 2
        if self.samples_per_shard is not None:
            num_shards = len(dataset) // self.samples_per_shard
        else:
            num_shards = baseline_shards
        if num_shards < baseline_shards:
            raise PartitionError(
                f"need at least {baseline_shards} shards but the dataset only "
                f"supports {num_shards}; reduce num_groups or samples_per_shard"
            )

        jitter = rng.random(len(dataset))
        order = np.lexsort((jitter, dataset.labels))
        shards = np.array_split(order, num_shards)
        shard_order = list(rng.permutation(num_shards))

        client_indices: list[np.ndarray] = [np.array([], dtype=np.int64)] * num_clients
        cursor = 0
        client_id = 0
        for group in range(1, self.num_groups + 1):
            for member in range(group_size):
                is_last_client = group == self.num_groups and member == group_size - 1
                if is_last_client:
                    own = shard_order[cursor:]
                else:
                    own = shard_order[cursor : cursor + group]
                cursor += len(own)
                if own:
                    indices = np.concatenate([shards[s] for s in own])
                else:
                    indices = np.array([], dtype=np.int64)
                client_indices[client_id] = np.sort(indices)
                client_id += 1

        partition = Partition(
            client_indices=client_indices,
            dataset_size=len(dataset),
            scheme=self.scheme,
            metadata={
                "num_groups": self.num_groups,
                "num_shards": num_shards,
                "group_size": group_size,
            },
        )
        partition.validate()
        return partition
