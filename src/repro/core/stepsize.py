"""Server gathering step-size policies η.

The paper studies three regimes (Section V-B, Fig. 6):

* a constant nominal η = 1.0, the fast default,
* η = |S_t| / m, the theoretically analysed choice that damps oscillations
  under heavy heterogeneity,
* decreasing η mid-run ("adjusting the step size at later stages"), which the
  piecewise policy expresses.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError


class ServerStepSize:
    """Interface: the server step size for a given round."""

    def value(self, round_index: int, num_selected: int, num_clients: int) -> float:
        """Return η for this round."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description for tables and logs."""
        return type(self).__name__


class ConstantStepSize(ServerStepSize):
    """A fixed η (the paper's nominal setting is η = 1.0)."""

    def __init__(self, eta: float = 1.0):
        if eta <= 0:
            raise ConfigurationError(f"eta must be positive, got {eta}")
        self.eta = eta

    def value(self, round_index: int, num_selected: int, num_clients: int) -> float:
        return self.eta

    def describe(self) -> str:
        return f"eta={self.eta}"


class ParticipationScaledStepSize(ServerStepSize):
    """η = |S_t| / m, the choice used in the convergence analysis."""

    def value(self, round_index: int, num_selected: int, num_clients: int) -> float:
        if num_clients <= 0 or num_selected <= 0:
            raise ConfigurationError(
                "num_selected and num_clients must be positive to scale eta"
            )
        return num_selected / num_clients

    def describe(self) -> str:
        return "eta=|S_t|/m"


class PiecewiseStepSize(ServerStepSize):
    """Switch η at given round boundaries (Fig. 6's mid-run adjustment).

    ``boundaries`` are the round indices at which the *next* value takes
    effect; ``values`` has one more element than ``boundaries``.
    """

    def __init__(self, values: Sequence[float], boundaries: Sequence[int]):
        if len(values) != len(boundaries) + 1:
            raise ConfigurationError(
                "values must have exactly one more element than boundaries"
            )
        if any(v <= 0 for v in values):
            raise ConfigurationError("every eta value must be positive")
        if list(boundaries) != sorted(boundaries):
            raise ConfigurationError("boundaries must be sorted ascending")
        self.values = list(values)
        self.boundaries = list(boundaries)

    def value(self, round_index: int, num_selected: int, num_clients: int) -> float:
        segment = 0
        for boundary in self.boundaries:
            if round_index >= boundary:
                segment += 1
        return self.values[segment]

    def describe(self) -> str:
        return f"eta piecewise {self.values} at {self.boundaries}"
