"""Convergence-theory helpers: Theorem 1, the optimality gap V_t, Table I.

These functions turn the paper's analysis into executable checks used by the
tests and by the Table I benchmark:

* :func:`minimum_rho` — the requirement ρ > (1 + √5) L of Theorem 1.
* :func:`theorem1_constants` — the constants c₁, c₂, c₃ appearing in eq. (8).
* :func:`expected_rounds_bound` — the right-hand side of eq. (8) rearranged
  to bound the number of rounds needed to reach a target gap.
* :func:`optimality_gap` — the non-negative function V_t of eq. (7).
* :func:`round_complexity` / :data:`COMPLEXITY_TABLE` — the communication-
  round complexities of Table I for FedAvg, FedProx, SCAFFOLD, FedPD, and
  FedADMM as callable predictors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError


def minimum_rho(lipschitz_constant: float) -> float:
    """The smallest ρ allowed by Theorem 1: ``(1 + sqrt(5)) * L``."""
    if lipschitz_constant < 0:
        raise ConfigurationError(
            f"lipschitz_constant must be non-negative, got {lipschitz_constant}"
        )
    return (1.0 + math.sqrt(5.0)) * lipschitz_constant


@dataclass
class Theorem1Constants:
    """The constants of eq. (8) for a given (ρ, L, p_min)."""

    rho: float
    lipschitz: float
    p_min: float
    c1: float
    c2: float
    c3: float

    def is_valid(self) -> bool:
        """Whether c₁ > 0, i.e. the bound is meaningful for this (ρ, L, p_min)."""
        return self.c1 > 0


def theorem1_constants(rho: float, lipschitz: float, p_min: float) -> Theorem1Constants:
    """Compute c₁, c₂, c₃ as defined below eq. (8).

    c₁ = p_min ((ρ − 2L)/2 − 2L²/ρ)
    c₂ = 3 (L² + ρ²) + 2 (1 + 2L²/ρ²)
    c₃ = 3 + 16/ρ² + (c₂ / c₁) · (ρ + 16L) / (2 L ρ)
    """
    if rho <= 0:
        raise ConfigurationError(f"rho must be positive, got {rho}")
    if lipschitz <= 0:
        raise ConfigurationError(f"lipschitz must be positive, got {lipschitz}")
    if not 0 < p_min <= 1:
        raise ConfigurationError(f"p_min must lie in (0, 1], got {p_min}")

    c1 = p_min * ((rho - 2.0 * lipschitz) / 2.0 - 2.0 * lipschitz**2 / rho)
    c2 = 3.0 * (lipschitz**2 + rho**2) + 2.0 * (1.0 + 2.0 * lipschitz**2 / rho**2)
    if c1 <= 0:
        # c3 involves c2/c1; keep it NaN so callers see the bound is vacuous.
        c3 = float("nan")
    else:
        c3 = 3.0 + 16.0 / rho**2 + (c2 / c1) * (rho + 16.0 * lipschitz) / (
            2.0 * lipschitz * rho
        )
    return Theorem1Constants(
        rho=rho, lipschitz=lipschitz, p_min=p_min, c1=c1, c2=c2, c3=c3
    )


def expected_rounds_bound(
    target_gap: float,
    initial_lagrangian: float,
    f_star: float,
    num_clients: int,
    constants: Theorem1Constants,
    epsilon_max: float = 0.0,
) -> float:
    """Rounds T needed so the RHS of eq. (8) drops below ``target_gap``.

    Eq. (8):  (1/mT) Σ E[V_t] ≤ (1/mT)(c₂/c₁)(L⁰ − f* + m ε_max / 2L) + c₃ ε_max.

    Solving for the smallest T that makes the right-hand side ≤ target_gap
    (requires target_gap > c₃ ε_max; otherwise the bound can never certify
    the target and a :class:`ConvergenceError` is raised).
    """
    if target_gap <= 0:
        raise ConfigurationError(f"target_gap must be positive, got {target_gap}")
    if num_clients <= 0:
        raise ConfigurationError(f"num_clients must be positive, got {num_clients}")
    if not constants.is_valid():
        raise ConvergenceError(
            "Theorem 1 constants are invalid (c1 <= 0); increase rho above "
            f"{minimum_rho(constants.lipschitz):.4g}"
        )
    floor = constants.c3 * epsilon_max if epsilon_max > 0 else 0.0
    if target_gap <= floor:
        raise ConvergenceError(
            f"target gap {target_gap} is below the inexactness floor {floor:.4g}; "
            "decrease epsilon_max"
        )
    numerator = (constants.c2 / constants.c1) * (
        initial_lagrangian
        - f_star
        + num_clients * epsilon_max / (2.0 * constants.lipschitz)
    )
    return max(1.0, numerator / (num_clients * (target_gap - floor)))


def optimality_gap(
    client_params: list[np.ndarray],
    client_dual_grads: list[np.ndarray],
    theta: np.ndarray,
    theta_grad: np.ndarray | None = None,
) -> float:
    """The non-negative function V_t of eq. (7).

    V_t = ‖∇_θ L‖² + Σ_i ( ‖∇_{w_i} L_i‖² + ‖w_i − θ‖² )

    ``client_dual_grads[i]`` must be ``∇_{w_i} L_i`` evaluated at the current
    iterates; ``theta_grad`` is ``∇_θ L`` and defaults to zero, which is exact
    under the paper's initialisation and η = |S_t|/m (eq. 20 shows it vanishes
    identically).
    """
    if len(client_params) != len(client_dual_grads):
        raise ConfigurationError(
            "client_params and client_dual_grads must have the same length"
        )
    total = 0.0
    if theta_grad is not None:
        total += float(theta_grad @ theta_grad)
    for w, grad in zip(client_params, client_dual_grads):
        diff = w - theta
        total += float(grad @ grad) + float(diff @ diff)
    return total


def round_complexity(
    method: str,
    epsilon: float,
    num_clients: int,
    num_selected: int,
    dissimilarity_b: float = 1.0,
    gradient_bound_g: float = 1.0,
) -> float:
    """Table I: predicted communication rounds to reach an ε-stationary point.

    The constants hidden by the O(·) notation are set to 1, so the value is a
    *scaling law*, useful for comparing how methods degrade with ε, m, and S.
    """
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    if num_clients <= 0 or num_selected <= 0 or num_selected > num_clients:
        raise ConfigurationError(
            f"need 0 < num_selected <= num_clients, got ({num_selected}, {num_clients})"
        )
    m, s = float(num_clients), float(num_selected)
    b, g = float(dissimilarity_b), float(gradient_bound_g)
    key = method.lower()
    if key == "fedavg":
        return (1.0 / epsilon**2) * (m - s) / (m * s) + g / epsilon**1.5 + b**2 / epsilon
    if key == "fedprox":
        return b**2 / epsilon
    if key == "scaffold":
        return 1.0 / epsilon**2 + (1.0 / epsilon) * (m / s) ** (2.0 / 3.0)
    if key == "fedpd":
        return 1.0 / epsilon
    if key == "fedadmm":
        return (1.0 / epsilon) * (m / s)
    raise ConfigurationError(
        f"unknown method {method!r}; known: fedavg, fedprox, scaffold, fedpd, fedadmm"
    )


#: The rows of Table I as (method, formula description) pairs.
COMPLEXITY_TABLE: dict[str, str] = {
    "fedavg": "O(1/eps^2 * (m-S)/(mS) + G/eps^{3/2} + B^2/eps)",
    "fedprox": "O(B^2/eps)  [requires S > B^2]",
    "scaffold": "O(1/eps^2 + 1/eps * (m/S)^{2/3})",
    "fedpd": "O(1/eps)  [requires full participation]",
    "fedadmm": "O(1/eps * (m/S))",
}
