"""The client-local augmented Lagrangian of eq. (3).

    L_i(w_i, y_i, θ) = f_i(w_i) + y_iᵀ (w_i − θ) + (ρ/2) ‖w_i − θ‖².

Its gradient with respect to ``w_i`` is ``∇f_i(w_i) + y_i + ρ (w_i − θ)``,
which is exactly the per-batch update direction used in Algorithm 1 line 17.
The class also exposes the inexactness check of eq. (6) and the strong-
convexity condition that underpins the "variable amount of work" property.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.federated.local_problem import LocalProblem


class AugmentedLagrangian:
    """Evaluates the augmented Lagrangian terms added on top of ``f_i``."""

    def __init__(self, rho: float):
        if rho < 0:
            raise ConfigurationError(f"rho must be non-negative, got {rho}")
        self.rho = rho

    # ------------------------------------------------------------------ #
    # Penalty terms (everything except f_i)
    # ------------------------------------------------------------------ #
    def penalty_value(
        self, w: np.ndarray, y: np.ndarray, theta: np.ndarray
    ) -> float:
        """Value of ``yᵀ(w − θ) + (ρ/2)‖w − θ‖²``."""
        diff = w - theta
        return float(y @ diff + 0.5 * self.rho * diff @ diff)

    def penalty_gradient(
        self, w: np.ndarray, y: np.ndarray, theta: np.ndarray
    ) -> np.ndarray:
        """Gradient of the penalty terms with respect to ``w``: ``y + ρ(w − θ)``."""
        return y + self.rho * (w - theta)

    # ------------------------------------------------------------------ #
    # Full objective against a LocalProblem
    # ------------------------------------------------------------------ #
    def value(
        self,
        problem: LocalProblem,
        w: np.ndarray,
        y: np.ndarray,
        theta: np.ndarray,
        batch_size: int | None = 256,
    ) -> float:
        """Full ``L_i(w, y, θ)`` over the client's dataset."""
        return problem.full_loss(w, batch_size=batch_size) + self.penalty_value(
            w, y, theta
        )

    def gradient(
        self,
        problem: LocalProblem,
        w: np.ndarray,
        y: np.ndarray,
        theta: np.ndarray,
        batch_size: int | None = 256,
    ) -> np.ndarray:
        """Full gradient ``∇_w L_i(w, y, θ)`` over the client's dataset."""
        _, grad_f = problem.full_loss_and_grad(w, batch_size=batch_size)
        return grad_f + self.penalty_gradient(w, y, theta)

    def inexactness(
        self,
        problem: LocalProblem,
        w: np.ndarray,
        y: np.ndarray,
        theta: np.ndarray,
        batch_size: int | None = 256,
    ) -> float:
        """Squared gradient norm ``‖∇_w L_i(w, y, θ)‖²`` — the ε_i of eq. (6)."""
        grad = self.gradient(problem, w, y, theta, batch_size=batch_size)
        return float(grad @ grad)

    # ------------------------------------------------------------------ #
    # Theory helpers
    # ------------------------------------------------------------------ #
    def is_strongly_convex(self, lipschitz_constant: float) -> bool:
        """Whether ρ exceeds L so that ``L_i`` is strongly convex in ``w``.

        For an L-smooth (possibly non-convex) ``f_i``, adding (ρ/2)‖w − θ‖²
        makes the local subproblem (ρ − L)-strongly convex whenever ρ > L.
        """
        if lipschitz_constant < 0:
            raise ConfigurationError(
                f"lipschitz_constant must be non-negative, got {lipschitz_constant}"
            )
        return self.rho > lipschitz_constant

    def strong_convexity_modulus(self, lipschitz_constant: float) -> float:
        """The modulus ``ρ − L`` (non-positive means not guaranteed convex)."""
        return self.rho - lipschitz_constant
