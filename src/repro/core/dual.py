"""Dual-variable mechanics: updates, augmented models, messages, KKT residuals.

These are the pieces that distinguish FedADMM from the primal-only baselines:

* dual update (Algorithm 1, line 20): ``y_i ← y_i + ρ (w_i − θ)``,
* augmented model: ``u_i = w_i + y_i / ρ``,
* update message (eq. 4): ``Δ_i = u_i^{new} − u_i^{old}``,
* KKT residuals of the consensus problem (2), which quantify how far the
  current primal-dual iterates are from stationarity (used for diagnostics
  and in the convergence tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


def dual_update(y: np.ndarray, w: np.ndarray, theta: np.ndarray, rho: float) -> np.ndarray:
    """Algorithm 1 line 20: ``y_new = y + ρ (w − θ)``."""
    if rho <= 0:
        raise ConfigurationError(f"rho must be positive for a dual update, got {rho}")
    return y + rho * (w - theta)


def augmented_model(w: np.ndarray, y: np.ndarray, rho: float) -> np.ndarray:
    """The augmented model ``u = w + y / ρ`` combined into a single vector."""
    if rho <= 0:
        raise ConfigurationError(f"rho must be positive, got {rho}")
    return w + y / rho


def update_message(
    w_new: np.ndarray,
    y_new: np.ndarray,
    w_old: np.ndarray,
    y_old: np.ndarray,
    rho: float,
) -> np.ndarray:
    """Eq. (4): difference of successive augmented models, ``Δ_i``."""
    return augmented_model(w_new, y_new, rho) - augmented_model(w_old, y_old, rho)


@dataclass
class KKTResiduals:
    """Stationarity diagnostics for the consensus problem (2).

    * ``primal``: mean ‖w_i − θ‖ (consensus violation),
    * ``dual_balance``: ‖(1/m) Σ y_i‖ (should vanish at optimality since
      Σ y_i* = 0),
    * ``stationarity``: mean ‖∇f_i(w_i) + y_i‖ (client stationarity,
      requires gradients to be supplied).
    """

    primal: float
    dual_balance: float
    stationarity: float | None = None


def kkt_residuals(
    client_params: list[np.ndarray],
    client_duals: list[np.ndarray],
    theta: np.ndarray,
    client_gradients: list[np.ndarray] | None = None,
) -> KKTResiduals:
    """Compute :class:`KKTResiduals` from current iterates.

    ``client_gradients[i]`` should be ``∇f_i(w_i)`` if stationarity is wanted.
    """
    if len(client_params) != len(client_duals):
        raise ConfigurationError(
            f"got {len(client_params)} primal iterates but {len(client_duals)} duals"
        )
    if not client_params:
        raise ConfigurationError("need at least one client iterate")

    primal = float(
        np.mean([np.linalg.norm(w - theta) for w in client_params])
    )
    dual_mean = np.mean(np.stack(client_duals), axis=0)
    dual_balance = float(np.linalg.norm(dual_mean))

    stationarity = None
    if client_gradients is not None:
        if len(client_gradients) != len(client_params):
            raise ConfigurationError(
                "client_gradients must align with client_params"
            )
        stationarity = float(
            np.mean(
                [
                    np.linalg.norm(grad + y)
                    for grad, y in zip(client_gradients, client_duals)
                ]
            )
        )
    return KKTResiduals(
        primal=primal, dual_balance=dual_balance, stationarity=stationarity
    )
