"""Proximal-coefficient (ρ) schedules.

The paper's headline claim about ρ is that FedADMM works with a *fixed*
ρ = 0.01 across datasets, scales, and heterogeneity levels (Theorem 1 and
Remark 1 support a constant, dimension-free choice), in sharp contrast to
FedProx which must be re-tuned per setting (Table V).  Fig. 9 additionally
explores a simple dynamic adaptation — small ρ early, larger ρ later — which
the piecewise schedule expresses.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError


class RhoSchedule:
    """Interface: ρ for a given round."""

    def value(self, round_index: int) -> float:
        """Return ρ used by selected clients in round ``round_index``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description for tables and logs."""
        return type(self).__name__


class ConstantRho(RhoSchedule):
    """A fixed ρ (the paper fixes ρ = 0.01 for FedADMM everywhere)."""

    def __init__(self, rho: float = 0.01):
        if rho <= 0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        self.rho = rho

    def value(self, round_index: int) -> float:
        return self.rho

    def describe(self) -> str:
        return f"rho={self.rho}"


class PiecewiseRho(RhoSchedule):
    """Switch ρ at given round boundaries (Fig. 9's dynamic adaptation)."""

    def __init__(self, values: Sequence[float], boundaries: Sequence[int]):
        if len(values) != len(boundaries) + 1:
            raise ConfigurationError(
                "values must have exactly one more element than boundaries"
            )
        if any(v <= 0 for v in values):
            raise ConfigurationError("every rho value must be positive")
        if list(boundaries) != sorted(boundaries):
            raise ConfigurationError("boundaries must be sorted ascending")
        self.values = list(values)
        self.boundaries = list(boundaries)

    def value(self, round_index: int) -> float:
        segment = 0
        for boundary in self.boundaries:
            if round_index >= boundary:
                segment += 1
        return self.values[segment]

    def describe(self) -> str:
        return f"rho piecewise {self.values} at {self.boundaries}"
