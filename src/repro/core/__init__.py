"""FedADMM core: the paper's primary contribution, decomposed into parts.

* :mod:`repro.core.augmented_lagrangian` — the local objective
  ``L_i(w_i, y_i, θ)`` of eq. (3) and its gradient.
* :mod:`repro.core.dual` — dual updates, the augmented model
  ``u_i = w_i + y_i / ρ``, the update message ``Δ_i`` of eq. (4), and KKT
  residuals.
* :mod:`repro.core.admm_client` — ``ClientUpdate`` (Algorithm 1, lines 12–21).
* :mod:`repro.core.admm_server` — the tracking server update of eq. (5).
* :mod:`repro.core.stepsize` — server step-size policies η.
* :mod:`repro.core.rho` — proximal-coefficient schedules ρ.
* :mod:`repro.core.convergence` — Theorem 1 constants, the optimality gap
  ``V_t`` of eq. (7), and the Table I round-complexity predictors.
"""

from repro.core.augmented_lagrangian import AugmentedLagrangian
from repro.core.dual import (
    augmented_model,
    dual_update,
    update_message,
    kkt_residuals,
    KKTResiduals,
)
from repro.core.admm_client import AdmmClientResult, admm_client_update
from repro.core.admm_server import admm_server_update, average_aggregate
from repro.core.stepsize import (
    ServerStepSize,
    ConstantStepSize,
    ParticipationScaledStepSize,
    PiecewiseStepSize,
)
from repro.core.rho import RhoSchedule, ConstantRho, PiecewiseRho
from repro.core.convergence import (
    Theorem1Constants,
    theorem1_constants,
    minimum_rho,
    optimality_gap,
    expected_rounds_bound,
    round_complexity,
    COMPLEXITY_TABLE,
)

__all__ = [
    "AugmentedLagrangian",
    "augmented_model",
    "dual_update",
    "update_message",
    "kkt_residuals",
    "KKTResiduals",
    "AdmmClientResult",
    "admm_client_update",
    "admm_server_update",
    "average_aggregate",
    "ServerStepSize",
    "ConstantStepSize",
    "ParticipationScaledStepSize",
    "PiecewiseStepSize",
    "RhoSchedule",
    "ConstantRho",
    "PiecewiseRho",
    "Theorem1Constants",
    "theorem1_constants",
    "minimum_rho",
    "optimality_gap",
    "expected_rounds_bound",
    "round_complexity",
    "COMPLEXITY_TABLE",
]
