"""FedADMM ClientUpdate — Algorithm 1, lines 12–21.

A selected client i, holding its persistent primal/dual pair ``(w_i, y_i)``:

1. (optionally warm-started from ``w_i``, or restarted from the downloaded
   global model θ — Fig. 8 of the paper studies both) runs ``E_i`` epochs of
   SGD on the augmented Lagrangian, with per-batch direction
   ``∇f_i(w; b) + y_i + ρ (w − θ)``,
2. updates its dual ``y_i ← y_i + ρ (w_i − θ)``,
3. forms the update message ``Δ_i`` (difference of augmented models, eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import LocalTrainingConfig, run_local_sgd
from repro.core.augmented_lagrangian import AugmentedLagrangian
from repro.core.dual import dual_update, update_message
from repro.exceptions import ConfigurationError
from repro.federated.local_problem import LocalProblem
from repro.utils.rng import SeedLike


@dataclass
class AdmmClientResult:
    """Output of one FedADMM client update."""

    w_new: np.ndarray
    y_new: np.ndarray
    delta: np.ndarray
    train_loss: float


def admm_client_update(
    problem: LocalProblem,
    w_old: np.ndarray,
    y_old: np.ndarray,
    theta: np.ndarray,
    rho: float,
    config: LocalTrainingConfig,
    rng: SeedLike = None,
    warm_start: bool = True,
) -> AdmmClientResult:
    """Run Algorithm 1's ClientUpdate and return the new state plus ``Δ_i``.

    Parameters
    ----------
    warm_start:
        ``True`` (paper's recommended choice, "initialisation I") starts local
        SGD from the stored local model ``w_i``; ``False`` ("initialisation
        II") restarts from the downloaded global model θ.
    """
    if rho <= 0:
        raise ConfigurationError(f"FedADMM requires rho > 0, got {rho}")
    lagrangian = AugmentedLagrangian(rho)
    start = w_old if warm_start else theta

    def extra_grad(params: np.ndarray) -> np.ndarray:
        return lagrangian.penalty_gradient(params, y_old, theta)

    w_new, train_loss = run_local_sgd(
        problem, start, config, rng=rng, extra_grad=extra_grad
    )
    y_new = dual_update(y_old, w_new, theta, rho)
    delta = update_message(w_new, y_new, w_old, y_old, rho)
    return AdmmClientResult(w_new=w_new, y_new=y_new, delta=delta, train_loss=train_loss)
