"""FedADMM server aggregation — the tracking update of eq. (5).

    θ_{t+1} = θ_t + (η / |S_t|) Σ_{i ∈ S_t} Δ_i.

Because Δ_i is a *difference* of augmented models, the server effectively
tracks the running average of all clients' augmented models (exactly so when
η = |S_t| / m, as used in the analysis), which incorporates past information
and damps oscillations compared to FedAvg-style re-averaging.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def admm_server_update(
    theta: np.ndarray, deltas: list[np.ndarray], eta: float
) -> np.ndarray:
    """Apply eq. (5) given the selected clients' update messages."""
    if not deltas:
        raise ConfigurationError("server update requires at least one client message")
    if eta <= 0:
        raise ConfigurationError(f"server step size eta must be positive, got {eta}")
    stacked = np.stack(deltas)
    return theta + (eta / len(deltas)) * stacked.sum(axis=0)


def average_aggregate(client_params: list[np.ndarray], weights=None) -> np.ndarray:
    """FedAvg-style (weighted) averaging of uploaded client models.

    Used by the baselines and by the tracking-vs-averaging ablation bench.
    """
    if not client_params:
        raise ConfigurationError("average_aggregate requires at least one model")
    stacked = np.stack(client_params)
    if weights is None:
        return stacked.mean(axis=0)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (stacked.shape[0],):
        raise ConfigurationError(
            f"weights shape {weights.shape} does not match {stacked.shape[0]} models"
        )
    total = weights.sum()
    if total <= 0:
        raise ConfigurationError("weights must sum to a positive value")
    return (stacked * weights[:, None]).sum(axis=0) / total
