"""Algorithm interface shared by FedADMM and all baselines.

A federated algorithm is defined by three pieces, mirroring Algorithm 1 in
the paper:

1. how a selected client trains locally and what it uploads
   (:meth:`FederatedAlgorithm.local_update`),
2. how the server combines the uploads into a new global model
   (:meth:`FederatedAlgorithm.aggregate`),
3. what persistent state (if any) clients and server carry across rounds
   (:meth:`init_client_state` / :meth:`init_server_state`).

The simulation engine in :mod:`repro.federated.engine` is agnostic to which
algorithm it runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.federated.client import ClientState
    from repro.federated.local_problem import LocalProblem
    from repro.federated.messages import ClientMessage
    from repro.federated.staleness import StaleUpdate
    from repro.nn.batched import BatchedCohort


@dataclass
class LocalTrainingConfig:
    """Per-round local-training knobs handed to :meth:`local_update`.

    ``epochs`` is the realised number of local epochs for this client in this
    round (drawn by the system-heterogeneity policy); ``batch_size=None``
    means full-batch, matching the paper's ``B = inf`` setting.
    """

    epochs: int
    batch_size: int | None
    learning_rate: float

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive or None, got {self.batch_size}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )


class UpdateAccumulator:
    """Streaming alternative to :meth:`FederatedAlgorithm.aggregate`.

    An accumulator folds client messages into a running partial one at a
    time (``accumulate``), combines partials produced by different shards
    (``merge``), and produces the next global model (``finalise``).  The
    hierarchical execution plan feeds each edge aggregator's survivors
    through its own accumulator and merges the per-shard partials at the
    root, so no tier ever holds a full cohort's message list.

    ``count`` is the number of messages folded in so far (merges
    included); callers skip ``finalise`` when it is zero (an abandoned
    round leaves the global model unchanged).
    """

    def __init__(self, num_clients: int, round_index: int):
        self.num_clients = num_clients
        self.round_index = round_index
        self.count = 0

    def accumulate(self, message: ClientMessage) -> None:
        """Fold one client message into the running partial."""
        raise NotImplementedError

    def merge(self, other: "UpdateAccumulator") -> None:
        """Fold another accumulator's partial into this one."""
        raise NotImplementedError

    def finalise(self) -> np.ndarray:
        """Produce the next global parameter vector from the partial."""
        raise NotImplementedError


class BufferedAccumulator(UpdateAccumulator):
    """Fallback accumulator: collect messages, delegate to ``aggregate``.

    Implemented once here so *every* algorithm gains the streaming call
    surface, but this fallback is **not** constant-memory — it holds every
    accumulated message until ``finalise``.  Algorithms with genuinely
    associative aggregation rules (FedAvg's running average, FedADMM's
    delta sum) override :meth:`FederatedAlgorithm.make_accumulator` with a
    true constant-memory reduction.
    """

    def __init__(
        self,
        algorithm: "FederatedAlgorithm",
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        num_clients: int,
        round_index: int,
    ):
        super().__init__(num_clients, round_index)
        self.algorithm = algorithm
        self.global_params = global_params
        self.server_state = server_state
        self.messages: list[ClientMessage] = []

    def accumulate(self, message: ClientMessage) -> None:
        self.messages.append(message)
        self.count += 1

    def merge(self, other: "BufferedAccumulator") -> None:
        self.messages.extend(other.messages)
        self.count += other.count

    def finalise(self) -> np.ndarray:
        if not self.messages:
            raise ConfigurationError("finalise requires at least one message")
        return self.algorithm.aggregate(
            self.global_params,
            self.server_state,
            self.messages,
            self.num_clients,
            self.round_index,
        )


class FederatedAlgorithm:
    """Base class for federated optimisation algorithms."""

    name = "base"

    #: Whether buffered execution plans (the fully asynchronous and the
    #: deadline-bounded semi-synchronous plan, see
    #: :mod:`repro.federated.plans`) may drive this algorithm.  Methods
    #: whose server state is inherently lock-step (SCAFFOLD's control
    #: variate, FedPD's per-round communication coin) opt out.
    supports_async = True

    #: Whether :meth:`batched_local_update` is implemented, i.e. the
    #: :class:`~repro.systems.executor.VectorizedExecutor` may run a whole
    #: same-shape cohort of this algorithm's clients as stacked NumPy
    #: operations.  Algorithms whose local update is not a pure function of
    #: ``(start, batches, extra gradient term)`` — SCAFFOLD's control
    #: variates, FedPD's communication coin — leave this ``False`` and are
    #: executed per client even under the vectorized executor.
    supports_batched = False

    #: Whether :meth:`local_update` consumes the mini-batch shuffling RNG.
    #: The vectorized executor pre-draws each task's epoch permutations in
    #: task order so its RNG stream consumption matches the serial
    #: executor's; full-gradient methods (FedSGD) never shuffle and must
    #: not trigger those draws.
    shuffles_minibatches = True

    @classmethod
    def supports_plan(cls, plan_name: str) -> bool:
        """Whether the named execution plan may drive this algorithm.

        Buffered plans (``"async"``, ``"semisync"``) mix updates trained
        against different model versions and therefore require
        ``supports_async``; the lock-step ``"sync"`` plan works for every
        algorithm.  This is the single gate consulted by both the plans'
        bind-time validation and the experiments layer's algorithm
        filtering; override for finer-grained opt-outs.
        """
        if plan_name in ("async", "semisync"):
            return bool(cls.supports_async)
        return True

    # ------------------------------------------------------------------ #
    # State initialisation
    # ------------------------------------------------------------------ #
    def init_server_state(
        self, initial_params: np.ndarray, num_clients: int
    ) -> dict[str, np.ndarray]:
        """Create the server's persistent state (empty for most methods)."""
        return {}

    def init_client_state(
        self, client: ClientState, initial_params: np.ndarray
    ) -> None:
        """Lazily create the client's persistent variables (no-op by default)."""

    # ------------------------------------------------------------------ #
    # The two halves of a round
    # ------------------------------------------------------------------ #
    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        """Run local training for one selected client and build its upload."""
        raise NotImplementedError

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list[ClientMessage],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        """Combine client messages into the next global model."""
        raise NotImplementedError

    def make_accumulator(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        num_clients: int,
        round_index: int,
    ) -> UpdateAccumulator:
        """Create a fresh per-round streaming accumulator.

        The default buffers messages and delegates to :meth:`aggregate`,
        which is correct for every algorithm but not constant-memory;
        algorithms whose aggregation rule is an associative reduction
        (FedAvg, FedADMM) override this with one that keeps only a running
        sum.  The hierarchical plan creates one accumulator per shard plus
        one at the root and merges shard partials upward.
        """
        return BufferedAccumulator(
            self, global_params, server_state, num_clients, round_index
        )

    # ------------------------------------------------------------------ #
    # Vectorized cohort execution (see repro.systems.executor)
    # ------------------------------------------------------------------ #
    def batched_local_update(
        self,
        cohort: BatchedCohort,
        clients: list[ClientState],
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
    ) -> list[ClientMessage]:
        """Run every cohort member's local update as stacked NumPy ops.

        ``cohort`` stacks the clients' datasets (and pre-drawn epoch
        shuffles) along a leading client axis; ``clients`` is the aligned
        list of :class:`ClientState` objects whose persistent variables and
        participation counters must be mutated exactly as
        :meth:`local_update` would.  Returns one :class:`ClientMessage` per
        cohort member, in cohort order.  Only called when
        ``supports_batched`` is true.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement batched execution"
        )

    def build_cohort_messages(
        self,
        clients: list[ClientState],
        cohort: BatchedCohort,
        local_epochs: int,
        train_losses: np.ndarray,
        payload_for,
        metadata: dict | None = None,
    ) -> list[ClientMessage]:
        """Shared upload assembly for every ``batched_local_update``.

        Records each client's participation and builds its
        :class:`ClientMessage` exactly as the serial ``local_update``
        paths do; ``payload_for(index)`` supplies the algorithm-specific
        payload for cohort member ``index``.  Keeping this in one place
        means cohort bookkeeping (participation accounting, sample
        counts) cannot drift between the batched algorithms.
        """
        from repro.federated.messages import ClientMessage

        messages = []
        for index, client in enumerate(clients):
            client.record_participation(local_epochs)
            messages.append(
                ClientMessage(
                    client_id=client.client_id,
                    payload=payload_for(index),
                    num_samples=cohort.num_samples,
                    local_epochs=local_epochs,
                    train_loss=float(train_losses[index]),
                    metadata=dict(metadata) if metadata else {},
                )
            )
        return messages

    # ------------------------------------------------------------------ #
    # Buffered aggregation (see repro.federated.plans)
    # ------------------------------------------------------------------ #
    def message_delta(
        self, message: ClientMessage, base_params: np.ndarray
    ) -> np.ndarray:
        """The additive model update one message encodes.

        The asynchronous server mixes updates trained against *different*
        model versions, so it needs every upload expressed as a delta
        against the parameters its client actually downloaded
        (``base_params``).  Delta-style uploads (FedADMM) pass through;
        whole-model uploads (FedAvg/FedProx) difference against their base.
        Algorithms with other payloads override this.
        """
        if "delta" in message.payload:
            return message.payload["delta"]
        if "params" in message.payload:
            return message.payload["params"] - base_params
        raise ConfigurationError(
            f"{type(self).__name__} cannot derive an async update from "
            f"payload keys {sorted(message.payload)}; override message_delta"
        )

    def aggregate_async(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        updates: list[StaleUpdate],
        num_clients: int,
        version: int,
    ) -> np.ndarray:
        """Mix a buffer of possibly-stale updates into the next model version.

        Default: plain staleness damping (the FedBuff/FedAsync recipe) —
        each update's delta is scaled by its staleness weight and the
        buffer mean is applied, so stale contributions genuinely count for
        less.  With fresh updates and constant weights this reproduces the
        synchronous uniform aggregate.  FedADMM overrides this with its
        dual-corrected server update.
        """
        if not updates:
            raise ConfigurationError("aggregate_async needs at least one update")
        scaled = [
            update.weight * self.message_delta(update.message, update.base_params)
            for update in updates
        ]
        return global_params + np.stack(scaled).sum(axis=0) / len(updates)

    # ------------------------------------------------------------------ #
    # Communication accounting
    # ------------------------------------------------------------------ #
    def download_floats(self, dim: int) -> int:
        """Scalars downloaded by one selected client per round.

        Every method ships the global model; SCAFFOLD additionally ships the
        server control variate and overrides this.
        """
        return dim

    def upload_floats(self, dim: int) -> int:
        """Scalars uploaded by one selected client per round (nominal).

        Derived from :meth:`upload_vector_dims`; override that method (not
        this one) so the transport layer's per-vector wire-size prediction
        stays consistent with the float count.
        """
        return sum(self.upload_vector_dims(dim))

    def upload_vector_dims(self, dim: int) -> tuple[int, ...]:
        """Sizes of the flat vectors one upload contains.

        Transport codecs compress each payload vector separately (paying any
        per-vector overhead once per vector), so size prediction needs the
        vector structure, not just the total float count.
        """
        return (dim,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def run_local_sgd(
    problem: LocalProblem,
    start_params: np.ndarray,
    config: LocalTrainingConfig,
    rng: SeedLike,
    extra_grad=None,
) -> tuple[np.ndarray, float]:
    """Run ``config.epochs`` epochs of SGD on the local loss plus an optional term.

    Parameters
    ----------
    extra_grad:
        Optional callable ``extra_grad(params) -> np.ndarray`` added to every
        stochastic gradient.  FedProx passes ``rho * (w - theta)``; FedADMM
        passes ``y + rho * (w - theta)``; SCAFFOLD passes ``c - c_i``.

    Returns
    -------
    (final_params, mean_train_loss)
        The locally trained parameters and the mean mini-batch loss observed
        over all steps (the value of the *local data loss*, excluding the
        extra term, which is what the paper plots).
    """
    params = np.array(start_params, dtype=np.float64, copy=True)
    losses: list[float] = []
    for _ in range(config.epochs):
        for features, labels in problem.minibatches(config.batch_size, rng=rng):
            loss_value, grad = problem.loss_and_grad(params, features, labels)
            losses.append(loss_value)
            if extra_grad is not None:
                grad = grad + extra_grad(params)
            params -= config.learning_rate * grad
    mean_loss = float(np.mean(losses)) if losses else float("nan")
    return params, mean_loss
