"""FedDropoutAvg (Gunesli et al., 2021).

Each selected client trains like FedAvg but uploads a randomly *masked*
model: a per-client binary dropout mask zeroes a fraction of the trained
coordinates, and the server averages each coordinate over only the clients
that reported it.  The random masks act as aggregation-level dropout —
a regulariser against client-specific overfitting — and shrink the useful
upload (zeroed coordinates compress away under sparsifying codecs).

The mask travels in the payload (``"mask"``) so the server-side
mask-aware average stays a pure function of the messages; coordinates no
client reported fall back to the previous global value.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    FederatedAlgorithm,
    LocalTrainingConfig,
    UpdateAccumulator,
    run_local_sgd,
)
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.utils.rng import SeedLike, as_rng


class MaskedAverageAccumulator(UpdateAccumulator):
    """Constant-memory mask-aware reduction: masked sum + per-coordinate count.

    NumPy's sequential row accumulation makes the running sums reproduce
    the batch ``aggregate`` bit for bit; ``merge`` adopts the first shard's
    arrays unchanged so a single-shard hierarchy finalises the exact arrays
    its edge tier built.
    """

    def __init__(
        self, global_params: np.ndarray, num_clients: int, round_index: int
    ):
        super().__init__(num_clients, round_index)
        self.global_params = global_params
        self.masked_total: np.ndarray | None = None
        self.mask_total: np.ndarray | None = None

    def accumulate(self, message: ClientMessage) -> None:
        params = message.payload["params"]
        mask = message.payload["mask"]
        if self.masked_total is None:
            self.masked_total = np.array(params, dtype=np.float64, copy=True)
            self.mask_total = np.array(mask, dtype=np.float64, copy=True)
        else:
            self.masked_total += params
            self.mask_total += mask
        self.count += 1

    def merge(self, other: "MaskedAverageAccumulator") -> None:
        if other.count == 0:
            return
        if self.masked_total is None:
            self.masked_total = other.masked_total
            self.mask_total = other.mask_total
        else:
            self.masked_total += other.masked_total
            self.mask_total += other.mask_total
        self.count += other.count

    def finalise(self) -> np.ndarray:
        if self.count == 0 or self.masked_total is None:
            raise ConfigurationError("FedDropoutAvg accumulator has no messages")
        reported = self.mask_total > 0
        out = np.array(self.global_params, dtype=np.float64, copy=True)
        out[reported] = self.masked_total[reported] / self.mask_total[reported]
        return out


class FedDropoutAvg(FederatedAlgorithm):
    """FedAvg with per-client random model dropout before upload."""

    name = "feddropoutavg"
    #: Mask-aware aggregation needs every mask from one lock-step cohort;
    #: a stale masked model has no meaningful delta against newer params.
    supports_async = False
    #: The per-client mask draw happens inside local_update, after SGD, so
    #: the batched kernel path cannot reproduce it; the vectorized executor
    #: falls back to bit-identical per-task execution.
    supports_batched = False

    def __init__(self, dropout_rate: float = 0.25):
        if not 0 <= dropout_rate < 1:
            raise ConfigurationError(
                f"dropout_rate must lie in [0, 1), got {dropout_rate}"
            )
        self.dropout_rate = dropout_rate

    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        rng = as_rng(rng)
        params, train_loss = run_local_sgd(problem, global_params, config, rng=rng)
        # The mask is drawn *after* training from the same task stream, so
        # the SGD trajectory is identical to FedAvg's for a fixed seed.
        mask = (rng.random(params.size) >= self.dropout_rate).astype(np.float64)
        client.record_participation(config.epochs)
        return ClientMessage(
            client_id=client.client_id,
            payload={"params": params * mask, "mask": mask},
            num_samples=problem.num_samples,
            local_epochs=config.epochs,
            train_loss=train_loss,
            metadata={"dropout_rate": self.dropout_rate},
        )

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list[ClientMessage],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        if not messages:
            raise ConfigurationError(
                "FedDropoutAvg.aggregate needs at least one message"
            )
        accumulator = self.make_accumulator(
            global_params, server_state, num_clients, round_index
        )
        for message in messages:
            accumulator.accumulate(message)
        return accumulator.finalise()

    def make_accumulator(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        num_clients: int,
        round_index: int,
    ) -> MaskedAverageAccumulator:
        return MaskedAverageAccumulator(global_params, num_clients, round_index)

    def upload_vector_dims(self, dim: int) -> tuple[int, ...]:
        # The masked model plus its binary mask both travel on the wire.
        return (dim, dim)
