"""FedSGD: one exact local gradient per round, averaged at the server.

Each selected client evaluates the full gradient of its local loss at the
current global model and uploads it; the server applies one SGD step with the
averaged gradient.  FedSGD is the slowest baseline in the paper's Table III
and serves as the reference point for every speedup factor.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm, LocalTrainingConfig
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.utils.rng import SeedLike


class FedSGD(FederatedAlgorithm):
    """Distributed synchronous SGD over the selected clients."""

    name = "fedsgd"
    supports_batched = True
    # One exact full-dataset gradient per round: no mini-batch shuffling,
    # so the vectorized executor must not pre-draw epoch permutations.
    shuffles_minibatches = False

    def __init__(self, server_learning_rate: float = 0.1):
        if server_learning_rate <= 0:
            raise ConfigurationError(
                f"server_learning_rate must be positive, got {server_learning_rate}"
            )
        self.server_learning_rate = server_learning_rate

    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        loss_value, grad = problem.full_loss_and_grad(global_params)
        client.record_participation(epochs=1)
        return ClientMessage(
            client_id=client.client_id,
            payload={"gradient": grad},
            num_samples=problem.num_samples,
            local_epochs=1,
            train_loss=loss_value,
        )

    def batched_local_update(
        self,
        cohort,
        clients: list[ClientState],
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
    ) -> list[ClientMessage]:
        losses, grads = cohort.full_loss_and_grad(global_params)
        # One exact gradient per round: local_epochs is 1 regardless of
        # the config, exactly as in the serial local_update.
        return self.build_cohort_messages(
            clients, cohort, 1, losses,
            lambda index: {"gradient": grads[index].copy()},
        )

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list[ClientMessage],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        if not messages:
            raise ConfigurationError("FedSGD.aggregate needs at least one message")
        gradients = np.stack([msg.payload["gradient"] for msg in messages])
        return global_params - self.server_learning_rate * gradients.mean(axis=0)

    def message_delta(self, message, base_params: np.ndarray) -> np.ndarray:
        """One server SGD step along the (possibly stale) client gradient."""
        return -self.server_learning_rate * message.payload["gradient"]
