"""SCAFFOLD (Karimireddy et al., 2020).

Stochastic controlled averaging: the server maintains a control variate ``c``
and each client a control variate ``c_i``.  Local SGD steps are corrected by
``c − c_i`` to counter client drift; after training, the client refreshes
``c_i`` (option II of the original paper) and uploads *two* d-dimensional
vectors — the model delta and the control-variate delta — which is why the
paper repeatedly notes SCAFFOLD doubles the per-round upload relative to
FedAvg/FedProx/FedADMM.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm, LocalTrainingConfig
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.utils.rng import SeedLike, as_rng


class Scaffold(FederatedAlgorithm):
    """SCAFFOLD with option-II control-variate refresh."""

    name = "scaffold"

    #: The server control variate assumes lock-step rounds: an update's
    #: control delta is only meaningful against the server state it was
    #: computed from, so SCAFFOLD opts out of asynchronous aggregation.
    supports_async = False

    #: The drift correction is constant within a round, so a whole cohort's
    #: corrected SGD runs as one stacked ``extra_grad`` term (control
    #: variates stacked along the client axis).
    supports_batched = True

    def __init__(self, server_step_size: float = 1.0):
        if server_step_size <= 0:
            raise ConfigurationError(
                f"server_step_size must be positive, got {server_step_size}"
            )
        self.server_step_size = server_step_size

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    def init_server_state(
        self, initial_params: np.ndarray, num_clients: int
    ) -> dict[str, np.ndarray]:
        return {"control": np.zeros_like(initial_params)}

    def init_client_state(
        self, client: ClientState, initial_params: np.ndarray
    ) -> None:
        if not client.has("control"):
            client.set("control", np.zeros_like(initial_params))

    # ------------------------------------------------------------------ #
    # Round
    # ------------------------------------------------------------------ #
    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        self.init_client_state(client, global_params)
        rng = as_rng(rng)
        server_control = server_state["control"]
        client_control = client.get("control")

        params = np.array(global_params, dtype=np.float64, copy=True)
        correction = server_control - client_control
        losses: list[float] = []
        num_steps = 0
        for _ in range(config.epochs):
            for features, labels in problem.minibatches(config.batch_size, rng=rng):
                loss_value, grad = problem.loss_and_grad(params, features, labels)
                losses.append(loss_value)
                params -= config.learning_rate * (grad + correction)
                num_steps += 1

        # Option II refresh: c_i+ = c_i - c + (theta - w) / (K * lr).
        if num_steps == 0:
            raise ConfigurationError("SCAFFOLD client performed zero local steps")
        new_control = client_control - server_control + (
            global_params - params
        ) / (num_steps * config.learning_rate)

        delta_params = params - global_params
        delta_control = new_control - client_control
        client.set("control", new_control)
        client.record_participation(config.epochs)
        return ClientMessage(
            client_id=client.client_id,
            payload={"delta_params": delta_params, "delta_control": delta_control},
            num_samples=problem.num_samples,
            local_epochs=config.epochs,
            train_loss=float(np.mean(losses)),
        )

    def batched_local_update(
        self,
        cohort,
        clients: list[ClientState],
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
    ) -> list[ClientMessage]:
        """A cohort of corrected local updates as one stacked SGD run.

        The per-client correction ``c − c_i`` is fixed for the whole round,
        so it stacks into a single ``(C, dim)`` ``extra_grad`` term; the
        option-II refresh divides by the shared step count (cohorts group
        on ``(n, epochs, batch_size)``, so ``K`` is identical across the
        cohort).  Numerics match :meth:`local_update` client for client up
        to stacked-matmul reduction order.
        """
        from repro.nn.batched import batched_run_local_sgd, local_steps_per_round

        for client in clients:
            self.init_client_state(client, global_params)
        server_control = server_state["control"]
        client_controls = np.stack([client.get("control") for client in clients])
        correction = server_control[None, :] - client_controls

        start = np.broadcast_to(
            global_params, (len(clients), global_params.size)
        )
        params, losses = batched_run_local_sgd(
            cohort, start, config, extra_grad=lambda _: correction
        )

        num_steps = local_steps_per_round(cohort.num_samples, config)
        if num_steps == 0:
            raise ConfigurationError("SCAFFOLD client performed zero local steps")
        new_controls = client_controls - server_control[None, :] + (
            global_params[None, :] - params
        ) / (num_steps * config.learning_rate)

        delta_params = params - global_params[None, :]
        delta_controls = new_controls - client_controls
        for index, client in enumerate(clients):
            client.set("control", new_controls[index])
        return self.build_cohort_messages(
            clients,
            cohort,
            config.epochs,
            losses,
            lambda index: {
                "delta_params": delta_params[index].copy(),
                "delta_control": delta_controls[index].copy(),
            },
        )

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list[ClientMessage],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        if not messages:
            raise ConfigurationError("Scaffold.aggregate needs at least one message")
        delta_params = np.stack([msg.payload["delta_params"] for msg in messages])
        delta_control = np.stack([msg.payload["delta_control"] for msg in messages])
        new_params = global_params + self.server_step_size * delta_params.mean(axis=0)
        server_state["control"] = server_state["control"] + (
            len(messages) / num_clients
        ) * delta_control.mean(axis=0)
        return new_params

    # ------------------------------------------------------------------ #
    # Communication accounting (double upload and download)
    # ------------------------------------------------------------------ #
    def download_floats(self, dim: int) -> int:
        return 2 * dim

    def upload_vector_dims(self, dim: int) -> tuple[int, ...]:
        return (dim, dim)
