"""Federated optimisation algorithms: FedADMM and the paper's baselines."""

from repro.algorithms.base import (
    FederatedAlgorithm,
    LocalTrainingConfig,
    run_local_sgd,
)
from repro.algorithms.fedsgd import FedSGD
from repro.algorithms.fedavg import FedAvg
from repro.algorithms.fedprox import FedProx
from repro.algorithms.scaffold import Scaffold
from repro.algorithms.fedadmm import FedADMM
from repro.algorithms.fedpd import FedPD
from repro.algorithms.feddropoutavg import FedDropoutAvg

__all__ = [
    "FederatedAlgorithm",
    "LocalTrainingConfig",
    "run_local_sgd",
    "FedSGD",
    "FedAvg",
    "FedProx",
    "Scaffold",
    "FedADMM",
    "FedPD",
    "FedDropoutAvg",
    "ALGORITHM_REGISTRY",
    "build_algorithm",
]

ALGORITHM_REGISTRY: dict[str, type[FederatedAlgorithm]] = {
    "fedsgd": FedSGD,
    "fedavg": FedAvg,
    "fedprox": FedProx,
    "scaffold": Scaffold,
    "fedadmm": FedADMM,
    "fedpd": FedPD,
    "feddropoutavg": FedDropoutAvg,
}


def build_algorithm(name: str, **kwargs) -> FederatedAlgorithm:
    """Instantiate an algorithm by its registry name."""
    from repro.exceptions import ConfigurationError

    key = name.lower()
    if key not in ALGORITHM_REGISTRY:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHM_REGISTRY)}"
        )
    return ALGORITHM_REGISTRY[key](**kwargs)
