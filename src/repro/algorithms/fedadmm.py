"""FedADMM — Algorithm 1 of the paper, the primary contribution.

Each selected client keeps a persistent primal/dual pair ``(w_i, y_i)``.
On selection it inexactly minimises the augmented Lagrangian of eq. (3),
updates its dual, and uploads the difference of augmented models Δ_i (eq. 4);
the server applies the tracking update θ ← θ + (η/|S_t|) Σ Δ_i (eq. 5).

The class composes the building blocks in :mod:`repro.core`:

* ``rho`` may be a float or a :class:`repro.core.rho.RhoSchedule`
  (the dynamic-ρ study of Fig. 9),
* ``server_step_size`` may be a float, ``"participation"`` (η = |S_t|/m, the
  analysed choice), or a :class:`repro.core.stepsize.ServerStepSize`
  (the η study of Fig. 6),
* ``warm_start`` selects local initialisation I (from w_i, recommended) or II
  (from θ) — the Fig. 8 study,
* ``use_duals=False`` disables the dual variables entirely, which by
  Section III-B must make FedADMM's local problem coincide with FedProx's;
  this ablation switch is exercised by the property tests.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    FederatedAlgorithm,
    LocalTrainingConfig,
    UpdateAccumulator,
)
from repro.core.admm_client import admm_client_update
from repro.core.admm_server import admm_server_update
from repro.core.rho import ConstantRho, RhoSchedule
from repro.core.stepsize import (
    ConstantStepSize,
    ParticipationScaledStepSize,
    ServerStepSize,
)
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.utils.rng import SeedLike


def _coerce_rho(rho) -> RhoSchedule:
    if isinstance(rho, RhoSchedule):
        return rho
    if isinstance(rho, (int, float)):
        return ConstantRho(float(rho))
    raise ConfigurationError(f"rho must be a number or RhoSchedule, got {type(rho)}")


def _coerce_step_size(step) -> ServerStepSize:
    if isinstance(step, ServerStepSize):
        return step
    if isinstance(step, str):
        if step.lower() in ("participation", "|s|/m", "s/m"):
            return ParticipationScaledStepSize()
        raise ConfigurationError(
            f"unknown server step size spec {step!r}; use 'participation' or a number"
        )
    if isinstance(step, (int, float)):
        return ConstantStepSize(float(step))
    raise ConfigurationError(
        f"server_step_size must be a number, 'participation', or ServerStepSize, "
        f"got {type(step)}"
    )


class DeltaSumAccumulator(UpdateAccumulator):
    """Constant-memory FedADMM reduction: a running Σ Δ_i.

    The tracking update θ + (η/|S_t|) Σ Δ_i of eq. (5) is an associative
    reduction over the deltas, so the accumulator keeps one running sum and
    a count; NumPy's axis-0 reductions accumulate rows sequentially, making
    ``finalise`` bit-identical to
    :func:`repro.core.admm_server.admm_server_update` on the full list.
    η is resolved at ``finalise`` from the *total* count, so shard merging
    cannot perturb participation-scaled step sizes.
    """

    def __init__(
        self,
        algorithm: "FedADMM",
        global_params: np.ndarray,
        num_clients: int,
        round_index: int,
    ):
        super().__init__(num_clients, round_index)
        self.algorithm = algorithm
        self.global_params = global_params
        self.total: np.ndarray | None = None

    def accumulate(self, message: ClientMessage) -> None:
        delta = message.payload["delta"]
        if self.total is None:
            self.total = np.array(delta, dtype=np.float64, copy=True)
        else:
            self.total += delta
        self.count += 1

    def merge(self, other: "DeltaSumAccumulator") -> None:
        if other.count == 0:
            return
        if self.total is None:
            self.total = other.total
        else:
            self.total += other.total
        self.count += other.count

    def finalise(self) -> np.ndarray:
        if self.count == 0 or self.total is None:
            raise ConfigurationError("FedADMM accumulator has no messages")
        eta = self.algorithm.step_size_policy.value(
            self.round_index, self.count, self.num_clients
        )
        if eta <= 0:
            raise ConfigurationError(f"server step size must be positive, got {eta}")
        return self.global_params + (eta / self.count) * self.total


class FedADMM(FederatedAlgorithm):
    """The paper's primal-dual federated learning algorithm."""

    name = "fedadmm"
    supports_batched = True

    def __init__(
        self,
        rho: float | RhoSchedule = 0.01,
        server_step_size: float | str | ServerStepSize = 1.0,
        warm_start: bool = True,
        use_duals: bool = True,
    ):
        self.rho_schedule = _coerce_rho(rho)
        self.step_size_policy = _coerce_step_size(server_step_size)
        self.warm_start = warm_start
        self.use_duals = use_duals

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    def init_client_state(
        self, client: ClientState, initial_params: np.ndarray
    ) -> None:
        """Paper initialisation: w_i⁰ = θ⁰ and y_i⁰ = 0."""
        if not client.has("w"):
            client.set("w", initial_params)
        if not client.has("y"):
            client.set("y", np.zeros_like(initial_params))

    # ------------------------------------------------------------------ #
    # Round
    # ------------------------------------------------------------------ #
    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        self.init_client_state(client, global_params)
        rho = self.rho_schedule.value(round_index)
        w_old = client.get("w")
        y_old = client.get("y") if self.use_duals else np.zeros_like(global_params)

        result = admm_client_update(
            problem,
            w_old=w_old,
            y_old=y_old,
            theta=global_params,
            rho=rho,
            config=config,
            rng=rng,
            warm_start=self.warm_start,
        )

        client.set("w", result.w_new)
        if self.use_duals:
            client.set("y", result.y_new)
        client.record_participation(config.epochs)
        return ClientMessage(
            client_id=client.client_id,
            payload={"delta": result.delta},
            num_samples=problem.num_samples,
            local_epochs=config.epochs,
            train_loss=result.train_loss,
            metadata={"rho": rho},
        )

    def batched_local_update(
        self,
        cohort,
        clients: list[ClientState],
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
    ) -> list[ClientMessage]:
        """Stacked Algorithm 1 ClientUpdate: one SGD sweep for the cohort.

        The per-client state reads/writes, the dual update, and the Δ_i
        assembly follow :func:`repro.core.admm_client.admm_client_update`
        operation for operation, just with a leading client axis.
        """
        from repro.nn.batched import batched_run_local_sgd

        rho = self.rho_schedule.value(round_index)
        if rho <= 0:
            raise ConfigurationError(f"FedADMM requires rho > 0, got {rho}")
        for client in clients:
            self.init_client_state(client, global_params)
        theta = global_params[None, :]
        w_old = np.stack([client.get("w") for client in clients])
        if self.use_duals:
            y_old = np.stack([client.get("y") for client in clients])
        else:
            y_old = np.zeros_like(w_old)
        start = w_old if self.warm_start else np.broadcast_to(
            global_params, w_old.shape
        )

        def extra_grad(params: np.ndarray) -> np.ndarray:
            return y_old + rho * (params - theta)

        w_new, losses = batched_run_local_sgd(
            cohort, start, config, extra_grad=extra_grad
        )
        y_new = y_old + rho * (w_new - theta)
        delta = (w_new + y_new / rho) - (w_old + y_old / rho)

        for index, client in enumerate(clients):
            client.set("w", w_new[index])
            if self.use_duals:
                client.set("y", y_new[index])
        return self.build_cohort_messages(
            clients, cohort, config.epochs, losses,
            lambda index: {"delta": delta[index].copy()},
            metadata={"rho": rho},
        )

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list[ClientMessage],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        if not messages:
            raise ConfigurationError("FedADMM.aggregate needs at least one message")
        eta = self.step_size_policy.value(round_index, len(messages), num_clients)
        deltas = [msg.payload["delta"] for msg in messages]
        return admm_server_update(global_params, deltas, eta)

    def make_accumulator(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        num_clients: int,
        round_index: int,
    ) -> DeltaSumAccumulator:
        return DeltaSumAccumulator(self, global_params, num_clients, round_index)

    def aggregate_async(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        updates,
        num_clients: int,
        version: int,
    ) -> np.ndarray:
        """Apply stale dual updates as dual-corrected tracking deltas.

        The baselines upload whole models, so the asynchronous server must
        *reconstruct* an update by differencing against the stale anchor
        the client downloaded — the reconstruction drags the anchor's age
        into every aggregate.  FedADMM's Δ_i needs no reconstruction: it is
        a difference of *augmented* models in which the client's fresh dual
        y_i (updated against the θ it downloaded) is already folded, so the
        delta carries its own correction toward the consensus.  The server
        applies the tracking update of eq. (5) to those deltas unchanged;
        the engine's staleness weight enters only as a trust scalar on each
        delta's step, exactly where the η analysis permits scaling.
        """
        if not updates:
            raise ConfigurationError("FedADMM.aggregate_async needs updates")
        eta = self.step_size_policy.value(version, len(updates), num_clients)
        deltas = [
            update.weight * update.message.payload["delta"] for update in updates
        ]
        return admm_server_update(global_params, deltas, eta)
