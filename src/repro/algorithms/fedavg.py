"""FedAvg (McMahan et al., 2017).

Each selected client downloads θ, runs E epochs of SGD on its local loss
starting from θ, and uploads the resulting model; the server averages the
uploaded models.  Following the paper's experimental protocol, aggregation
uses equal client weights by default (``weighting="uniform"``), with
volume-proportional weights available as an option.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    FederatedAlgorithm,
    LocalTrainingConfig,
    UpdateAccumulator,
    run_local_sgd,
)
from repro.core.admm_server import average_aggregate
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.utils.rng import SeedLike


class RunningAverageAccumulator(UpdateAccumulator):
    """Constant-memory FedAvg reduction: one running (weighted) model sum.

    NumPy's axis-0 reductions accumulate rows sequentially, so the running
    sum here reproduces ``np.stack(models).mean(axis=0)`` bit for bit under
    uniform weighting.  Under ``weighting="samples"`` the *scalar* weight
    total is the one quantity the batch path reduces pairwise
    (``weights.sum()``), so weighted results can differ from the batch
    aggregate by ≤1 ulp once a cohort exceeds eight messages.
    """

    def __init__(self, weighting: str, num_clients: int, round_index: int):
        super().__init__(num_clients, round_index)
        self.weighting = weighting
        self.total: np.ndarray | None = None
        self.weight_total = 0.0

    def accumulate(self, message: ClientMessage) -> None:
        params = message.payload["params"]
        if self.weighting == "samples":
            weight = float(message.num_samples)
            contribution = params * weight
            self.weight_total += weight
        else:
            contribution = params
        if self.total is None:
            self.total = np.array(contribution, dtype=np.float64, copy=True)
        else:
            self.total += contribution
        self.count += 1

    def merge(self, other: "RunningAverageAccumulator") -> None:
        if other.count == 0:
            return
        if self.total is None:
            # Adopt the first shard's partial unchanged: a single-shard
            # hierarchy must finalise the exact array its edge tier built.
            self.total = other.total
        else:
            self.total += other.total
        self.weight_total += other.weight_total
        self.count += other.count

    def finalise(self) -> np.ndarray:
        if self.count == 0 or self.total is None:
            raise ConfigurationError("FedAvg accumulator has no messages")
        if self.weighting == "samples":
            if self.weight_total <= 0:
                raise ConfigurationError("total sample weight must be positive")
            return self.total / self.weight_total
        return self.total / self.count


class FedAvg(FederatedAlgorithm):
    """Local SGD from the global model, plain model averaging at the server."""

    name = "fedavg"
    supports_batched = True

    def __init__(self, weighting: str = "uniform"):
        if weighting not in ("uniform", "samples"):
            raise ConfigurationError(
                f"weighting must be 'uniform' or 'samples', got {weighting!r}"
            )
        self.weighting = weighting

    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        params, train_loss = run_local_sgd(problem, global_params, config, rng=rng)
        client.record_participation(config.epochs)
        return ClientMessage(
            client_id=client.client_id,
            payload={"params": params},
            num_samples=problem.num_samples,
            local_epochs=config.epochs,
            train_loss=train_loss,
        )

    def batched_local_update(
        self,
        cohort,
        clients: list[ClientState],
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
    ) -> list[ClientMessage]:
        from repro.nn.batched import batched_run_local_sgd

        start = np.broadcast_to(global_params, (len(clients), global_params.size))
        params, losses = batched_run_local_sgd(cohort, start, config)
        return self.build_cohort_messages(
            clients, cohort, config.epochs, losses,
            lambda index: {"params": params[index].copy()},
        )

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list[ClientMessage],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        if not messages:
            raise ConfigurationError("FedAvg.aggregate needs at least one message")
        models = [msg.payload["params"] for msg in messages]
        if self.weighting == "samples":
            weights = [msg.num_samples for msg in messages]
            return average_aggregate(models, weights=weights)
        return average_aggregate(models)

    def make_accumulator(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        num_clients: int,
        round_index: int,
    ) -> RunningAverageAccumulator:
        return RunningAverageAccumulator(self.weighting, num_clients, round_index)
