"""FedAvg (McMahan et al., 2017).

Each selected client downloads θ, runs E epochs of SGD on its local loss
starting from θ, and uploads the resulting model; the server averages the
uploaded models.  Following the paper's experimental protocol, aggregation
uses equal client weights by default (``weighting="uniform"``), with
volume-proportional weights available as an option.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    FederatedAlgorithm,
    LocalTrainingConfig,
    run_local_sgd,
)
from repro.core.admm_server import average_aggregate
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.utils.rng import SeedLike


class FedAvg(FederatedAlgorithm):
    """Local SGD from the global model, plain model averaging at the server."""

    name = "fedavg"
    supports_batched = True

    def __init__(self, weighting: str = "uniform"):
        if weighting not in ("uniform", "samples"):
            raise ConfigurationError(
                f"weighting must be 'uniform' or 'samples', got {weighting!r}"
            )
        self.weighting = weighting

    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        params, train_loss = run_local_sgd(problem, global_params, config, rng=rng)
        client.record_participation(config.epochs)
        return ClientMessage(
            client_id=client.client_id,
            payload={"params": params},
            num_samples=problem.num_samples,
            local_epochs=config.epochs,
            train_loss=train_loss,
        )

    def batched_local_update(
        self,
        cohort,
        clients: list[ClientState],
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
    ) -> list[ClientMessage]:
        from repro.nn.batched import batched_run_local_sgd

        start = np.broadcast_to(global_params, (len(clients), global_params.size))
        params, losses = batched_run_local_sgd(cohort, start, config)
        return self.build_cohort_messages(
            clients, cohort, config.epochs, losses,
            lambda index: {"params": params[index].copy()},
        )

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list[ClientMessage],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        if not messages:
            raise ConfigurationError("FedAvg.aggregate needs at least one message")
        models = [msg.payload["params"] for msg in messages]
        if self.weighting == "samples":
            weights = [msg.num_samples for msg in messages]
            return average_aggregate(models, weights=weights)
        return average_aggregate(models)
