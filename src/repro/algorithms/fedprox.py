"""FedProx (Li et al., 2020).

Identical to FedAvg except that local training minimises
``f_i(w) + (ρ/2) ‖w − θ‖²`` — i.e. the FedADMM subproblem of eq. (3) with the
dual variable pinned to zero.  The proximal coefficient ρ must be tuned per
setting for competitive performance (the paper's Table V quantifies this
sensitivity), which is exactly the burden FedADMM's duals remove.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    FederatedAlgorithm,
    LocalTrainingConfig,
    run_local_sgd,
)
from repro.core.admm_server import average_aggregate
from repro.core.augmented_lagrangian import AugmentedLagrangian
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.utils.rng import SeedLike


class FedProx(FederatedAlgorithm):
    """FedAvg plus a quadratic proximal term in the local objective."""

    name = "fedprox"
    supports_batched = True

    def __init__(self, rho: float = 0.1, weighting: str = "uniform"):
        if rho < 0:
            raise ConfigurationError(f"rho must be non-negative, got {rho}")
        if weighting not in ("uniform", "samples"):
            raise ConfigurationError(
                f"weighting must be 'uniform' or 'samples', got {weighting!r}"
            )
        self.rho = rho
        self.weighting = weighting

    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        lagrangian = AugmentedLagrangian(self.rho)
        zero_dual = np.zeros_like(global_params)

        def extra_grad(params: np.ndarray) -> np.ndarray:
            return lagrangian.penalty_gradient(params, zero_dual, global_params)

        params, train_loss = run_local_sgd(
            problem, global_params, config, rng=rng, extra_grad=extra_grad
        )
        client.record_participation(config.epochs)
        return ClientMessage(
            client_id=client.client_id,
            payload={"params": params},
            num_samples=problem.num_samples,
            local_epochs=config.epochs,
            train_loss=train_loss,
        )

    def batched_local_update(
        self,
        cohort,
        clients: list[ClientState],
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
    ) -> list[ClientMessage]:
        from repro.nn.batched import batched_run_local_sgd

        theta = global_params[None, :]
        rho = self.rho

        def extra_grad(params: np.ndarray) -> np.ndarray:
            return rho * (params - theta)

        start = np.broadcast_to(global_params, (len(clients), global_params.size))
        params, losses = batched_run_local_sgd(
            cohort, start, config, extra_grad=extra_grad
        )
        return self.build_cohort_messages(
            clients, cohort, config.epochs, losses,
            lambda index: {"params": params[index].copy()},
        )

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list[ClientMessage],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        if not messages:
            raise ConfigurationError("FedProx.aggregate needs at least one message")
        models = [msg.payload["params"] for msg in messages]
        if self.weighting == "samples":
            weights = [msg.num_samples for msg in messages]
            return average_aggregate(models, weights=weights)
        return average_aggregate(models)
