"""FedPD (Zhang et al., 2021) — related primal-dual baseline.

FedPD also maintains primal/dual pairs at clients but, unlike FedADMM,
requires *all* clients to compute every round, and global communication
happens only with a fixed probability ``communication_probability`` (when it
does, every client participates simultaneously).  The paper excludes FedPD
from its experimental comparison for exactly this reason (unrealistic for
large federated populations); it is implemented here for completeness and for
the communication-pattern ablation.

When driven by the simulation engine, FedPD should be paired with a sampler
that selects the full population (e.g. ``UniformFractionSampler(1.0)``);
a warning is recorded in the message metadata if it is not.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm, LocalTrainingConfig
from repro.core.admm_client import admm_client_update
from repro.core.dual import augmented_model
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientState
from repro.federated.local_problem import LocalProblem
from repro.federated.messages import ClientMessage
from repro.utils.rng import SeedLike, as_rng


class FedPD(FederatedAlgorithm):
    """Primal-dual method with full participation and probabilistic aggregation."""

    name = "fedpd"

    #: FedPD flips a per-round communication coin at the server; that
    #: protocol has no analogue in the buffered asynchronous engine.
    supports_async = False

    #: The communication coin lives in :meth:`aggregate` (server side), so
    #: local updates are pure primal-dual SGD and a cohort's duals stack
    #: along the client axis exactly like FedADMM's.
    supports_batched = True

    def __init__(self, rho: float = 0.01, communication_probability: float = 1.0):
        if rho <= 0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        if not 0 < communication_probability <= 1:
            raise ConfigurationError(
                f"communication_probability must lie in (0, 1], "
                f"got {communication_probability}"
            )
        self.rho = rho
        self.communication_probability = communication_probability
        self._comm_rng = as_rng(0)

    def init_client_state(
        self, client: ClientState, initial_params: np.ndarray
    ) -> None:
        if not client.has("w"):
            client.set("w", initial_params)
        if not client.has("y"):
            client.set("y", np.zeros_like(initial_params))

    def local_update(
        self,
        problem: LocalProblem,
        client: ClientState,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
        rng: SeedLike = None,
    ) -> ClientMessage:
        self.init_client_state(client, global_params)
        result = admm_client_update(
            problem,
            w_old=client.get("w"),
            y_old=client.get("y"),
            theta=global_params,
            rho=self.rho,
            config=config,
            rng=rng,
            warm_start=True,
        )
        client.set("w", result.w_new)
        client.set("y", result.y_new)
        client.record_participation(config.epochs)
        return ClientMessage(
            client_id=client.client_id,
            payload={
                "augmented_model": augmented_model(result.w_new, result.y_new, self.rho)
            },
            num_samples=problem.num_samples,
            local_epochs=config.epochs,
            train_loss=result.train_loss,
        )

    def batched_local_update(
        self,
        cohort,
        clients: list[ClientState],
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        config: LocalTrainingConfig,
        round_index: int = 0,
    ) -> list[ClientMessage]:
        """A cohort of primal-dual updates with the duals stacked.

        Mirrors :func:`repro.core.admm_client.admm_client_update` with a
        leading client axis: warm start from each client's ``w``, augmented
        gradient ``y + rho (params − theta)``, then the dual ascent step —
        the same computation :meth:`local_update` performs per client, up
        to stacked-matmul reduction order.
        """
        from repro.nn.batched import batched_run_local_sgd

        for client in clients:
            self.init_client_state(client, global_params)
        theta = global_params[None, :]
        w_old = np.stack([client.get("w") for client in clients])
        y_old = np.stack([client.get("y") for client in clients])

        w_new, losses = batched_run_local_sgd(
            cohort,
            w_old,
            config,
            extra_grad=lambda params: y_old + self.rho * (params - theta),
        )
        y_new = y_old + self.rho * (w_new - theta)
        augmented = w_new + y_new / self.rho

        for index, client in enumerate(clients):
            client.set("w", w_new[index])
            client.set("y", y_new[index])
        return self.build_cohort_messages(
            clients,
            cohort,
            config.epochs,
            losses,
            lambda index: {"augmented_model": augmented[index].copy()},
        )

    def aggregate(
        self,
        global_params: np.ndarray,
        server_state: dict[str, np.ndarray],
        messages: list[ClientMessage],
        num_clients: int,
        round_index: int,
    ) -> np.ndarray:
        if not messages:
            raise ConfigurationError("FedPD.aggregate needs at least one message")
        # With probability (1 - p) the round carries no communication and the
        # global model is unchanged; otherwise it is replaced by the average
        # of the clients' augmented models.
        if self._comm_rng.random() >= self.communication_probability:
            return np.array(global_params, copy=True)
        stacked = np.stack([msg.payload["augmented_model"] for msg in messages])
        return stacked.mean(axis=0)
