"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of the reproduction code with a single handler
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment, algorithm, or model was configured inconsistently."""


class ShapeError(ReproError):
    """An array had an unexpected shape or dimensionality."""


class PartitionError(ReproError):
    """A dataset partition could not be constructed as requested."""


class ConvergenceError(ReproError):
    """A convergence-theory helper was queried outside its valid regime."""


class SimulationError(ReproError):
    """The federated simulation engine reached an invalid state."""
