"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of the reproduction code with a single handler
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment, algorithm, or model was configured inconsistently."""


class ShapeError(ReproError):
    """An array had an unexpected shape or dimensionality."""


class PartitionError(ReproError):
    """A dataset partition could not be constructed as requested."""


class ConvergenceError(ReproError):
    """A convergence-theory helper was queried outside its valid regime."""


class SimulationError(ReproError):
    """The federated simulation engine reached an invalid state."""


class ProtocolError(ReproError):
    """A wire payload was malformed, inconsistent, or mismatched its template.

    Raised at trust boundaries (the :mod:`repro.serve` protocol layer and
    :meth:`repro.systems.transport.Transport.decode`) where a payload arrives
    from another process and cannot be assumed well-formed.  Carries an
    optional machine-readable ``code`` so the serve layer can map the failure
    onto an HTTP status.
    """

    def __init__(self, message: str, code: str = "malformed"):
        super().__init__(message)
        self.code = code
