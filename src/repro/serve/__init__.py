"""Networked federation runtime: server, workers, wire protocol, load gen.

The serve layer puts the existing composition root on a real socket.  A
:class:`~repro.serve.server.FederationServer` drives the standard
state + pipeline + plan machinery in-process, but its executor publishes
local-update tasks to an HTTP task board that separate
:mod:`~repro.serve.worker` processes drain; uploads travel as the
:mod:`repro.systems.compression` codecs' encoded bytes, so the ledger's
wire accounting corresponds to real bytes in the HTTP bodies.  Because
tasks are integer-seeded through the isolated-executor seam, networked
histories are bit-identical to in-process isolated simulation runs.

Import submodules directly (``repro.serve.server``, ``repro.serve.worker``,
``repro.serve.loadgen``, ``repro.serve.protocol``); this package module
re-exports the main entry points for convenience.
"""

from repro.serve.protocol import PROTOCOL_VERSION

__all__ = ["PROTOCOL_VERSION", "FederationServer", "run_worker", "run_load_test"]


def __getattr__(name):
    # Lazy re-exports: `repro.serve.protocol` must import without pulling in
    # the whole experiment stack (server/worker/loadgen import it).
    if name == "FederationServer":
        from repro.serve.server import FederationServer

        return FederationServer
    if name == "run_worker":
        from repro.serve.worker import run_worker

        return run_worker
    if name == "run_load_test":
        from repro.serve.loadgen import run_load_test

        return run_load_test
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
