"""Wire protocol for the networked federation runtime.

The serve layer speaks a small binary protocol over HTTP POST bodies.  Every
body is one *frame*:

``MAGIC(4) | version u16 | blob_count u16 | header_len u32 | header | blobs``

where ``header`` is UTF-8 JSON and each blob is ``length u32 | bytes``.  All
integers are little-endian.  The header carries small structured fields
(task ids, seeds, shapes, hex-exact floats); the blobs carry array payloads.

Uploaded model deltas travel as the *encoded* representation of the
:mod:`repro.systems.compression` codecs, packed to their exact wire size —
so the bytes counted by the :class:`~repro.federated.messages.CommunicationLedger`
correspond to real bytes in the HTTP body, modulo the documented per-codec
framing overhead (see :func:`payload_wire_bytes`).

Floats that must survive the trip bit-exactly (train losses, learning rates)
are transported as ``float.hex()`` strings: JSON reprs round-trip doubles,
but hex strings also survive NaN and are unambiguous to human readers.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any

import numpy as np

from repro.exceptions import ProtocolError
from repro.systems.compression import (
    Codec,
    EncodedVector,
    QSGDCodec,
    TopKCodec,
)

#: Version carried in every frame and checked during the handshake.
PROTOCOL_VERSION = 1

#: Frame magic: "repro federation protocol".
MAGIC = b"RFP1"

#: Hard cap on a single frame; requests beyond this are rejected outright.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER_STRUCT = struct.Struct("<4sHHI")
_BLOB_LEN = struct.Struct("<I")

#: Machine-readable ProtocolError codes → HTTP status.
HTTP_STATUS_FOR_CODE = {
    "malformed": 400,
    "bad_codec": 400,
    "unknown_task": 404,
    "too_large": 413,
    "version_mismatch": 426,
}


def http_status_for(error: ProtocolError) -> int:
    """Map a ProtocolError onto the HTTP status the server should send."""
    return HTTP_STATUS_FOR_CODE.get(getattr(error, "code", "malformed"), 400)


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


def pack_frame(header: dict[str, Any], blobs: list[bytes] | None = None) -> bytes:
    """Serialise a header dict plus binary blobs into one frame."""
    blobs = blobs or []
    if len(blobs) > 0xFFFF:
        raise ProtocolError(f"too many blobs in one frame: {len(blobs)}")
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    parts = [_HEADER_STRUCT.pack(MAGIC, PROTOCOL_VERSION, len(blobs), len(header_bytes))]
    parts.append(header_bytes)
    for blob in blobs:
        parts.append(_BLOB_LEN.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def unpack_frame(
    data: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[dict[str, Any], list[bytes]]:
    """Parse one frame, validating structure, version, and size bounds."""
    if len(data) > max_bytes:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the {max_bytes}-byte limit",
            code="too_large",
        )
    if len(data) < _HEADER_STRUCT.size:
        raise ProtocolError(
            f"frame truncated: {len(data)} bytes is shorter than the "
            f"{_HEADER_STRUCT.size}-byte preamble"
        )
    magic, version, blob_count, header_len = _HEADER_STRUCT.unpack_from(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"frame speaks protocol version {version}, this build speaks "
            f"{PROTOCOL_VERSION}",
            code="version_mismatch",
        )
    offset = _HEADER_STRUCT.size
    if offset + header_len > len(data):
        raise ProtocolError("frame truncated inside the JSON header")
    try:
        header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame header is not valid JSON: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    offset += header_len
    blobs: list[bytes] = []
    for index in range(blob_count):
        if offset + _BLOB_LEN.size > len(data):
            raise ProtocolError(f"frame truncated before blob {index}")
        (length,) = _BLOB_LEN.unpack_from(data, offset)
        offset += _BLOB_LEN.size
        if offset + length > len(data):
            raise ProtocolError(f"frame truncated inside blob {index}")
        blobs.append(data[offset : offset + length])
        offset += length
    if offset != len(data):
        raise ProtocolError(f"{len(data) - offset} trailing bytes after the last blob")
    return header, blobs


# ---------------------------------------------------------------------------
# Exact float transport
# ---------------------------------------------------------------------------


def hex_float(value: float) -> str:
    """Bit-exact, NaN-safe string form of a double."""
    value = float(value)
    if math.isnan(value):
        return "nan"
    return value.hex()


def unhex_float(text: str) -> float:
    """Inverse of :func:`hex_float`."""
    if text == "nan":
        return math.nan
    try:
        return float.fromhex(text)
    except (ValueError, TypeError) as exc:
        raise ProtocolError(f"bad hex float {text!r}: {exc}") from None


def pack_array(array: np.ndarray) -> bytes:
    """Raw little-endian float64 bytes of an array (shape travels in the header)."""
    return np.ascontiguousarray(array, dtype="<f8").tobytes()


def unpack_array(data: bytes, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`pack_array`; validates the byte count against shape."""
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if len(data) != count * 8:
        raise ProtocolError(
            f"float64 blob has {len(data)} bytes, expected {count * 8} for "
            f"shape {tuple(shape)}"
        )
    return np.frombuffer(data, dtype="<f8").reshape(shape).copy()


# ---------------------------------------------------------------------------
# Bit packing (QSGD levels+signs, signSGD signs)
# ---------------------------------------------------------------------------


def _pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack small unsigned ints, ``bits`` each, MSB-first, into bytes."""
    values = np.asarray(values, dtype=np.uint32)
    if values.size == 0:
        return b""
    # Explode each value into its `bits` bits (MSB first), then let packbits
    # fold the flat bit-stream into bytes.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint32)
    bit_matrix = (values[:, None] >> shifts[None, :]) & 1
    return np.packbits(bit_matrix.astype(np.uint8).ravel()).tobytes()


def _unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits` for ``count`` values."""
    total_bits = count * bits
    expected = (total_bits + 7) // 8
    if len(data) != expected:
        raise ProtocolError(
            f"bit-packed blob has {len(data)} bytes, expected {expected} for "
            f"{count} values of {bits} bits"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    flat = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=total_bits)
    bit_matrix = flat.reshape(count, bits).astype(np.uint32)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint32)
    return (bit_matrix << shifts[None, :]).sum(axis=1, dtype=np.uint32)


# ---------------------------------------------------------------------------
# Codec payload packing
# ---------------------------------------------------------------------------


def payload_wire_bytes(codec: Codec | None, dim: int) -> int:
    """Exact bytes :func:`pack_vector` produces for a d-vector.

    Relations to the ledger's nominal ``codec.wire_bytes(dim)``:

    - ``identity`` (and raw, ``codec=None``): ``2 x`` — the ledger costs a
      float32 wire while exact reconstruction requires shipping float64.
    - ``float16``: equal.
    - ``topk``: equal (uint32 index + float32 value per kept coordinate).
    - ``qsgd`` / ``signsgd``: ``+ 4`` per vector — the ledger costs the
      norm/scale side-channel at 4 bytes, the wire ships a float64.
    """
    if codec is None or codec.name == "identity":
        return dim * 8
    if codec.name == "float16":
        return dim * 2
    if codec.name == "topk":
        return codec.wire_bytes(dim)
    if codec.name in ("qsgd", "signsgd"):
        return codec.wire_bytes(dim) + 4
    raise ProtocolError(f"no wire packing for codec {codec.name!r}", code="bad_codec")


def pack_vector(codec: Codec | None, encoded: EncodedVector) -> bytes:
    """Pack one encoded vector into its exact binary wire form."""
    data = encoded.data
    if codec is None or codec.name == "identity":
        return np.ascontiguousarray(data["values"], dtype="<f8").tobytes()
    if codec.name == "float16":
        return np.ascontiguousarray(data["values"], dtype="<f2").tobytes()
    if codec.name == "topk":
        indices = np.ascontiguousarray(data["indices"], dtype="<u4").tobytes()
        values = np.ascontiguousarray(data["values"], dtype="<f4").tobytes()
        return indices + values
    if codec.name == "qsgd":
        assert isinstance(codec, QSGDCodec)
        bits = codec.bits_per_coordinate
        negatives = (np.asarray(data["signs"]) < 0).astype(np.uint32)
        levels = np.asarray(data["levels"], dtype=np.uint32)
        packed = _pack_bits((negatives << (bits - 1)) | levels, bits)
        return packed + np.ascontiguousarray(data["norm"], dtype="<f8").tobytes()
    if codec.name == "signsgd":
        negatives = (np.asarray(data["signs"]) < 0).astype(np.uint8)
        packed = np.packbits(negatives).tobytes()
        return packed + np.ascontiguousarray(data["scale"], dtype="<f8").tobytes()
    raise ProtocolError(f"no wire packing for codec {codec.name!r}", code="bad_codec")


def unpack_vector(codec: Codec | None, dim: int, data: bytes) -> EncodedVector:
    """Parse the binary wire form back into an :class:`EncodedVector`.

    Validates the byte count against the codec and declared dimension; the
    semantic validation (index ranges, level bounds, sign values) lives in
    :meth:`repro.systems.transport.Transport.decode`.
    """
    if dim < 0:
        raise ProtocolError(f"negative vector dimension {dim}")
    expected = payload_wire_bytes(codec, dim)
    if len(data) != expected:
        raise ProtocolError(
            f"{'raw' if codec is None else codec.name} payload has "
            f"{len(data)} bytes, expected {expected} for dim {dim}"
        )
    if codec is None or codec.name == "identity":
        values = np.frombuffer(data, dtype="<f8").astype(np.float64)
        name = "identity" if codec is not None else "raw"
        wire = codec.wire_bytes(dim) if codec is not None else dim * 8
        return EncodedVector(codec=name, dim=dim, wire_bytes=wire, data={"values": values})
    if codec.name == "float16":
        values = np.frombuffer(data, dtype="<f2").astype(np.float16)
        return EncodedVector(
            codec=codec.name,
            dim=dim,
            wire_bytes=codec.wire_bytes(dim),
            data={"values": values},
        )
    if codec.name == "topk":
        assert isinstance(codec, TopKCodec)
        kept = codec.num_kept(dim)
        indices = np.frombuffer(data[: kept * 4], dtype="<u4").astype(np.uint32)
        values = np.frombuffer(data[kept * 4 :], dtype="<f4").astype(np.float32)
        return EncodedVector(
            codec=codec.name,
            dim=dim,
            wire_bytes=codec.wire_bytes(dim),
            data={"indices": indices, "values": values},
        )
    if codec.name == "qsgd":
        assert isinstance(codec, QSGDCodec)
        bits = codec.bits_per_coordinate
        split = len(data) - 8
        ints = _unpack_bits(data[:split], bits, dim)
        negatives = ints >> (bits - 1)
        levels = (ints & ((1 << (bits - 1)) - 1)).astype(np.int32)
        if np.any(levels > codec.levels):
            raise ProtocolError(
                f"qsgd payload carries a level above {codec.levels}"
            )
        signs = np.where(negatives, -1, 1).astype(np.int8)
        norm = np.frombuffer(data[split:], dtype="<f8").astype(np.float64)
        return EncodedVector(
            codec=codec.name,
            dim=dim,
            wire_bytes=codec.wire_bytes(dim),
            data={"levels": levels, "signs": signs, "norm": norm},
        )
    if codec.name == "signsgd":
        split = len(data) - 8
        bits_arr = np.unpackbits(np.frombuffer(data[:split], dtype=np.uint8), count=dim)
        signs = np.where(bits_arr, -1, 1).astype(np.int8)
        scale = np.frombuffer(data[split:], dtype="<f8").astype(np.float64)
        return EncodedVector(
            codec=codec.name,
            dim=dim,
            wire_bytes=codec.wire_bytes(dim),
            data={"signs": signs, "scale": scale},
        )
    raise ProtocolError(f"no wire packing for codec {codec.name!r}", code="bad_codec")


# ---------------------------------------------------------------------------
# Task frames (server → worker)
# ---------------------------------------------------------------------------


def encode_task(task_id: str, task) -> bytes:
    """Frame one :class:`~repro.systems.executor.LocalUpdateTask` for the wire.

    The global parameters, server-state vectors, and the client's persistent
    variables ship as raw float64 blobs; everything else rides in the header.
    Isolated executors hand tasks integer seeds, which JSON carries exactly.
    """
    blobs: list[bytes] = []
    state_keys = sorted(task.server_state)
    var_keys = sorted(task.client.variables)
    blobs.append(pack_array(task.global_params))
    for key in state_keys:
        blobs.append(pack_array(task.server_state[key]))
    for key in var_keys:
        blobs.append(pack_array(task.client.variables[key]))
    header = {
        "kind": "task",
        "task_id": task_id,
        "client_index": int(task.client_index),
        "client_id": int(task.client.client_id),
        "round_index": int(task.round_index),
        "seed": int(task.rng),
        "epochs": int(task.config.epochs),
        "batch_size": None if task.config.batch_size is None else int(task.config.batch_size),
        "learning_rate": hex_float(task.config.learning_rate),
        "rounds_participated": int(task.client.rounds_participated),
        "local_work_done": int(task.client.local_work_done),
        "params_shape": list(np.asarray(task.global_params).shape),
        "state_keys": state_keys,
        "state_shapes": [list(np.asarray(task.server_state[k]).shape) for k in state_keys],
        "var_keys": var_keys,
        "var_shapes": [list(np.asarray(task.client.variables[k]).shape) for k in var_keys],
    }
    return pack_frame(header, blobs)


def decode_task(header: dict[str, Any], blobs: list[bytes]) -> dict[str, Any]:
    """Parse a task frame into plain fields plus reconstructed arrays."""
    required = (
        "task_id",
        "client_index",
        "client_id",
        "round_index",
        "seed",
        "epochs",
        "learning_rate",
        "params_shape",
        "state_keys",
        "state_shapes",
        "var_keys",
        "var_shapes",
    )
    for key in required:
        if key not in header:
            raise ProtocolError(f"task frame missing field {key!r}")
    state_keys = list(header["state_keys"])
    var_keys = list(header["var_keys"])
    expected_blobs = 1 + len(state_keys) + len(var_keys)
    if len(blobs) != expected_blobs:
        raise ProtocolError(
            f"task frame carries {len(blobs)} blobs, expected {expected_blobs}"
        )
    params = unpack_array(blobs[0], tuple(header["params_shape"]))
    server_state = {
        key: unpack_array(blob, tuple(shape))
        for key, shape, blob in zip(
            state_keys, header["state_shapes"], blobs[1 : 1 + len(state_keys)]
        )
    }
    variables = {
        key: unpack_array(blob, tuple(shape))
        for key, shape, blob in zip(
            var_keys, header["var_shapes"], blobs[1 + len(state_keys) :]
        )
    }
    return {
        "task_id": str(header["task_id"]),
        "client_index": int(header["client_index"]),
        "client_id": int(header["client_id"]),
        "round_index": int(header["round_index"]),
        "seed": int(header["seed"]),
        "epochs": int(header["epochs"]),
        "batch_size": header.get("batch_size"),
        "learning_rate": unhex_float(header["learning_rate"]),
        "rounds_participated": int(header.get("rounds_participated", 0)),
        "local_work_done": int(header.get("local_work_done", 0)),
        "global_params": params,
        "server_state": server_state,
        "variables": variables,
    }


# ---------------------------------------------------------------------------
# Submit frames (worker → server)
# ---------------------------------------------------------------------------


def encode_submit(
    task_id: str,
    message,
    client,
    codec: Codec | None,
    rng=None,
) -> bytes:
    """Frame one finished local update: codec-encoded payload + client vars.

    The payload vectors are *encoded* with ``codec`` here on the worker, so
    the HTTP body carries the compressed representation — the server decodes
    and re-derives the wire costs through its own transport, keeping the
    ledger identical to simulation.
    """
    blobs: list[bytes] = []
    payload_keys = sorted(message.payload)
    payload_meta = []
    for key in payload_keys:
        array = np.asarray(message.payload[key])
        encoded = (
            codec.encode(array.ravel(), rng=rng)
            if codec is not None
            else EncodedVector(
                codec="raw",
                dim=array.size,
                wire_bytes=array.size * 8,
                data={"values": np.asarray(array.ravel(), dtype=np.float64)},
            )
        )
        blobs.append(pack_vector(codec, encoded))
        payload_meta.append({"key": key, "shape": list(array.shape)})
    var_keys = sorted(client.variables)
    for key in var_keys:
        blobs.append(pack_array(client.variables[key]))
    header = {
        "kind": "submit",
        "task_id": task_id,
        "client_id": int(message.client_id),
        "num_samples": int(message.num_samples),
        "local_epochs": int(message.local_epochs),
        "train_loss": hex_float(message.train_loss),
        "codec": codec.name if codec is not None else "raw",
        "payload": payload_meta,
        "var_keys": var_keys,
        "var_shapes": [list(np.asarray(client.variables[k]).shape) for k in var_keys],
        "rounds_participated": int(client.rounds_participated),
        "local_work_done": int(client.local_work_done),
    }
    return pack_frame(header, blobs)


def decode_submit(
    header: dict[str, Any],
    blobs: list[bytes],
    transport,
) -> dict[str, Any]:
    """Parse and validate a submit frame against the server's transport.

    Every payload vector is run through :meth:`Transport.decode` (or raw
    float64 unpacking when the server runs without a codec), so malformed or
    template-mismatched uploads surface as :class:`ProtocolError` here, at
    the boundary, rather than corrupting aggregation.
    """
    required = ("task_id", "client_id", "num_samples", "local_epochs",
                "train_loss", "codec", "payload", "var_keys", "var_shapes")
    for key in required:
        if key not in header:
            raise ProtocolError(f"submit frame missing field {key!r}")
    codec = transport.codec if transport is not None else None
    expected_name = codec.name if codec is not None else "raw"
    if header["codec"] != expected_name:
        raise ProtocolError(
            f"submit encoded with codec {header['codec']!r}, server expects "
            f"{expected_name!r}",
            code="bad_codec",
        )
    payload_meta = header["payload"]
    if not isinstance(payload_meta, list):
        raise ProtocolError("submit 'payload' must be a list of descriptors")
    var_keys = list(header["var_keys"])
    expected_blobs = len(payload_meta) + len(var_keys)
    if len(blobs) != expected_blobs:
        raise ProtocolError(
            f"submit frame carries {len(blobs)} blobs, expected {expected_blobs}"
        )
    payload: dict[str, np.ndarray] = {}
    payload_bytes = 0
    for meta, blob in zip(payload_meta, blobs[: len(payload_meta)]):
        if not isinstance(meta, dict) or "key" not in meta or "shape" not in meta:
            raise ProtocolError("submit payload descriptor must carry key and shape")
        shape = tuple(int(s) for s in meta["shape"])
        template = np.empty(shape, dtype=np.float64)
        encoded = unpack_vector(codec, int(template.size), blob)
        if transport is not None:
            payload[str(meta["key"])] = transport.decode(encoded, template)
        else:
            values = np.asarray(encoded.data["values"], dtype=np.float64)
            payload[str(meta["key"])] = values.reshape(shape)
        payload_bytes += len(blob)
    variables = {
        key: unpack_array(blob, tuple(shape))
        for key, shape, blob in zip(
            var_keys, header["var_shapes"], blobs[len(payload_meta) :]
        )
    }
    return {
        "task_id": str(header["task_id"]),
        "client_id": int(header["client_id"]),
        "num_samples": int(header["num_samples"]),
        "local_epochs": int(header["local_epochs"]),
        "train_loss": unhex_float(header["train_loss"]),
        "payload": payload,
        "payload_bytes": payload_bytes,
        "variables": variables,
        "rounds_participated": int(header.get("rounds_participated", 0)),
        "local_work_done": int(header.get("local_work_done", 0)),
    }
